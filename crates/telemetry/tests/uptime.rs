//! Regression test (ISSUE 10 satellite): `uptime_ns` must be derived from
//! the monotonic `Instant` trace epoch, never wall-clock subtraction — an
//! NTP step must not make timelines or rates go negative. Runs alone in its
//! own binary so the global metrics registry is unpolluted.
//!
//! The properties that pin the monotonic anchor:
//! - uptime never decreases across consecutive snapshots and grows by at
//!   least the real elapsed time between them (a wall-clock source stepped
//!   backwards would violate both);
//! - `captured_at_ns` shares the same axis, so `captured - uptime` (the
//!   baseline) is stable between snapshots of one epoch;
//! - `reset()` re-stamps the baseline: uptime restarts near zero.

use std::time::{Duration, Instant};

#[test]
fn uptime_is_monotonic_and_rebaselined_by_reset() {
    granii_telemetry::enable();
    granii_telemetry::reset();
    granii_telemetry::counter_add("uptime.test", 1);

    let first = granii_telemetry::metrics_snapshot();
    let wall = Instant::now();
    std::thread::sleep(Duration::from_millis(30));
    let second = granii_telemetry::metrics_snapshot();
    let elapsed = wall.elapsed();

    assert!(
        second.uptime_ns >= first.uptime_ns,
        "uptime went backwards: {} -> {}",
        first.uptime_ns,
        second.uptime_ns
    );
    let grew = second.uptime_ns - first.uptime_ns;
    assert!(
        grew >= 25_000_000,
        "uptime must track monotonic elapsed time (grew {grew}ns over ~30ms)"
    );
    assert!(
        grew <= elapsed.as_nanos() as u64 + 25_000_000,
        "uptime grew {grew}ns but only {}ns elapsed",
        elapsed.as_nanos()
    );
    assert!(second.captured_at_ns >= second.uptime_ns);
    let baseline_a = first.captured_at_ns - first.uptime_ns;
    let baseline_b = second.captured_at_ns - second.uptime_ns;
    assert_eq!(
        baseline_a, baseline_b,
        "captured_at and uptime share one monotonic baseline"
    );

    // The JSON export carries the same monotonic value.
    let json = granii_telemetry::export::metrics_json(&second);
    assert!(json.contains(&format!("\"uptime_ns\":{}", second.uptime_ns)));

    // reset() re-stamps the baseline: a fresh epoch restarts near zero
    // instead of inheriting the old span.
    granii_telemetry::reset();
    let rebased = granii_telemetry::metrics_snapshot();
    assert!(
        rebased.uptime_ns < second.uptime_ns,
        "reset must re-baseline uptime ({} !< {})",
        rebased.uptime_ns,
        second.uptime_ns
    );
    granii_telemetry::disable();
}
