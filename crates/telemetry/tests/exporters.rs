//! Schema validation of the hand-written exporters: every JSON exporter is
//! round-tripped through the (vendored) serde_json parser and checked
//! against its documented shape — valid JSON, required keys, monotonic
//! timestamps, non-negative durations — including output produced under
//! concurrent span recording.
//!
//! Telemetry state is process-global, so every test takes `TEST_LOCK`.

use std::sync::Mutex;

use granii_telemetry::{export, span, ProfileReport, ProfileRow};
use serde_json::Value;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    let g = TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    granii_telemetry::reset();
    granii_telemetry::enable();
    g
}

/// Field access helper: the vendored `Value` exposes `as_object()` rather
/// than `Index`, and parses every number as `f64`.
fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    v.as_object()
        .unwrap_or_else(|| panic!("not an object: {v:?}"))
        .get(key)
        .unwrap_or_else(|| panic!("missing key {key:?} in {v:?}"))
}

fn num(v: &Value, key: &str) -> f64 {
    field(v, key)
        .as_f64()
        .unwrap_or_else(|| panic!("{key:?} is not a number"))
}

fn text<'a>(v: &'a Value, key: &str) -> &'a str {
    field(v, key)
        .as_str()
        .unwrap_or_else(|| panic!("{key:?} is not a string"))
}

fn sample_report() -> ProfileReport {
    ProfileReport {
        expr: "AX(XW) \"quoted\"".to_owned(),
        device: "cpu".to_owned(),
        iterations: 5,
        rows: vec![
            ProfileRow {
                index: 0,
                name: "gemm".to_owned(),
                phase: "setup".to_owned(),
                calls: 1,
                host_ns: 12_000,
                charged_ns: 10_000,
                predicted_ns: 9_000,
                flops: 2_048,
                bytes: 4_096,
            },
            ProfileRow {
                index: 0,
                name: "spmm".to_owned(),
                phase: "iter".to_owned(),
                calls: 5,
                host_ns: 55_000,
                charged_ns: 50_000,
                predicted_ns: 0,
                flops: 10_240,
                bytes: 20_480,
            },
        ],
    }
}

/// Asserts the chrome-trace invariants shared by both exporters: an array
/// of objects with name/cat/ph/pid keys, `"X"` events carrying non-negative
/// ts + dur, `"C"` events carrying ts only, and monotone non-decreasing
/// timestamps per thread (spans) and per counter timeline.
fn assert_chrome_schema(json: &str) -> Vec<Value> {
    let value: Value = serde_json::from_str(json).expect("valid JSON");
    let events = value.as_array().expect("trace is an array").clone();
    let mut last_span_ts: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    let mut last_counter_ts = 0.0f64;
    for event in &events {
        assert!(!text(event, "name").is_empty());
        assert_eq!(text(event, "cat"), "granii");
        assert!(num(event, "pid") >= 0.0);
        let ts = num(event, "ts");
        assert!(ts >= 0.0, "negative ts: {event:?}");
        match text(event, "ph") {
            "X" => {
                assert!(num(event, "dur") >= 0.0, "negative dur: {event:?}");
                let tid = num(event, "tid") as u64;
                // Spans are emitted in (tid, seq) = open order, so start
                // timestamps are non-decreasing per thread.
                let prev = last_span_ts.entry(tid).or_insert(0.0);
                assert!(ts >= *prev, "ts regressed on tid {tid}: {ts} < {prev}");
                *prev = ts;
            }
            "C" => {
                assert!(
                    ts >= last_counter_ts,
                    "counter ts regressed: {ts} < {last_counter_ts}"
                );
                last_counter_ts = ts;
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    events
}

#[test]
fn chrome_trace_parses_with_monotonic_timestamps() {
    let _g = guard();
    {
        let _a = span!("outer", label = "a\"b\nc");
        for _ in 0..3 {
            let _b = span!("inner", edges = 42u64);
        }
    }
    granii_telemetry::disable();
    let spans = granii_telemetry::take_spans();
    let events = assert_chrome_schema(&export::chrome_trace(&spans));
    assert_eq!(events.len(), 4);
    // The escaped attribute survives the round trip intact.
    let outer = events
        .iter()
        .find(|e| text(e, "name") == "outer")
        .expect("outer span");
    assert_eq!(text(field(outer, "args"), "label"), "a\"b\nc");
}

#[test]
fn chrome_trace_is_valid_under_concurrent_recording() {
    let _g = guard();
    let handles: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let _outer = span!("worker", index = t as u64);
                for i in 0..50 {
                    let _inner = span!("unit", step = i as u64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker");
    }
    granii_telemetry::disable();
    let spans = granii_telemetry::take_spans();
    assert_eq!(spans.len(), 8 * 51);
    let events = assert_chrome_schema(&export::chrome_trace(&spans));
    assert_eq!(events.len(), 8 * 51);
    let tids: std::collections::BTreeSet<u64> =
        events.iter().map(|e| num(e, "tid") as u64).collect();
    assert_eq!(tids.len(), 8);
}

#[test]
fn metrics_json_parses_and_orders_quantiles() {
    let _g = guard();
    granii_telemetry::counter_add("kernels", 3);
    for ns in [100u64, 200, 300, 400, 50_000] {
        granii_telemetry::histogram_record_ns("lat", ns);
    }
    granii_telemetry::disable();
    let json = export::metrics_json(&granii_telemetry::metrics_snapshot());
    let value: Value = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(num(field(&value, "counters"), "kernels"), 3.0);
    let h = field(field(&value, "histograms"), "lat");
    assert_eq!(num(h, "count"), 5.0);
    assert_eq!(num(h, "min_ns"), 100.0);
    assert_eq!(num(h, "max_ns"), 50_000.0);
    let (p50, p95, p99) = (num(h, "p50_ns"), num(h, "p95_ns"), num(h, "p99_ns"));
    assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
    assert!((100.0..=50_000.0).contains(&p50));
    assert!((32_768.0..=50_000.0).contains(&p99), "p99 = {p99}");
    // Sparse buckets decode as [index, count] pairs summing to the count.
    let total: f64 = field(h, "buckets")
        .as_array()
        .expect("buckets array")
        .iter()
        .map(|pair| pair.as_array().expect("pair")[1].as_f64().expect("count"))
        .sum();
    assert_eq!(total, 5.0);
}

#[test]
fn profile_json_parses_with_consistent_totals() {
    let report = sample_report();
    let json = export::profile_json(&report);
    let value: Value = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(text(&value, "expr"), "AX(XW) \"quoted\"");
    assert_eq!(text(&value, "device"), "cpu");
    assert_eq!(num(&value, "iterations"), 5.0);
    let rows = field(&value, "rows").as_array().expect("rows array");
    assert_eq!(rows.len(), 2);
    let mut host_total = 0.0;
    let mut predicted_total = 0.0;
    for row in rows {
        for key in [
            "calls",
            "host_ns",
            "charged_ns",
            "predicted_ns",
            "flops",
            "bytes",
        ] {
            assert!(num(row, key) >= 0.0, "negative {key}: {row:?}");
        }
        assert!(num(row, "host_ns_per_call") >= 0.0);
        host_total += num(row, "host_ns");
        predicted_total += num(row, "predicted_ns");
    }
    assert_eq!(num(&value, "total_host_ns"), host_total);
    assert_eq!(num(&value, "total_predicted_ns"), predicted_total);
    // A zero prediction yields a null ratio, not NaN/Inf.
    assert!(field(&rows[1], "roofline_ratio").is_null());
    assert!(num(&rows[0], "roofline_ratio") > 1.0);
}

#[test]
fn chrome_trace_with_counters_emits_counter_tracks() {
    let _g = guard();
    {
        let _a = span!("iterate");
    }
    granii_telemetry::disable();
    let spans = granii_telemetry::take_spans();
    let events = assert_chrome_schema(&export::chrome_trace_with_counters(
        &spans,
        &sample_report(),
    ));
    let counters: Vec<&Value> = events.iter().filter(|e| text(e, "ph") == "C").collect();
    // Two tracks (flops + bytes) sampled once per row.
    assert_eq!(counters.len(), 4);
    assert!(counters.iter().any(|e| text(e, "name") == "profile.flops"));
    assert!(counters.iter().any(|e| text(e, "name") == "profile.bytes"));
    let spmm_flops = counters
        .iter()
        .find(|e| {
            text(e, "name") == "profile.flops"
                && field(e, "args")
                    .as_object()
                    .expect("args")
                    .contains_key("spmm")
        })
        .expect("spmm flops sample");
    assert_eq!(num(field(spmm_flops, "args"), "spmm"), (10_240 / 5) as f64);
    assert_eq!(events.iter().filter(|e| text(e, "ph") == "X").count(), 1);
}

#[test]
fn profile_table_lists_every_instruction() {
    let report = sample_report();
    let table = export::profile_table(&report);
    assert!(table.contains("gemm"), "{table}");
    assert!(table.contains("spmm"), "{table}");
    assert!(table.contains("setup"), "{table}");
    assert!(table.contains("iter"), "{table}");
    // The zero-prediction row renders a dash, not a division artifact.
    assert!(table.contains('-'), "{table}");
}

#[test]
fn metrics_json_round_trips_capture_timestamps() {
    let _g = guard();
    granii_telemetry::counter_add("ticks", 1);
    let first = granii_telemetry::metrics_snapshot();
    std::thread::sleep(std::time::Duration::from_millis(2));
    let second = granii_telemetry::metrics_snapshot();
    granii_telemetry::disable();

    // Successive snapshots are strictly ordered, and uptime counts from the
    // last reset (which `guard()` just performed), so it tracks captured_at.
    assert!(second.captured_at_ns > first.captured_at_ns);
    assert!(second.uptime_ns > first.uptime_ns);
    assert!(first.uptime_ns <= first.captured_at_ns);
    let elapsed = second.captured_at_ns - first.captured_at_ns;
    let uptime_delta = second.uptime_ns - first.uptime_ns;
    assert_eq!(elapsed, uptime_delta, "both fields advance on one clock");

    // And both fields survive the JSON round trip at top level.
    for snap in [&first, &second] {
        let value: Value = serde_json::from_str(&export::metrics_json(snap)).expect("valid JSON");
        assert_eq!(num(&value, "captured_at_ns"), snap.captured_at_ns as f64);
        assert_eq!(num(&value, "uptime_ns"), snap.uptime_ns as f64);
    }
}

#[test]
fn events_jsonl_round_trips_one_object_per_line() {
    let _g = guard();
    granii_telemetry::event!("serve.enqueue", id = 7u64, depth = 2u64);
    granii_telemetry::event!("serve.drift", signature = "gcn/abc", residual = 1.5);
    granii_telemetry::disable();
    let events = granii_telemetry::take_events();
    let jsonl = export::events_jsonl(&events);
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), 2);
    let first: Value = serde_json::from_str(lines[0]).expect("line 0 is JSON");
    assert_eq!(text(&first, "event"), "serve.enqueue");
    assert_eq!(num(&first, "id"), 7.0);
    assert!(num(&first, "ts_us") >= 0.0);
    let second: Value = serde_json::from_str(lines[1]).expect("line 1 is JSON");
    assert_eq!(text(&second, "event"), "serve.drift");
    assert_eq!(text(&second, "signature"), "gcn/abc");
    assert_eq!(num(&second, "residual"), 1.5);
    assert!(
        num(&second, "ts_us") >= num(&first, "ts_us"),
        "events are ordered"
    );
}
