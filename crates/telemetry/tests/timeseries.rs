//! Time-series ring invariants under wraparound and concurrent sampling
//! (ISSUE 10 satellite): the ring must keep exactly the newest frames in
//! time order, read-time deltas must match the true counter increments
//! across the wrap seam, and a reader snapshotting *while* a sampler thread
//! writes must only ever observe internally consistent frames.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use granii_telemetry::{SampleKind, TimeSeriesRing};

#[test]
fn wraparound_preserves_order_and_exact_deltas() {
    let ring = TimeSeriesRing::new(16);
    let c = ring.column("events", SampleKind::Counter);
    // 100 frames of a counter stepping by its frame index: after wrapping
    // 6+ times the retained window must be frames 84..=99 with deltas that
    // reconstruct the original increments exactly.
    let mut cumulative = 0u64;
    for i in 0..100u64 {
        cumulative += i;
        ring.push(i * 1_000_000, &[(c, cumulative as f64)]);
    }
    assert_eq!(ring.written(), 100);
    let snap = ring.snapshot();
    assert_eq!(snap.frames(), 16);
    assert!(
        snap.at_ns.windows(2).all(|w| w[1] > w[0]),
        "timestamps strictly increase across the wrap seam"
    );
    assert_eq!(snap.at_ns[0], 84 * 1_000_000);
    let deltas = snap.deltas(0);
    assert!(
        deltas[0].is_nan(),
        "first retained frame has no predecessor"
    );
    for (offset, delta) in deltas.iter().enumerate().skip(1) {
        assert_eq!(*delta, (84 + offset) as f64, "delta at offset {offset}");
    }
}

#[test]
fn concurrent_sampling_yields_consistent_snapshots() {
    let ring = Arc::new(TimeSeriesRing::new(8));
    let completed = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    // Writer thread: bump the "completed" source counter and sample it.
    let writer = {
        let ring = Arc::clone(&ring);
        let completed = Arc::clone(&completed);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let col = ring.column("completed", SampleKind::Counter);
            let mut tick = 0u64;
            while !stop.load(Ordering::Acquire) {
                completed.fetch_add(3, Ordering::Relaxed);
                tick += 1;
                ring.push(
                    tick * 1_000,
                    &[(col, completed.load(Ordering::Relaxed) as f64)],
                );
                std::thread::yield_now();
            }
        })
    };

    // Reader: every concurrent snapshot must be frame-consistent — bounded
    // size, nondecreasing timestamps, nondecreasing counter, and every
    // delta a multiple of the increment (no torn frames).
    let mut snapshots = 0u64;
    while snapshots < 200 {
        let snap = ring.snapshot();
        assert!(snap.frames() <= 8);
        assert!(
            snap.at_ns.windows(2).all(|w| w[1] >= w[0]),
            "{:?}",
            snap.at_ns
        );
        if let Some(series) = snap.column("completed") {
            assert!(
                series.values.windows(2).all(|w| w[1] >= w[0]),
                "counter column never decreases: {:?}",
                series.values
            );
            for delta in snap.deltas(0).iter().skip(1) {
                assert!(
                    delta.is_nan() || (*delta >= 0.0 && *delta % 3.0 == 0.0),
                    "torn frame: delta {delta}"
                );
            }
        }
        snapshots += 1;
    }
    stop.store(true, Ordering::Release);
    writer.join().unwrap();
    assert!(ring.written() > 0);
}

#[test]
fn sampler_thread_drives_the_ring_and_json_round_trips() {
    let ring = Arc::new(TimeSeriesRing::new(32));
    let source = Arc::new(AtomicU64::new(0));
    let col = ring.column("bench.ops", SampleKind::Counter);
    let gauge = ring.column("bench.depth", SampleKind::Gauge);
    let handle = {
        let ring = Arc::clone(&ring);
        let source = Arc::clone(&source);
        granii_telemetry::start_sampler(Duration::from_millis(2), move || {
            let v = source.fetch_add(7, Ordering::Relaxed) + 7;
            ring.push_now(&[(col, v as f64), (gauge, 1.5)]);
        })
    };
    while ring.written() < 4 {
        std::thread::sleep(Duration::from_millis(1));
    }
    handle.stop();

    let snap = ring.snapshot();
    let json = granii_telemetry::timeseries_json(&snap);
    // The vendored Value exposes `as_object()` rather than `Index`.
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("timeline JSON parses");
    let root = parsed.as_object().expect("timeline JSON is an object");
    assert_eq!(
        root.get("frames").and_then(|v| v.as_f64()).unwrap() as usize,
        snap.frames()
    );
    let columns = root
        .get("columns")
        .and_then(|v| v.as_array())
        .expect("columns array");
    let by_name = |name: &str| {
        columns
            .iter()
            .map(|c| c.as_object().expect("column object"))
            .find(|c| c.get("name").and_then(|v| v.as_str()) == Some(name))
            .unwrap_or_else(|| panic!("column {name} exported"))
    };
    let ops = by_name("bench.ops");
    assert_eq!(ops.get("kind").and_then(|v| v.as_str()), Some("counter"));
    let delta = ops
        .get("delta")
        .and_then(|v| v.as_array())
        .expect("counter delta series");
    assert_eq!(delta.len(), snap.frames());
    assert!(delta[0].is_null(), "first delta is null");
    assert_eq!(delta[1].as_f64(), Some(7.0));
    let depth = by_name("bench.depth");
    assert_eq!(depth.get("kind").and_then(|v| v.as_str()), Some("gauge"));
    assert!(depth.get("delta").is_none(), "gauges carry no delta series");
}
