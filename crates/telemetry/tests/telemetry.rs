//! Behavioral tests for spans, metrics, and exporters.
//!
//! Telemetry state is global (one enabled flag, shared buffers), so every
//! test takes `TEST_LOCK` and starts from `reset()` — the default test
//! harness runs tests on concurrent threads.

use std::sync::Mutex;

use granii_telemetry::{export, span, AttrValue};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    let g = TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    granii_telemetry::reset();
    granii_telemetry::enable();
    g
}

#[test]
fn nesting_depth_and_order_are_recorded() {
    let _g = guard();
    {
        let _a = span!("outer");
        {
            let _b = span!("mid");
            let _c = span!("inner");
        }
        let _d = span!("mid2");
    }
    granii_telemetry::disable();
    let spans = granii_telemetry::take_spans();
    let view: Vec<(&str, u16)> = spans.iter().map(|s| (s.name, s.depth)).collect();
    // take_spans orders by (tid, seq) = span-open order.
    assert_eq!(view, [("outer", 0), ("mid", 1), ("inner", 2), ("mid2", 1)]);
}

#[test]
fn spans_from_parallel_threads_keep_per_thread_order() {
    let _g = guard();
    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let _outer = span!("worker", index = t as u64);
                for _ in 0..3 {
                    let _inner = span!("unit");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker");
    }
    granii_telemetry::disable();
    let spans = granii_telemetry::take_spans();
    assert_eq!(spans.len(), 16);
    // Per thread: three depth-1 "unit" spans then the depth-0 "worker" root,
    // in increasing seq order with no interleaving from other threads.
    let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
    tids.dedup();
    assert_eq!(
        tids.len(),
        4,
        "each thread's spans are contiguous: {tids:?}"
    );
    for tid in tids {
        let per: Vec<_> = spans.iter().filter(|s| s.tid == tid).collect();
        assert_eq!(per.len(), 4);
        assert!(per.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(
            per.iter()
                .filter(|s| s.name == "worker" && s.depth == 0)
                .count(),
            1
        );
        assert_eq!(
            per.iter()
                .filter(|s| s.name == "unit" && s.depth == 1)
                .count(),
            3
        );
    }
}

#[test]
fn attributes_capture_values() {
    let _g = guard();
    {
        let _s = span!("attrs", edges = 42u64, frac = 0.25, label = "x");
    }
    granii_telemetry::disable();
    let spans = granii_telemetry::take_spans();
    assert_eq!(spans.len(), 1);
    assert_eq!(
        spans[0].attrs,
        vec![
            ("edges", AttrValue::U64(42)),
            ("frac", AttrValue::F64(0.25)),
            ("label", AttrValue::Str("x".into())),
        ]
    );
}

#[test]
fn disabled_telemetry_records_nothing_and_is_cheap() {
    let _g = guard();
    granii_telemetry::disable();
    let start = std::time::Instant::now();
    for i in 0..1_000_000u64 {
        // Attribute expressions must not be evaluated when disabled.
        let _s = span!(
            "noop",
            expensive = {
                assert!(i < u64::MAX, "attr evaluated while disabled");
                i
            }
        );
        granii_telemetry::counter_add("noop", 1);
    }
    let elapsed = start.elapsed();
    // Generous bound: 1M disabled instrumentation points in a debug build.
    // Each is one relaxed atomic load; even un-optimized this is far under a
    // second on any host.
    assert!(
        elapsed.as_secs_f64() < 5.0,
        "disabled path took {elapsed:?}"
    );
    assert!(granii_telemetry::take_spans().is_empty());
    assert!(granii_telemetry::metrics_snapshot().counters.is_empty());
}

#[test]
fn histogram_buckets_are_log2() {
    let _g = guard();
    granii_telemetry::histogram_record_ns("h", 0);
    granii_telemetry::histogram_record_ns("h", 1);
    granii_telemetry::histogram_record_ns("h", 3);
    granii_telemetry::histogram_record_ns("h", 4);
    granii_telemetry::histogram_record_ns("h", 1024);
    granii_telemetry::disable();
    let snap = granii_telemetry::metrics_snapshot();
    let h = &snap.histograms[0];
    assert_eq!(h.name, "h");
    assert_eq!(h.count, 5);
    assert_eq!(h.min_ns, 0);
    assert_eq!(h.max_ns, 1024);
    assert_eq!(h.buckets[0], 1); // exact zero
    assert_eq!(h.buckets[1], 1); // [1, 2)
    assert_eq!(h.buckets[2], 1); // [2, 4) <- 3
    assert_eq!(h.buckets[3], 1); // [4, 8) <- 4
    assert_eq!(h.buckets[11], 1); // [1024, 2048)
    assert_eq!(h.buckets.iter().sum::<u64>(), 5);
}

#[test]
fn counters_accumulate() {
    let _g = guard();
    granii_telemetry::counter_add("a", 2);
    granii_telemetry::counter_add("a", 3);
    granii_telemetry::counter_add("b", 1);
    granii_telemetry::disable();
    let snap = granii_telemetry::metrics_snapshot();
    assert_eq!(
        snap.counters,
        vec![("a".to_string(), 5), ("b".to_string(), 1)]
    );
}

#[test]
fn chrome_trace_has_required_event_fields() {
    let _g = guard();
    {
        let _a = span!("root", n = 7u64);
        let _b = span!("leaf");
    }
    granii_telemetry::disable();
    let spans = granii_telemetry::take_spans();
    let json = export::chrome_trace(&spans);
    // Schema: a JSON array of complete events with name/ph/ts/dur/pid/tid.
    assert!(json.trim_start().starts_with('['));
    assert!(json.trim_end().ends_with(']'));
    for field in [
        "\"name\":",
        "\"ph\":\"X\"",
        "\"ts\":",
        "\"dur\":",
        "\"pid\":",
        "\"tid\":",
    ] {
        assert_eq!(json.matches(field).count(), 2, "missing {field} in {json}");
    }
    assert!(json.contains("\"n\":7"));
}

#[test]
fn metrics_json_lists_counters_and_histograms() {
    let _g = guard();
    granii_telemetry::counter_add("kernels", 9);
    granii_telemetry::histogram_record_seconds("latency", 0.001);
    granii_telemetry::disable();
    let json = export::metrics_json(&granii_telemetry::metrics_snapshot());
    assert!(json.contains("\"kernels\":9"));
    assert!(json.contains("\"latency\""));
    assert!(json.contains("\"count\":1"));
    assert!(json.contains("\"buckets\":[[20,1]]"), "{json}"); // 1ms = 1e6 ns -> bucket 20
}

#[test]
fn gauges_are_last_write_wins_and_exported() {
    let _g = guard();
    granii_telemetry::gauge_set("serve.queue_depth", 3.0);
    granii_telemetry::gauge_set("serve.queue_depth", 7.0);
    granii_telemetry::gauge_set("serve.cache_hit_rate", 0.9375);
    granii_telemetry::disable();
    granii_telemetry::gauge_set("serve.queue_depth", 99.0); // disabled: no-op
    let snap = granii_telemetry::metrics_snapshot();
    assert_eq!(
        snap.gauges,
        vec![
            ("serve.cache_hit_rate".to_owned(), 0.9375),
            ("serve.queue_depth".to_owned(), 7.0),
        ]
    );
    let json = export::metrics_json(&snap);
    assert!(json.contains("\"gauges\":{"), "{json}");
    assert!(json.contains("\"serve.queue_depth\":7"), "{json}");
}

#[test]
fn summary_indents_children_under_parents() {
    let _g = guard();
    {
        let _a = span!("phase");
        let _b = span!("step");
    }
    granii_telemetry::disable();
    let text = export::summary(&granii_telemetry::take_spans());
    assert!(text.contains("\nphase"), "{text}");
    assert!(text.contains("\n  step"), "{text}");
}
