//! Property-based tests for the quantile machinery.
//!
//! Two families of guarantees back the SLO surface: the sketch's merge must
//! be a commutative monoid over snapshots (so per-worker sketches fold into
//! fleet-level quantiles in any order), and every quantile estimate —
//! sketch or fixed-bucket histogram — must be monotone in `q` and, for the
//! sketch, within the configured relative error of the exact sample
//! quantile.

use granii_telemetry::{HistogramSnapshot, Sketch, SketchSnapshot, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

const ALPHA: f64 = 0.01;

fn sketch_of(values: &[u64]) -> SketchSnapshot {
    let s = Sketch::new(ALPHA);
    for &v in values {
        s.record_ns(v);
    }
    s.snapshot("t")
}

/// Exact nearest-rank quantile over a sorted slice.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Mirrors `telemetry::metrics::bucket_index` (log₂ buckets) so the test
/// can build histogram snapshots without the registry.
fn histogram_of(values: &[u64]) -> HistogramSnapshot {
    let mut snap = HistogramSnapshot {
        name: "t".to_owned(),
        count: 0,
        sum_ns: 0,
        min_ns: u64::MAX,
        max_ns: 0,
        buckets: [0; HISTOGRAM_BUCKETS],
    };
    for &v in values {
        snap.count += 1;
        snap.sum_ns = snap.sum_ns.saturating_add(v);
        snap.min_ns = snap.min_ns.min(v);
        snap.max_ns = snap.max_ns.max(v);
        let idx = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        snap.buckets[idx] += 1;
    }
    if snap.count == 0 {
        snap.min_ns = 0;
    }
    snap
}

fn values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..10_000_000_000, 1..200)
}

proptest! {
    /// Merging per-shard sketches gives the same state as one sketch over
    /// the concatenated stream — the property that makes per-worker
    /// recording sound.
    #[test]
    fn merge_equals_concatenation(a in values(), b in values()) {
        let mut merged = sketch_of(&a);
        merged.merge(&sketch_of(&b));
        let whole: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let reference = sketch_of(&whole);
        prop_assert_eq!(merged.count, reference.count);
        prop_assert_eq!(merged.buckets, reference.buckets);
        prop_assert_eq!(merged.min_ns, reference.min_ns);
        prop_assert_eq!(merged.max_ns, reference.max_ns);
        prop_assert_eq!(merged.zero_count, reference.zero_count);
    }

    /// Commutativity: a ⊕ b == b ⊕ a.
    #[test]
    fn merge_commutes(a in values(), b in values()) {
        let mut ab = sketch_of(&a);
        ab.merge(&sketch_of(&b));
        let mut ba = sketch_of(&b);
        ba.merge(&sketch_of(&a));
        prop_assert_eq!(ab, ba);
    }

    /// Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn merge_associates(a in values(), b in values(), c in values()) {
        let mut left = sketch_of(&a);
        left.merge(&sketch_of(&b));
        left.merge(&sketch_of(&c));
        let mut bc = sketch_of(&b);
        bc.merge(&sketch_of(&c));
        let mut right = sketch_of(&a);
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Every quantile estimate is within the configured relative error of
    /// the exact sorted-oracle quantile (+1 ns slack for integer rounding).
    #[test]
    fn quantiles_within_relative_error(mut vals in values(), q in 0.0f64..1.02) {
        // q past 1.0 exercises the clamp: both sides resolve to the max.
        let q = q.min(1.0);
        let snap = sketch_of(&vals);
        vals.sort_unstable();
        let exact = exact_quantile(&vals, q) as f64;
        let est = snap.quantile_ns(q);
        prop_assert!(
            (est - exact).abs() <= ALPHA * exact + 1.0,
            "q={}: est {} vs exact {}", q, est, exact
        );
    }

    /// Sketch quantiles are monotone in q, even for garbage q (NaN pins to
    /// the minimum; out-of-range clamps).
    #[test]
    fn sketch_quantiles_monotone(vals in values(), qs in proptest::collection::vec(-0.5f64..1.5, 2..8)) {
        let snap = sketch_of(&vals);
        let mut sorted_qs = qs;
        sorted_qs.sort_by(f64::total_cmp);
        let estimates: Vec<f64> = sorted_qs.iter().map(|&q| snap.quantile_ns(q)).collect();
        for pair in estimates.windows(2) {
            prop_assert!(pair[0] <= pair[1], "non-monotone: {:?}", estimates);
        }
        prop_assert_eq!(snap.quantile_ns(f64::NAN), snap.quantile_ns(0.0));
    }

    /// Fixed-bucket histogram quantiles are monotone in q and clamp q
    /// outside [0, 1] — the interpolation no longer trusts its caller.
    #[test]
    fn histogram_quantiles_monotone_and_clamped(vals in values(), qs in proptest::collection::vec(-1.0f64..2.0, 2..8)) {
        let snap = histogram_of(&vals);
        let mut sorted_qs = qs;
        sorted_qs.sort_by(f64::total_cmp);
        let estimates: Vec<f64> = sorted_qs.iter().map(|&q| snap.quantile_ns(q)).collect();
        for pair in estimates.windows(2) {
            prop_assert!(pair[0] <= pair[1], "non-monotone: {:?}", estimates);
        }
        prop_assert_eq!(snap.quantile_ns(-5.0), snap.quantile_ns(0.0));
        prop_assert_eq!(snap.quantile_ns(5.0), snap.quantile_ns(1.0));
        let nan_estimate = snap.quantile_ns(f64::NAN);
        prop_assert!(nan_estimate.is_finite());
        prop_assert_eq!(nan_estimate, snap.quantile_ns(0.0));
    }
}

/// Acceptance criterion: on a million-sample stream the sketch stays within
/// its configured relative-error bound at every operative quantile.
#[test]
fn million_sample_stream_within_error_bound() {
    let sketch = Sketch::new(ALPHA);
    // Deterministic heavy-tailed stream (SplitMix-style scramble squashed
    // into a log-uniform-ish range): latencies from ~100 ns to ~10 s.
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut values = Vec::with_capacity(1_000_000);
    for _ in 0..1_000_000 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let unit = (state >> 11) as f64 / (1u64 << 53) as f64;
        let ns = (100.0 * 10f64.powf(unit * 8.0)) as u64;
        sketch.record_ns(ns);
        values.push(ns);
    }
    values.sort_unstable();
    let snap = sketch.snapshot("serve.latency.synthetic");
    assert_eq!(snap.count, 1_000_000);
    for q in [
        0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 0.9999,
    ] {
        let exact = exact_quantile(&values, q) as f64;
        let est = snap.quantile_ns(q);
        assert!(
            (est - exact).abs() <= ALPHA * exact + 1.0,
            "q={q}: est {est} vs exact {exact} (rel err {})",
            ((est - exact) / exact).abs()
        );
    }
}
