//! Roofline-style per-instruction profile records.
//!
//! The ExecPlan profiler in `granii-core` fills one [`ProfileRow`] per
//! slot-addressed instruction: achieved host time, the engine-charged time,
//! the device-model roofline prediction, and the flop/byte work attributed
//! from the per-primitive `WorkStats`. This crate only defines the record
//! types and their exporters ([`crate::export::profile_json`],
//! [`crate::export::profile_table`], and the Chrome-trace counter tracks in
//! [`crate::export::chrome_trace_with_counters`]) so that every layer above
//! can exchange profiles without new dependencies.

/// Aggregated timings and work for one instruction of a bound plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Position of the instruction inside its phase program.
    pub index: usize,
    /// Instruction name (e.g. `"spmm"`, `"edge_softmax"`).
    pub name: String,
    /// `"setup"` for hoisted once-instructions, `"iter"` for the steady loop.
    pub phase: String,
    /// Number of times the instruction executed while profiling.
    pub calls: u64,
    /// Total achieved wall-clock time on the host, in nanoseconds.
    pub host_ns: u64,
    /// Total time the engine charged for the instruction (measured on a
    /// measuring engine, modeled otherwise), in nanoseconds.
    pub charged_ns: u64,
    /// Total device-model roofline prediction for the same work, in
    /// nanoseconds. Comparing `host_ns` against this column is the roofline
    /// gap.
    pub predicted_ns: u64,
    /// Total floating-point operations attributed to the instruction.
    pub flops: u64,
    /// Total bytes moved, as attributed by the work statistics.
    pub bytes: u64,
}

impl ProfileRow {
    /// Achieved time per call in nanoseconds (0 when never called).
    pub fn host_ns_per_call(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.host_ns as f64 / self.calls as f64
        }
    }

    /// Predicted time per call in nanoseconds (0 when never called).
    pub fn predicted_ns_per_call(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.predicted_ns as f64 / self.calls as f64
        }
    }

    /// Achieved-over-predicted ratio (> 1 means slower than the device
    /// model; `None` when the prediction is zero).
    pub fn roofline_ratio(&self) -> Option<f64> {
        if self.predicted_ns == 0 {
            None
        } else {
            Some(self.host_ns as f64 / self.predicted_ns as f64)
        }
    }
}

/// A complete per-instruction profile of one bound plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// Canonical expression of the profiled candidate program.
    pub expr: String,
    /// Device the engine charged against (e.g. `"cpu"`, `"a100"`).
    pub device: String,
    /// Number of profiled `iterate` calls contributing to `"iter"` rows.
    pub iterations: u64,
    /// One row per instruction, setup rows first, in program order.
    pub rows: Vec<ProfileRow>,
}

impl ProfileReport {
    /// Total achieved nanoseconds across all rows.
    pub fn total_host_ns(&self) -> u64 {
        self.rows.iter().map(|r| r.host_ns).sum()
    }

    /// Total predicted nanoseconds across all rows.
    pub fn total_predicted_ns(&self) -> u64 {
        self.rows.iter().map(|r| r.predicted_ns).sum()
    }
}
