//! Streaming sketches: a mergeable log-bucketed quantile sketch and a small
//! distinct-count estimator.
//!
//! The fixed log₂ latency histograms ([`crate::metrics`]) bound a sample to a
//! power-of-two interval — fine for dashboards, useless for SLO math where
//! "p999 under 50 ms" needs sub-2× resolution. The [`Sketch`] here is
//! DDSketch-style: geometric buckets with ratio `γ = (1 + α)²` so every
//! quantile estimate is within a configured **relative** error `α` of the
//! exact sample quantile, at any scale from nanoseconds to hours. Two
//! properties make it the right primitive for a serving runtime:
//!
//! - **Zero-alloc, lock-free recording.** A sketch is a fixed array of
//!   atomics sized at construction; [`Sketch::record_ns`] is a handful of
//!   relaxed atomic adds — no allocation, no mutex, safe on the zero-alloc
//!   steady-state serve hit path and cheap enough to leave always-on.
//! - **Mergeability.** Bucket counts are position-aligned for equal `α`, so
//!   [`SketchSnapshot::merge`] is element-wise addition: associative and
//!   commutative, which lets per-worker / per-shard sketches roll up into
//!   fleet-level quantiles without resampling (the reason DDSketch-style
//!   sketches beat exact reservoirs for distributed telemetry).
//!
//! The [`DistinctCounter`] is a small HyperLogLog (2¹⁰ registers, ~2%
//! standard error) for "how many unique graph fingerprints has this server
//! actually seen" — a question counters cannot answer without unbounded
//! per-key state.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Default relative-error bound for registry-created sketches: quantile
/// estimates are within 1% of the exact sample quantile.
pub const DEFAULT_SKETCH_ALPHA: f64 = 0.01;

/// A mergeable streaming quantile sketch over `u64` nanosecond values with
/// bounded relative error.
///
/// Bucket `i` covers values `v` with `floor(ln v / ln γ) == i`, i.e.
/// `v ∈ [γ^i, γ^(i+1))`, where `γ = (1 + α)²`. A quantile estimate returns
/// the bucket's log-space midpoint `γ^(i + 1/2)`, so the worst-case ratio to
/// the true value is `√γ = 1 + α` in either direction. Zeros get a dedicated
/// exact bucket.
///
/// # Example
///
/// ```
/// use granii_telemetry::Sketch;
///
/// let s = Sketch::new(0.01);
/// for v in 1..=1000u64 {
///     s.record_ns(v);
/// }
/// let p50 = s.snapshot("lat").quantile_ns(0.50);
/// assert!((p50 - 500.0).abs() / 500.0 < 0.02);
/// ```
#[derive(Debug)]
pub struct Sketch {
    alpha: f64,
    ln_gamma: f64,
    zero: AtomicU64,
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

/// Bucket index for a non-zero value under `ln_gamma` spacing.
fn value_index(ns: u64, ln_gamma: f64, num_buckets: usize) -> usize {
    debug_assert!(ns > 0);
    let idx = ((ns as f64).ln() / ln_gamma).floor();
    // ns >= 1 means ln >= 0; the cast below is safe after the max(0.0).
    (idx.max(0.0) as usize).min(num_buckets - 1)
}

impl Sketch {
    /// Creates a sketch with relative-error bound `alpha` (clamped to
    /// `[1e-4, 0.5]`). The bucket array is sized to cover every `u64`
    /// nanosecond value; `alpha = 0.01` needs ~2.3 k buckets (~18 KiB).
    pub fn new(alpha: f64) -> Self {
        let alpha = alpha.clamp(1e-4, 0.5);
        let ln_gamma = 2.0 * (1.0 + alpha).ln();
        let num_buckets = ((u64::MAX as f64).ln() / ln_gamma).ceil() as usize + 1;
        Sketch {
            alpha,
            ln_gamma,
            zero: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            buckets: (0..num_buckets).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The configured relative-error bound `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Records one nanosecond value. Lock-free and allocation-free: one
    /// float log plus a handful of relaxed atomic RMWs.
    pub fn record_ns(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        if ns == 0 {
            self.zero.fetch_add(1, Ordering::Relaxed);
        } else {
            let idx = value_index(ns, self.ln_gamma, self.buckets.len());
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a duration given in seconds (negative/non-finite recorded as
    /// zero, mirroring [`crate::histogram_record_seconds`]).
    pub fn record_seconds(&self, seconds: f64) {
        let ns = if seconds.is_finite() && seconds > 0.0 {
            (seconds * 1e9) as u64
        } else {
            0
        };
        self.record_ns(ns);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy under the given export name. Buckets are stored
    /// sparsely (most of the index range is empty for any real workload).
    pub fn snapshot(&self, name: &str) -> SketchSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        SketchSnapshot {
            name: name.to_owned(),
            alpha: self.alpha,
            count,
            zero_count: self.zero.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            min_ns: if count == 0 {
                0
            } else {
                self.min_ns.load(Ordering::Relaxed)
            },
            max_ns: self.max_ns.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(idx, c)| {
                    let c = c.load(Ordering::Relaxed);
                    (c > 0).then_some((idx as u32, c))
                })
                .collect(),
        }
    }

    /// Zeroes every counter in place (registry reset). Handles held by
    /// long-lived recorders stay valid — they simply start from empty.
    pub fn clear(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.zero.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Point-in-time copy of one [`Sketch`], suitable for export and merging.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchSnapshot {
    /// Export name.
    pub name: String,
    /// Relative-error bound the sketch was built with.
    pub alpha: f64,
    /// Number of recorded values (including zeros).
    pub count: u64,
    /// Exact count of recorded zeros.
    pub zero_count: u64,
    /// Sum of recorded values in nanoseconds.
    pub sum_ns: u64,
    /// Smallest recorded value (0 when empty).
    pub min_ns: u64,
    /// Largest recorded value.
    pub max_ns: u64,
    /// Sparse `(bucket_index, count)` pairs, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl SketchSnapshot {
    /// An empty snapshot with the given name and error bound.
    pub fn empty(name: &str, alpha: f64) -> Self {
        SketchSnapshot {
            name: name.to_owned(),
            alpha: alpha.clamp(1e-4, 0.5),
            count: 0,
            zero_count: 0,
            sum_ns: 0,
            min_ns: 0,
            max_ns: 0,
            buckets: Vec::new(),
        }
    }

    fn ln_gamma(&self) -> f64 {
        2.0 * (1.0 + self.alpha).ln()
    }

    /// Mean recorded value in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Estimated value at quantile `q` in nanoseconds, within `α` relative
    /// error of the exact sample quantile. `q` is clamped to `[0, 1]`
    /// (NaN treated as 0) and the estimate to the observed `[min, max]`, so
    /// single-value streams are exact at every quantile.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if target <= self.zero_count {
            return 0.0;
        }
        let mut seen = self.zero_count;
        let ln_gamma = self.ln_gamma();
        for &(idx, bucket_count) in &self.buckets {
            seen += bucket_count;
            if seen >= target {
                let est = ((idx as f64 + 0.5) * ln_gamma).exp();
                return est.clamp(self.min_ns as f64, self.max_ns as f64);
            }
        }
        self.max_ns as f64
    }

    /// Estimated median in nanoseconds.
    pub fn p50_ns(&self) -> f64 {
        self.quantile_ns(0.50)
    }

    /// Estimated 95th percentile in nanoseconds.
    pub fn p95_ns(&self) -> f64 {
        self.quantile_ns(0.95)
    }

    /// Estimated 99th percentile in nanoseconds.
    pub fn p99_ns(&self) -> f64 {
        self.quantile_ns(0.99)
    }

    /// Estimated 99.9th percentile in nanoseconds — the tail the fixed log₂
    /// histograms cannot resolve.
    pub fn p999_ns(&self) -> f64 {
        self.quantile_ns(0.999)
    }

    /// Estimated number of recorded values strictly above `ns` (the SLO
    /// violation count for a latency objective at `ns`). Buckets strictly
    /// above the threshold's bucket count fully; the threshold's own bucket
    /// is excluded, so the estimate errs low by at most the within-`α`
    /// neighborhood of the threshold.
    pub fn count_above_ns(&self, ns: u64) -> u64 {
        if ns == 0 {
            return self.count - self.zero_count;
        }
        let boundary = value_index(ns, self.ln_gamma(), u32::MAX as usize) as u32;
        self.buckets
            .iter()
            .filter(|(idx, _)| *idx > boundary)
            .map(|(_, c)| c)
            .sum()
    }

    /// Fraction of recorded values strictly above `ns` (0 when empty).
    pub fn fraction_above_ns(&self, ns: u64) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.count_above_ns(ns) as f64 / self.count as f64
        }
    }

    /// Merges `other` into `self` by element-wise bucket addition —
    /// associative and commutative, so per-worker sketches fold into a
    /// fleet-level one in any order.
    ///
    /// # Panics
    ///
    /// Panics if the error bounds differ: bucket indices are only
    /// position-aligned for equal `α`.
    pub fn merge(&mut self, other: &SketchSnapshot) {
        assert!(
            (self.alpha - other.alpha).abs() < 1e-12,
            "cannot merge sketches with different error bounds ({} vs {})",
            self.alpha,
            other.alpha
        );
        self.count += other.count;
        self.zero_count += other.zero_count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        if other.count > 0 {
            self.min_ns = if self.count == other.count {
                other.min_ns
            } else {
                self.min_ns.min(other.min_ns)
            };
            self.max_ns = self.max_ns.max(other.max_ns);
        }
        let mut merged: Vec<(u32, u64)> =
            Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut i, mut j) = (0, 0);
        while i < self.buckets.len() || j < other.buckets.len() {
            match (self.buckets.get(i), other.buckets.get(j)) {
                (Some(&(a, ca)), Some(&(b, cb))) if a == b => {
                    merged.push((a, ca + cb));
                    i += 1;
                    j += 1;
                }
                (Some(&(a, ca)), Some(&(b, _))) if a < b => {
                    merged.push((a, ca));
                    i += 1;
                }
                (Some(_), Some(&(b, cb))) => {
                    merged.push((b, cb));
                    j += 1;
                }
                (Some(&(a, ca)), None) => {
                    merged.push((a, ca));
                    i += 1;
                }
                (None, Some(&(b, cb))) => {
                    merged.push((b, cb));
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        self.buckets = merged;
    }
}

/// Number of HyperLogLog registers (2¹⁰): standard error ≈ 1.04/√1024 ≈ 3.3%.
const HLL_REGISTERS: usize = 1024;
const HLL_P: u32 = 10;

/// A small HyperLogLog distinct-count estimator over `u64` keys.
///
/// Recording is lock-free (one `fetch_max` on an 8-bit register) and
/// allocation-free; keys are scrambled through SplitMix64 first, so raw
/// structured values (graph fingerprints, plan-key hashes) are fine inputs.
///
/// # Example
///
/// ```
/// use granii_telemetry::DistinctCounter;
///
/// let d = DistinctCounter::new();
/// for k in 0..500u64 {
///     d.observe(k);
///     d.observe(k); // duplicates don't count
/// }
/// let est = d.estimate();
/// assert!((est - 500.0).abs() / 500.0 < 0.15, "{est}");
/// ```
#[derive(Debug)]
pub struct DistinctCounter {
    registers: Box<[AtomicU8]>,
}

/// SplitMix64: cheap, well-distributed scrambler for structured keys.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Default for DistinctCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl DistinctCounter {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        DistinctCounter {
            registers: (0..HLL_REGISTERS).map(|_| AtomicU8::new(0)).collect(),
        }
    }

    /// Folds one key into the estimator (idempotent per key).
    pub fn observe(&self, key: u64) {
        let h = splitmix64(key);
        let register = (h >> (64 - HLL_P)) as usize;
        // Rank of the first set bit in the remaining 54 bits, 1-based.
        let rank = ((h << HLL_P) | 1u64 << (HLL_P - 1)).leading_zeros() as u8 + 1;
        self.registers[register].fetch_max(rank, Ordering::Relaxed);
    }

    /// Estimated number of distinct keys observed.
    pub fn estimate(&self) -> f64 {
        let m = HLL_REGISTERS as f64;
        let mut harmonic = 0.0;
        let mut zeros = 0u64;
        for r in self.registers.iter() {
            let v = r.load(Ordering::Relaxed);
            if v == 0 {
                zeros += 1;
            }
            harmonic += 1.0 / f64::from(1u32 << u32::from(v.min(63)));
        }
        let alpha_m = 0.7213 / (1.0 + 1.079 / m);
        let raw = alpha_m * m * m / harmonic;
        if raw <= 2.5 * m && zeros > 0 {
            // Small-range (linear counting) correction.
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// Zeroes every register in place (registry reset).
    pub fn clear(&self) {
        for r in self.registers.iter() {
            r.store(0, Ordering::Relaxed);
        }
    }
}

/// Point-in-time copy of one [`DistinctCounter`]'s estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct DistinctSnapshot {
    /// Export name.
    pub name: String,
    /// Estimated distinct keys.
    pub estimate: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_is_all_zero() {
        let s = Sketch::new(0.01);
        let snap = s.snapshot("t");
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile_ns(0.5), 0.0);
        assert_eq!(snap.mean_ns(), 0.0);
        assert_eq!(snap.count_above_ns(0), 0);
    }

    #[test]
    fn single_value_is_exact_everywhere() {
        let s = Sketch::new(0.01);
        s.record_ns(777);
        let snap = s.snapshot("t");
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(snap.quantile_ns(q), 777.0);
        }
        assert_eq!(snap.min_ns, 777);
        assert_eq!(snap.max_ns, 777);
    }

    #[test]
    fn quantiles_respect_relative_error_bound() {
        let alpha = 0.01;
        let s = Sketch::new(alpha);
        let mut values: Vec<u64> = (1..=10_000u64).map(|i| i * i).collect();
        for &v in &values {
            s.record_ns(v);
        }
        values.sort_unstable();
        let snap = s.snapshot("t");
        for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1] as f64;
            let est = snap.quantile_ns(q);
            assert!(
                (est - exact).abs() <= alpha * exact + 1.0,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn zeros_have_a_dedicated_bucket() {
        let s = Sketch::new(0.01);
        for _ in 0..90 {
            s.record_ns(0);
        }
        for _ in 0..10 {
            s.record_ns(1_000_000);
        }
        let snap = s.snapshot("t");
        assert_eq!(snap.zero_count, 90);
        assert_eq!(snap.quantile_ns(0.5), 0.0);
        let p99 = snap.quantile_ns(0.99);
        assert!((p99 - 1e6).abs() / 1e6 < 0.011, "{p99}");
        assert_eq!(snap.count_above_ns(0), 10);
    }

    #[test]
    fn merge_equals_single_stream() {
        let a = Sketch::new(0.01);
        let b = Sketch::new(0.01);
        let whole = Sketch::new(0.01);
        for v in 1..=1000u64 {
            if v % 2 == 0 { &a } else { &b }.record_ns(v * 37);
            whole.record_ns(v * 37);
        }
        let mut merged = a.snapshot("t");
        merged.merge(&b.snapshot("t"));
        let reference = whole.snapshot("t");
        assert_eq!(merged.count, reference.count);
        assert_eq!(merged.buckets, reference.buckets);
        assert_eq!(merged.min_ns, reference.min_ns);
        assert_eq!(merged.max_ns, reference.max_ns);
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(merged.quantile_ns(q), reference.quantile_ns(q));
        }
    }

    #[test]
    #[should_panic(expected = "different error bounds")]
    fn merge_rejects_mismatched_alpha() {
        let mut a = SketchSnapshot::empty("a", 0.01);
        let b = SketchSnapshot::empty("b", 0.02);
        a.merge(&b);
    }

    #[test]
    fn count_above_matches_exact_off_boundary() {
        let s = Sketch::new(0.01);
        for v in [10u64, 100, 1_000, 10_000, 100_000] {
            for _ in 0..20 {
                s.record_ns(v);
            }
        }
        let snap = s.snapshot("t");
        // 5_000 sits far from every recorded value's bucket: exact split.
        assert_eq!(snap.count_above_ns(5_000), 40);
        assert!((snap.fraction_above_ns(5_000) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_in_place() {
        let s = Sketch::new(0.01);
        s.record_ns(123);
        s.clear();
        assert_eq!(s.count(), 0);
        assert_eq!(s.snapshot("t").quantile_ns(0.5), 0.0);
        s.record_ns(9);
        assert_eq!(s.snapshot("t").quantile_ns(1.0), 9.0);
    }

    #[test]
    fn distinct_counter_tracks_cardinality_not_volume() {
        let d = DistinctCounter::new();
        for _ in 0..100 {
            for k in 0..12u64 {
                d.observe(0xdead_0000 + k);
            }
        }
        let est = d.estimate();
        assert!((est - 12.0).abs() <= 2.0, "{est}");
        d.clear();
        assert!(d.estimate() < 0.5);
    }

    #[test]
    fn distinct_counter_scales_to_thousands() {
        let d = DistinctCounter::new();
        for k in 0..5_000u64 {
            d.observe(k.wrapping_mul(0x9e37_79b9));
        }
        let est = d.estimate();
        assert!((est - 5_000.0).abs() / 5_000.0 < 0.1, "{est}");
    }
}
