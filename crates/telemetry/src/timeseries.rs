//! On-host time-series ring: a fixed-capacity buffer of periodic metric
//! samples — a mini-TSDB that needs no external collector.
//!
//! Snapshots ([`crate::metrics_snapshot`], `ServerStatus`) answer "what is
//! the state *now*"; the flight recorder answers "what happened around this
//! request". Neither answers "what did the last two minutes look like" —
//! the question every dashboard and every incident review starts with. The
//! [`TimeSeriesRing`] closes that gap: a sampler thread captures a frame of
//! named columns (cumulative counters, point-in-time gauges, sketch
//! quantiles) every interval into a pre-allocated ring, and readers turn
//! counter columns into deltas and per-second rates *at read time* — the
//! ring itself stores only raw cumulative values, so sampling never loses
//! information to a rate window chosen too early.
//!
//! Steady-state sampling is allocation-free: frames are pre-sized at ring
//! construction and column registration reuses slots; the only allocations
//! after warm-up happen when a *new* column (e.g. a first-seen tenant)
//! registers. The ring is a single mutex — the sampler writes one frame per
//! interval and readers snapshot rarely, so there is nothing to contend.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// How a column's samples are interpreted at read time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleKind {
    /// Monotone cumulative value; readers difference consecutive frames
    /// into deltas and per-second rates.
    Counter,
    /// Point-in-time value (queue depth, quantile, hit rate).
    Gauge,
}

impl SampleKind {
    /// Stable lowercase name (`counter` / `gauge`).
    pub fn name(&self) -> &'static str {
        match self {
            SampleKind::Counter => "counter",
            SampleKind::Gauge => "gauge",
        }
    }
}

/// Opaque handle of a registered column, valid for the ring that issued it.
/// Cache it outside the sampling loop: registration takes the ring lock and
/// may allocate; recording through an id never does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnId(usize);

struct Column {
    name: String,
    kind: SampleKind,
}

struct Frame {
    at_ns: u64,
    values: Vec<f64>,
}

struct RingInner {
    columns: Vec<Column>,
    frames: Vec<Frame>,
    written: u64,
}

/// Fixed-capacity ring of periodic samples (see module docs).
pub struct TimeSeriesRing {
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl TimeSeriesRing {
    /// Creates a ring retaining the newest `capacity` frames (min 2 — a
    /// single frame can never yield a delta).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        TimeSeriesRing {
            capacity,
            inner: Mutex::new(RingInner {
                columns: Vec::new(),
                frames: (0..capacity)
                    .map(|_| Frame {
                        at_ns: 0,
                        values: Vec::new(),
                    })
                    .collect(),
                written: 0,
            }),
        }
    }

    /// Registers (or finds) the column `name`, returning its id. The kind
    /// of an existing column wins; re-registration never re-types it.
    pub fn column(&self, name: &str, kind: SampleKind) -> ColumnId {
        let mut inner = self.lock();
        if let Some(idx) = inner.columns.iter().position(|c| c.name == name) {
            return ColumnId(idx);
        }
        inner.columns.push(Column {
            name: name.to_owned(),
            kind,
        });
        ColumnId(inner.columns.len() - 1)
    }

    /// Appends one frame at `at_ns` (nanoseconds on the caller's monotonic
    /// axis). Columns absent from `entries` — and columns registered after
    /// older frames were written — read as NaN/missing. Ids from another
    /// ring (out of range) are ignored.
    pub fn push(&self, at_ns: u64, entries: &[(ColumnId, f64)]) {
        let mut inner = self.lock();
        let ncols = inner.columns.len();
        let idx = (inner.written % self.capacity as u64) as usize;
        inner.written += 1;
        let frame = &mut inner.frames[idx];
        frame.at_ns = at_ns;
        frame.values.clear();
        frame.values.resize(ncols, f64::NAN);
        for &(ColumnId(col), value) in entries {
            if col < ncols {
                frame.values[col] = value;
            }
        }
    }

    /// [`TimeSeriesRing::push`] stamped with the process trace epoch clock
    /// (monotonic `Instant` anchored — immune to NTP steps).
    pub fn push_now(&self, entries: &[(ColumnId, f64)]) {
        self.push(crate::span::now_ns(), entries);
    }

    /// Frames currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        let inner = self.lock();
        inner.written.min(self.capacity as u64) as usize
    }

    /// Whether no frame has been written yet.
    pub fn is_empty(&self) -> bool {
        self.lock().written == 0
    }

    /// Frames ever written (wraparound = `written > capacity`).
    pub fn written(&self) -> u64 {
        self.lock().written
    }

    /// The ring capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Column-oriented copy of the retained frames, oldest-first.
    pub fn snapshot(&self) -> TimeSeriesSnapshot {
        self.snapshot_tail(self.capacity)
    }

    /// Like [`TimeSeriesRing::snapshot`] but keeping only the newest
    /// `max_frames` frames — the shape incident bundles embed.
    pub fn snapshot_tail(&self, max_frames: usize) -> TimeSeriesSnapshot {
        let inner = self.lock();
        let retained = inner.written.min(self.capacity as u64) as usize;
        let take = retained.min(max_frames);
        // Oldest retained frame sits at `written % capacity` once wrapped.
        let start = inner.written as usize - take;
        let mut at_ns = Vec::with_capacity(take);
        let mut columns: Vec<ColumnSeries> = inner
            .columns
            .iter()
            .map(|c| ColumnSeries {
                name: c.name.clone(),
                kind: c.kind,
                values: Vec::with_capacity(take),
            })
            .collect();
        for i in 0..take {
            let frame = &inner.frames[(start + i) % self.capacity];
            at_ns.push(frame.at_ns);
            for (col, series) in columns.iter_mut().enumerate() {
                series
                    .values
                    .push(frame.values.get(col).copied().unwrap_or(f64::NAN));
            }
        }
        TimeSeriesSnapshot {
            capacity: self.capacity,
            written: inner.written,
            at_ns,
            columns,
        }
    }

    fn lock(&self) -> MutexGuard<'_, RingInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// One column's raw samples, frame-aligned with
/// [`TimeSeriesSnapshot::at_ns`] (NaN where the frame predates the column
/// or skipped it).
#[derive(Debug, Clone)]
pub struct ColumnSeries {
    /// Column name.
    pub name: String,
    /// Counter (differenced at read time) or gauge.
    pub kind: SampleKind,
    /// Raw per-frame samples, oldest-first.
    pub values: Vec<f64>,
}

/// Point-in-time, column-oriented copy of the ring, oldest-first.
#[derive(Debug, Clone)]
pub struct TimeSeriesSnapshot {
    /// Ring capacity in frames.
    pub capacity: usize,
    /// Frames ever written at snapshot time.
    pub written: u64,
    /// Per-frame timestamps (nanoseconds, monotonic axis), oldest-first.
    pub at_ns: Vec<u64>,
    /// Every registered column's frame-aligned samples.
    pub columns: Vec<ColumnSeries>,
}

impl TimeSeriesSnapshot {
    /// Retained frame count.
    pub fn frames(&self) -> usize {
        self.at_ns.len()
    }

    /// Finds a column by name.
    pub fn column(&self, name: &str) -> Option<&ColumnSeries> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Per-frame deltas for column `col`: `values[i] - values[i-1]`. The
    /// first frame, any frame adjoining a NaN, and negative steps (a
    /// counter reset) read NaN. Gauges difference like counters — callers
    /// decide whether a gauge derivative means anything.
    pub fn deltas(&self, col: usize) -> Vec<f64> {
        self.derive(col, |delta, _| delta)
    }

    /// Per-second rates for column `col`: delta over elapsed seconds
    /// between the two frames (NaN wherever [`TimeSeriesSnapshot::deltas`]
    /// is NaN or the frames share a timestamp).
    pub fn rates_per_sec(&self, col: usize) -> Vec<f64> {
        self.derive(col, |delta, dt_seconds| {
            if dt_seconds > 0.0 {
                delta / dt_seconds
            } else {
                f64::NAN
            }
        })
    }

    fn derive(&self, col: usize, f: impl Fn(f64, f64) -> f64) -> Vec<f64> {
        let values = match self.columns.get(col) {
            Some(series) => &series.values,
            None => return Vec::new(),
        };
        let mut out = Vec::with_capacity(values.len());
        for i in 0..values.len() {
            if i == 0 {
                out.push(f64::NAN);
                continue;
            }
            let (prev, cur) = (values[i - 1], values[i]);
            let delta = cur - prev;
            if prev.is_nan() || cur.is_nan() || delta < 0.0 {
                out.push(f64::NAN);
            } else {
                let dt_seconds = self.at_ns[i].saturating_sub(self.at_ns[i - 1]) as f64 / 1e9;
                out.push(f(delta, dt_seconds));
            }
        }
        out
    }
}

/// Renders a snapshot as dashboard-ready JSON: frame timestamps plus one
/// object per column carrying raw `values` and, for counters, read-time
/// `delta` and `rate_per_s` series (NaN → `null`).
pub fn timeseries_json(snapshot: &TimeSeriesSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n");
    let _ = write!(
        out,
        "\"capacity\":{},\n\"written\":{},\n\"frames\":{},\n\"at_ns\":[",
        snapshot.capacity,
        snapshot.written,
        snapshot.frames()
    );
    for (i, ts) in snapshot.at_ns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{ts}");
    }
    out.push_str("],\n\"columns\":[");
    for (col, series) in snapshot.columns.iter().enumerate() {
        if col > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":");
        crate::export::push_json_string(&mut out, &series.name);
        let _ = write!(out, ",\"kind\":\"{}\",\"values\":[", series.kind.name());
        push_f64_list(&mut out, &series.values);
        out.push(']');
        if series.kind == SampleKind::Counter {
            out.push_str(",\"delta\":[");
            push_f64_list(&mut out, &snapshot.deltas(col));
            out.push_str("],\"rate_per_s\":[");
            push_f64_list(&mut out, &snapshot.rates_per_sec(col));
            out.push(']');
        }
        out.push('}');
    }
    out.push_str("\n]\n}\n");
    out
}

fn push_f64_list(out: &mut String, values: &[f64]) {
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        crate::export::push_f64(out, *v);
    }
}

/// Owns a running sampler thread; stops (and joins) on
/// [`SamplerHandle::stop`] or drop.
pub struct SamplerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl SamplerHandle {
    /// Signals the thread and joins it.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for SamplerHandle {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Spawns the sampler thread: calls `sample` once immediately, then every
/// `interval` (floored at 1ms) until stopped. The closure owns whatever it
/// samples — typically it reads counters/gauges/sketches and pushes one
/// frame into a captured [`TimeSeriesRing`]. Stop latency is bounded at a
/// few milliseconds regardless of interval.
pub fn start_sampler<F>(interval: Duration, mut sample: F) -> SamplerHandle
where
    F: FnMut() + Send + 'static,
{
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let tick = interval.max(Duration::from_millis(1));
    let thread = std::thread::Builder::new()
        .name("granii-sampler".to_owned())
        .spawn(move || loop {
            sample();
            let mut slept = Duration::ZERO;
            while slept < tick {
                if flag.load(Ordering::Acquire) {
                    return;
                }
                let step = (tick - slept).min(Duration::from_millis(5));
                std::thread::sleep(step);
                slept += step;
            }
        })
        .expect("spawn granii-sampler thread");
    SamplerHandle {
        stop,
        thread: Some(thread),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_and_keeps_newest() {
        let ring = TimeSeriesRing::new(4);
        let c = ring.column("reqs", SampleKind::Counter);
        for i in 0..10u64 {
            ring.push(i * 1_000_000_000, &[(c, (i * 5) as f64)]);
        }
        assert_eq!(ring.written(), 10);
        assert_eq!(ring.len(), 4);
        let snap = ring.snapshot();
        assert_eq!(snap.frames(), 4);
        assert_eq!(
            snap.at_ns,
            vec![6_000_000_000, 7_000_000_000, 8_000_000_000, 9_000_000_000]
        );
        assert_eq!(snap.columns[0].values, vec![30.0, 35.0, 40.0, 45.0]);
        let deltas = snap.deltas(0);
        assert!(deltas[0].is_nan());
        assert_eq!(&deltas[1..], &[5.0, 5.0, 5.0]);
        let rates = snap.rates_per_sec(0);
        assert!(rates[0].is_nan());
        assert_eq!(&rates[1..], &[5.0, 5.0, 5.0]);
    }

    #[test]
    fn late_columns_backfill_nan_and_counter_resets_read_nan() {
        let ring = TimeSeriesRing::new(8);
        let a = ring.column("a", SampleKind::Counter);
        ring.push(0, &[(a, 10.0)]);
        let b = ring.column("b", SampleKind::Gauge);
        ring.push(1_000_000_000, &[(a, 4.0), (b, 0.5)]);
        ring.push(2_000_000_000, &[(a, 6.0), (b, 0.25)]);
        let snap = ring.snapshot();
        assert_eq!(snap.columns.len(), 2);
        assert!(
            snap.column("b").unwrap().values[0].is_nan(),
            "pre-registration frame is NaN"
        );
        let deltas = snap.deltas(0);
        assert!(deltas[1].is_nan(), "negative step reads as a counter reset");
        assert_eq!(deltas[2], 2.0);
    }

    #[test]
    fn snapshot_tail_keeps_newest_frames() {
        let ring = TimeSeriesRing::new(8);
        let c = ring.column("x", SampleKind::Gauge);
        for i in 0..6u64 {
            ring.push(i, &[(c, i as f64)]);
        }
        let tail = ring.snapshot_tail(2);
        assert_eq!(tail.at_ns, vec![4, 5]);
        assert_eq!(tail.columns[0].values, vec![4.0, 5.0]);
    }

    #[test]
    fn json_export_is_structured_and_nan_is_null() {
        let ring = TimeSeriesRing::new(4);
        let c = ring.column("serve.completed", SampleKind::Counter);
        let g = ring.column("queue_depth", SampleKind::Gauge);
        ring.push(0, &[(c, 0.0), (g, 1.0)]);
        ring.push(500_000_000, &[(c, 10.0), (g, 3.0)]);
        let json = timeseries_json(&ring.snapshot());
        assert!(json.contains("\"serve.completed\""));
        assert!(json.contains("\"kind\":\"counter\""));
        assert!(json.contains("\"kind\":\"gauge\""));
        assert!(json.contains("\"rate_per_s\":[null,20]"));
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn foreign_column_ids_are_ignored() {
        let ring = TimeSeriesRing::new(2);
        ring.push(0, &[(ColumnId(7), 1.0)]);
        assert_eq!(ring.snapshot().columns.len(), 0);
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn sampler_ticks_and_stops() {
        let ring = Arc::new(TimeSeriesRing::new(16));
        let col = ring.column("tick", SampleKind::Counter);
        let writer = Arc::clone(&ring);
        let mut n = 0u64;
        let handle = start_sampler(Duration::from_millis(2), move || {
            n += 1;
            writer.push_now(&[(col, n as f64)]);
        });
        while ring.written() < 3 {
            std::thread::sleep(Duration::from_millis(1));
        }
        handle.stop();
        let after = ring.written();
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(ring.written(), after, "stopped sampler writes nothing");
        let snap = ring.snapshot();
        let vals = &snap.column("tick").unwrap().values;
        assert!(
            vals.windows(2).all(|w| w[1] > w[0]),
            "monotone ticks: {vals:?}"
        );
    }
}
