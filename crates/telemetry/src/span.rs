//! Span recording: RAII guards writing into per-thread buffers.
//!
//! Every thread owns an `Arc<Mutex<Vec<SpanRecord>>>` registered in a global
//! list; the recording path locks only the calling thread's own buffer, so
//! the mutex is uncontended unless a collector is draining concurrently
//! ("lock-free-ish"). Nesting depth and a per-thread entry sequence are
//! tracked in thread-locals, which lets exporters rebuild the span tree
//! without parent pointers.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// A span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer attribute (counts, sizes).
    U64(u64),
    /// Floating-point attribute (seconds, ratios).
    F64(f64),
    /// String attribute (labels).
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// One completed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name (static, from the instrumentation point).
    pub name: &'static str,
    /// Start time in microseconds since the process trace epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Small sequential id of the recording thread.
    pub tid: u64,
    /// Nesting depth at entry (0 = thread root).
    pub depth: u16,
    /// Per-thread entry order (strictly increasing in span-open order).
    pub seq: u64,
    /// Key/value attributes attached via [`SpanGuard::attr`].
    pub attrs: Vec<(&'static str, AttrValue)>,
}

type Buffer = std::sync::Arc<Mutex<Vec<SpanRecord>>>;

fn registry() -> &'static Mutex<Vec<Buffer>> {
    static REGISTRY: OnceLock<Mutex<Vec<Buffer>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since the process trace epoch (the first telemetry
/// timestamp taken). Lets callers that assemble their own [`SpanRecord`]s —
/// e.g. the serving runtime's per-request trace lanes — place them on the
/// same timeline as [`span`]-recorded spans.
pub fn now_us() -> u64 {
    Instant::now().duration_since(epoch()).as_micros() as u64
}

/// Nanoseconds elapsed since the process trace epoch.
pub(crate) fn now_ns() -> u64 {
    Instant::now().duration_since(epoch()).as_nanos() as u64
}

/// Appends an externally assembled span record to the calling thread's
/// buffer (no-op when telemetry is disabled). [`take_spans`] returns it
/// alongside [`span`]-recorded spans; exporters treat both identically, so a
/// caller can synthesize lanes — e.g. one virtual `tid` per sampled request —
/// that Perfetto renders as separate tracks.
pub fn record_span(record: SpanRecord) {
    if !crate::enabled() {
        return;
    }
    with_local_buffer(|buffer| {
        buffer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(record)
    });
}

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LOCAL_BUFFER: RefCell<Option<Buffer>> = const { RefCell::new(None) };
    static LOCAL_TID: Cell<u64> = const { Cell::new(u64::MAX) };
    static LOCAL_DEPTH: Cell<u16> = const { Cell::new(0) };
    static LOCAL_SEQ: Cell<u64> = const { Cell::new(0) };
}

fn local_tid() -> u64 {
    LOCAL_TID.with(|t| {
        if t.get() == u64::MAX {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

fn with_local_buffer(f: impl FnOnce(&Buffer)) {
    LOCAL_BUFFER.with(|slot| {
        let mut slot = slot.borrow_mut();
        let buffer = slot.get_or_insert_with(|| {
            let buffer: Buffer = std::sync::Arc::new(Mutex::new(Vec::new()));
            registry()
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(std::sync::Arc::clone(&buffer));
            buffer
        });
        f(buffer);
    });
}

/// RAII span handle: records a [`SpanRecord`] when dropped (if recording).
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: &'static str,
    started: Instant,
    start_us: u64,
    depth: u16,
    seq: u64,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// Opens a span named `name`. When telemetry is disabled this returns an
/// inert guard after a single relaxed atomic load — the zero-overhead path.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { active: None };
    }
    let started = Instant::now();
    let start_us = started.duration_since(epoch()).as_micros() as u64;
    let depth = LOCAL_DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    let seq = LOCAL_SEQ.with(|s| {
        let seq = s.get();
        s.set(seq + 1);
        seq
    });
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            started,
            start_us,
            depth,
            seq,
            attrs: Vec::new(),
        }),
    }
}

impl SpanGuard {
    /// Whether this guard will record on drop. Use to gate attribute
    /// construction (the [`crate::span!`] macro does this automatically).
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }

    /// Attaches a key/value attribute (no-op on an inert guard).
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(active) = &mut self.active {
            active.attrs.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let dur_us = active.started.elapsed().as_micros() as u64;
        LOCAL_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let record = SpanRecord {
            name: active.name,
            start_us: active.start_us,
            dur_us,
            tid: local_tid(),
            depth: active.depth,
            seq: active.seq,
            attrs: active.attrs,
        };
        with_local_buffer(|buffer| {
            buffer
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(record)
        });
    }
}

/// Drains every thread's completed spans, ordered by `(tid, seq)` — i.e. per
/// thread, in span-open order, parents before their children.
pub fn take_spans() -> Vec<SpanRecord> {
    let buffers: Vec<Buffer> = registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    let mut out = Vec::new();
    for buffer in buffers {
        out.append(&mut buffer.lock().unwrap_or_else(PoisonError::into_inner));
    }
    out.sort_by_key(|r| (r.tid, r.seq));
    out
}

pub(crate) fn clear_spans() {
    let buffers: Vec<Buffer> = registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    for buffer in buffers {
        buffer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }
}
