//! Structured tracing + metrics for the GRANII stack.
//!
//! The paper's central overhead claim (§VI-C1: selection costs "at most 7 ms
//! on GPU, 0.42 s on CPU, incurred only once") and its per-primitive
//! breakdowns (Fig 2) are only auditable if every kernel dispatch,
//! featurization, selection, and training step is visible. This crate is the
//! dependency-free observability layer the rest of the workspace reports
//! through:
//!
//! - **Spans** ([`span`], [`span!`]): nestable RAII regions recording wall
//!   time, thread id, nesting depth, and key/value attributes into per-thread
//!   buffers (each thread appends to its own mutex — only the collector ever
//!   contends).
//! - **Metrics** ([`counter_add`], [`histogram_record_seconds`]): named
//!   counters and log₂-bucketed latency histograms.
//! - **Sketches** ([`sketch_handle`], [`Sketch`]): mergeable bounded-
//!   relative-error quantile sketches (for SLO-grade p99/p999) and a
//!   distinct-count estimator for unique request fingerprints.
//! - **Time series** ([`timeseries`], [`TimeSeriesRing`], [`start_sampler`]):
//!   a fixed-capacity on-host ring of periodic samples (counters, gauges,
//!   sketch quantiles) with read-time delta/rate derivation — the
//!   continuous timeline snapshots and post-mortems both lack.
//! - **Exporters** ([`export::chrome_trace`], [`export::metrics_json`],
//!   [`export::summary`]): Chrome trace-event JSON (loadable in Perfetto /
//!   `chrome://tracing`), a flat JSON metrics dump, and a human-readable
//!   hierarchical summary.
//!
//! Telemetry is **off by default** and costs one relaxed atomic load per
//! instrumentation point when disabled: [`span`] returns an inert guard and
//! the [`span!`] macro does not even evaluate its attribute expressions.
//!
//! # Example
//!
//! ```
//! granii_telemetry::enable();
//! {
//!     let _outer = granii_telemetry::span!("layer", k_in = 64u64);
//!     let _inner = granii_telemetry::span!("kernel.spmm", edges = 1024u64);
//! }
//! let spans = granii_telemetry::take_spans();
//! assert_eq!(spans.len(), 2);
//! let trace = granii_telemetry::export::chrome_trace(&spans);
//! assert!(trace.starts_with('['));
//! granii_telemetry::disable();
//! ```

mod events;
pub mod export;
mod metrics;
mod profile;
pub mod sketch;
mod span;
pub mod timeseries;

pub use events::{
    event_record, events_dropped, snapshot_events, take_events, EventRecord, EVENT_CAPACITY,
};
pub use metrics::{
    counter_add, distinct_handle, distinct_observe, gauge_set, histogram_record_ns,
    histogram_record_seconds, metrics_snapshot, sketch_handle, sketch_record_ns, HistogramSnapshot,
    MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use profile::{ProfileReport, ProfileRow};
pub use sketch::{DistinctCounter, DistinctSnapshot, Sketch, SketchSnapshot, DEFAULT_SKETCH_ALPHA};
pub use span::{now_us, record_span, span, take_spans, AttrValue, SpanGuard, SpanRecord};
pub use timeseries::{
    start_sampler, timeseries_json, ColumnId, ColumnSeries, SampleKind, SamplerHandle,
    TimeSeriesRing, TimeSeriesSnapshot,
};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns telemetry on: subsequent spans and metric updates are recorded.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns telemetry off: instrumentation points become single-atomic-load
/// no-ops. Already-recorded data is kept until [`take_spans`] / [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether telemetry is currently recording.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears all recorded spans, metrics, and events (the enabled flag is
/// untouched). Also re-stamps the metrics uptime baseline — see
/// [`MetricsSnapshot::uptime_ns`].
pub fn reset() {
    span::clear_spans();
    metrics::clear_metrics();
    events::clear_events();
}

/// Opens a span with optional `key = value` attributes.
///
/// Attribute expressions are only evaluated when telemetry is enabled, so a
/// disabled call site costs one atomic load. Values may be any type
/// convertible to [`AttrValue`] (`u64`/`usize`/`f64`/`&str`/`String`).
///
/// ```
/// granii_telemetry::enable();
/// let _s = granii_telemetry::span!("spmm", edges = 4096u64, irregularity = 0.7);
/// granii_telemetry::disable();
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let mut guard = $crate::span($name);
        if guard.is_recording() {
            $(guard.attr(stringify!($key), $value);)+
        }
        guard
    }};
}

/// Records a structured event with optional `key = value` fields.
///
/// Field expressions are only evaluated when telemetry is enabled, so a
/// disabled call site costs one atomic load. Values may be any type
/// convertible to [`AttrValue`].
///
/// ```
/// granii_telemetry::enable();
/// granii_telemetry::reset();
/// granii_telemetry::event!("serve.shed", depth = 64u64);
/// assert_eq!(granii_telemetry::take_events().len(), 1);
/// granii_telemetry::disable();
/// ```
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        if $crate::enabled() {
            $crate::event_record($name, Vec::new());
        }
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::event_record(
                $name,
                vec![$((stringify!($key), $crate::AttrValue::from($value))),+],
            );
        }
    };
}
