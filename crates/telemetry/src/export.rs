//! Exporters: Chrome trace-event JSON, flat metrics JSON, and a hierarchical
//! text summary.
//!
//! JSON is written by hand (this crate is dependency-free by design — it must
//! not pull the workspace serde shim into every leaf crate). Only the small
//! subset needed here is emitted: objects, arrays, strings, and numbers.

use std::fmt::Write as _;

use crate::metrics::MetricsSnapshot;
use crate::span::{AttrValue, SpanRecord};

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's f64 Display is shortest-round-trip decimal, valid JSON.
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_attr(out: &mut String, value: &AttrValue) {
    match value {
        AttrValue::U64(v) => {
            let _ = write!(out, "{v}");
        }
        AttrValue::F64(v) => push_f64(out, *v),
        AttrValue::Str(s) => push_json_string(out, s),
    }
}

/// Renders spans as a Chrome trace-event JSON array of complete (`"ph":"X"`)
/// events, loadable in Perfetto or `chrome://tracing`. Timestamps and
/// durations are microseconds; span attributes land in `args`.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(128 * spans.len() + 2);
    out.push('[');
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":");
        push_json_string(&mut out, span.name);
        let _ = write!(
            out,
            ",\"cat\":\"granii\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
            span.start_us, span.dur_us, span.tid
        );
        out.push_str(",\"args\":{\"depth\":");
        let _ = write!(out, "{}", span.depth);
        for (key, value) in &span.attrs {
            out.push(',');
            push_json_string(&mut out, key);
            out.push(':');
            push_attr(&mut out, value);
        }
        out.push_str("}}");
    }
    out.push_str("\n]\n");
    out
}

/// Renders a metrics snapshot as a flat JSON object:
/// `{"counters": {name: value}, "histograms": {name: {count, sum_ns, ...}}}`.
/// Histogram buckets are emitted sparsely as `[[bucket_index, count], ...]`.
pub fn metrics_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{\n\"counters\":{");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        push_json_string(&mut out, name);
        let _ = write!(out, ":{value}");
    }
    out.push_str("\n},\n\"histograms\":{");
    for (i, h) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        push_json_string(&mut out, &h.name);
        let _ = write!(
            out,
            ":{{\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":",
            h.count, h.sum_ns, h.min_ns, h.max_ns
        );
        push_f64(&mut out, h.mean_ns());
        out.push_str(",\"buckets\":[");
        let mut first = true;
        for (idx, count) in h.buckets.iter().enumerate() {
            if *count > 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{idx},{count}]");
            }
        }
        out.push_str("]}");
    }
    out.push_str("\n}\n}\n");
    out
}

/// Renders a human-readable hierarchical summary: spans are grouped by their
/// path (name chain from each thread's root), with call counts, total time,
/// and share of the root spans' total time.
pub fn summary(spans: &[SpanRecord]) -> String {
    // take_spans() already orders by (tid, seq); re-sort defensively so the
    // stack walk below is correct for arbitrary input.
    let mut ordered: Vec<&SpanRecord> = spans.iter().collect();
    ordered.sort_by_key(|r| (r.tid, r.seq));

    // Aggregate by full path. Paths are rebuilt per thread from recorded
    // depths: a span at depth d is a child of the last span at depth d-1.
    let mut order: Vec<String> = Vec::new();
    let mut totals: std::collections::HashMap<String, (u64, u64, u16)> =
        std::collections::HashMap::new();
    let mut stack: Vec<&'static str> = Vec::new();
    let mut current_tid = None;
    let mut root_total_us: u64 = 0;
    for span in &ordered {
        if current_tid != Some(span.tid) {
            current_tid = Some(span.tid);
            stack.clear();
        }
        stack.truncate(span.depth as usize);
        stack.push(span.name);
        let path = stack.join(" > ");
        if span.depth == 0 {
            root_total_us += span.dur_us;
        }
        let entry = totals.entry(path.clone()).or_insert_with(|| {
            order.push(path);
            (0, 0, span.depth)
        });
        entry.0 += 1;
        entry.1 += span.dur_us;
    }

    let mut out =
        String::from("span                                      calls     total      share\n");
    for path in &order {
        let (calls, total_us, depth) = totals[path];
        let name = path.rsplit(" > ").next().unwrap_or(path);
        let label = format!("{}{}", "  ".repeat(depth as usize), name);
        let share = if root_total_us == 0 {
            0.0
        } else {
            100.0 * total_us as f64 / root_total_us as f64
        };
        let _ = writeln!(
            out,
            "{label:<40} {calls:>7} {:>8.3}ms {share:>9.1}%",
            total_us as f64 / 1e3
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{AttrValue, SpanRecord};

    fn rec(name: &'static str, tid: u64, depth: u16, seq: u64, dur_us: u64) -> SpanRecord {
        SpanRecord {
            name,
            start_us: seq * 10,
            dur_us,
            tid,
            depth,
            seq,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn chrome_trace_escapes_and_structures() {
        let mut span = rec("a\"b", 0, 0, 0, 5);
        span.attrs.push(("note", AttrValue::Str("x\ny".into())));
        span.attrs.push(("n", AttrValue::U64(3)));
        span.attrs.push(("f", AttrValue::F64(0.5)));
        let json = chrome_trace(&[span]);
        assert!(json.contains("\"name\":\"a\\\"b\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"note\":\"x\\ny\""));
        assert!(json.contains("\"n\":3"));
        assert!(json.contains("\"f\":0.5"));
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn summary_groups_by_path() {
        let spans = vec![
            rec("root", 0, 0, 0, 100),
            rec("child", 0, 1, 1, 60),
            rec("child", 0, 1, 2, 20),
            rec("root", 1, 0, 0, 50),
        ];
        let text = summary(&spans);
        assert!(text.contains("root"));
        assert!(text.contains("  child"));
        // child appears once (aggregated), with 2 calls.
        assert_eq!(text.matches("child").count(), 1);
    }
}
