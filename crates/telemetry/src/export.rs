//! Exporters: Chrome trace-event JSON, flat metrics JSON, and a hierarchical
//! text summary.
//!
//! JSON is written by hand (this crate is dependency-free by design — it must
//! not pull the workspace serde shim into every leaf crate). Only the small
//! subset needed here is emitted: objects, arrays, strings, and numbers.

use std::fmt::Write as _;

use crate::events::EventRecord;
use crate::metrics::MetricsSnapshot;
use crate::profile::{ProfileReport, ProfileRow};
use crate::span::{AttrValue, SpanRecord};

pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's f64 Display is shortest-round-trip decimal, valid JSON.
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_attr(out: &mut String, value: &AttrValue) {
    match value {
        AttrValue::U64(v) => {
            let _ = write!(out, "{v}");
        }
        AttrValue::F64(v) => push_f64(out, *v),
        AttrValue::Str(s) => push_json_string(out, s),
    }
}

fn push_span_events(out: &mut String, spans: &[SpanRecord], mut first: bool) -> bool {
    for span in spans {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n{\"name\":");
        push_json_string(out, span.name);
        let _ = write!(
            out,
            ",\"cat\":\"granii\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
            span.start_us, span.dur_us, span.tid
        );
        out.push_str(",\"args\":{\"depth\":");
        let _ = write!(out, "{}", span.depth);
        for (key, value) in &span.attrs {
            out.push(',');
            push_json_string(out, key);
            out.push(':');
            push_attr(out, value);
        }
        out.push_str("}}");
    }
    first
}

/// Renders spans as a Chrome trace-event JSON array of complete (`"ph":"X"`)
/// events, loadable in Perfetto or `chrome://tracing`. Timestamps and
/// durations are microseconds; span attributes land in `args`.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(128 * spans.len() + 2);
    out.push('[');
    push_span_events(&mut out, spans, true);
    out.push_str("\n]\n");
    out
}

/// Renders spans plus per-instruction counter tracks from a profile report
/// as one Chrome trace. The counter events (`"ph":"C"`) sample the flop and
/// byte throughput of each profiled instruction along a synthetic timeline
/// built from the rows' achieved times, so Perfetto shows `profile.flops`
/// and `profile.bytes` tracks next to the span flame graph.
pub fn chrome_trace_with_counters(spans: &[SpanRecord], report: &ProfileReport) -> String {
    let mut out = String::with_capacity(128 * (spans.len() + 2 * report.rows.len()) + 2);
    out.push('[');
    let mut first = push_span_events(&mut out, spans, true);
    let mut ts_us = 0u64;
    for row in &report.rows {
        let calls = row.calls.max(1);
        for (track, value) in [
            ("profile.flops", row.flops / calls),
            ("profile.bytes", row.bytes / calls),
        ] {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n{\"name\":");
            push_json_string(&mut out, track);
            let _ = write!(
                out,
                ",\"cat\":\"granii\",\"ph\":\"C\",\"ts\":{ts_us},\"pid\":1,\"args\":{{"
            );
            push_json_string(&mut out, &row.name);
            let _ = write!(out, ":{value}}}}}");
        }
        ts_us += (row.host_ns / calls) / 1_000;
    }
    out.push_str("\n]\n");
    out
}

/// Renders a metrics snapshot as a flat JSON object:
/// `{"captured_at_ns": ..., "uptime_ns": ..., "events_dropped": ...,
/// "counters": {name: value},
/// "gauges": {name: value}, "histograms": {name: {count, sum_ns, ...}},
/// "sketches": {name: {alpha, count, ..., p999_ns, buckets}},
/// "distinct": {name: estimate}}`.
/// Histogram and sketch buckets are emitted sparsely as
/// `[[bucket_index, count], ...]`. `captured_at_ns` is monotonic since the
/// process trace epoch, so two dumps from one long-running server can be
/// ordered and diffed into rates.
pub fn metrics_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{\n");
    let _ = write!(
        out,
        "\"captured_at_ns\":{},\n\"uptime_ns\":{},\n\"events_dropped\":{},\n",
        snapshot.captured_at_ns, snapshot.uptime_ns, snapshot.events_dropped
    );
    out.push_str("\"counters\":{");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        push_json_string(&mut out, name);
        let _ = write!(out, ":{value}");
    }
    out.push_str("\n},\n\"gauges\":{");
    for (i, (name, value)) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        push_json_string(&mut out, name);
        out.push(':');
        push_f64(&mut out, *value);
    }
    out.push_str("\n},\n\"histograms\":{");
    for (i, h) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        push_json_string(&mut out, &h.name);
        let _ = write!(
            out,
            ":{{\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":",
            h.count, h.sum_ns, h.min_ns, h.max_ns
        );
        push_f64(&mut out, h.mean_ns());
        out.push_str(",\"p50_ns\":");
        push_f64(&mut out, h.p50_ns());
        out.push_str(",\"p95_ns\":");
        push_f64(&mut out, h.p95_ns());
        out.push_str(",\"p99_ns\":");
        push_f64(&mut out, h.p99_ns());
        out.push_str(",\"buckets\":[");
        let mut first = true;
        for (idx, count) in h.buckets.iter().enumerate() {
            if *count > 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{idx},{count}]");
            }
        }
        out.push_str("]}");
    }
    out.push_str("\n},\n\"sketches\":{");
    for (i, s) in snapshot.sketches.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        push_json_string(&mut out, &s.name);
        out.push_str(":{\"alpha\":");
        push_f64(&mut out, s.alpha);
        let _ = write!(
            out,
            ",\"count\":{},\"zero_count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":",
            s.count, s.zero_count, s.sum_ns, s.min_ns, s.max_ns
        );
        push_f64(&mut out, s.mean_ns());
        for (label, q) in [
            ("p50_ns", 0.50),
            ("p95_ns", 0.95),
            ("p99_ns", 0.99),
            ("p999_ns", 0.999),
        ] {
            let _ = write!(out, ",\"{label}\":");
            push_f64(&mut out, s.quantile_ns(q));
        }
        out.push_str(",\"buckets\":[");
        for (j, (idx, count)) in s.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{idx},{count}]");
        }
        out.push_str("]}");
    }
    out.push_str("\n},\n\"distinct\":{");
    for (i, d) in snapshot.distincts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        push_json_string(&mut out, &d.name);
        out.push(':');
        push_f64(&mut out, d.estimate);
    }
    out.push_str("\n}\n}\n");
    out
}

/// Renders the sketch section of a metrics snapshot as a quantile table —
/// one line per sketch with count, mean, and p50/p95/p99/p999 in
/// milliseconds, plus distinct-count estimates. Empty string when the
/// snapshot holds no sketches, so callers can append it conditionally.
pub fn sketch_summary(snapshot: &MetricsSnapshot) -> String {
    if snapshot.sketches.is_empty() && snapshot.distincts.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    if !snapshot.sketches.is_empty() {
        out.push_str(
            "sketch                                    count      mean       p50       p95       p99      p999\n",
        );
        for s in &snapshot.sketches {
            let _ = writeln!(
                out,
                "{:<40} {:>7} {:>7.3}ms {:>7.3}ms {:>7.3}ms {:>7.3}ms {:>7.3}ms",
                s.name,
                s.count,
                s.mean_ns() / 1e6,
                s.p50_ns() / 1e6,
                s.p95_ns() / 1e6,
                s.p99_ns() / 1e6,
                s.p999_ns() / 1e6
            );
        }
    }
    for d in &snapshot.distincts {
        let _ = writeln!(out, "distinct {:<36} ~{:.0}", d.name, d.estimate);
    }
    out
}

/// Renders events as JSON Lines: one object per line, in record order —
/// `{"event": name, "ts_us": N, ...fields}`. JSONL is greppable and
/// tail-able, the natural shape for an append-only structured event log.
pub fn events_jsonl(events: &[EventRecord]) -> String {
    let mut out = String::with_capacity(96 * events.len());
    for event in events {
        out.push_str("{\"event\":");
        push_json_string(&mut out, event.name);
        let _ = write!(out, ",\"ts_us\":{}", event.ts_us);
        for (key, value) in &event.fields {
            out.push(',');
            push_json_string(&mut out, key);
            out.push(':');
            push_attr(&mut out, value);
        }
        out.push_str("}\n");
    }
    out
}

/// Renders a human-readable hierarchical summary: spans are grouped by their
/// path (name chain from each thread's root), with call counts, total time,
/// share of the root spans' total time, and exact per-path p50/p95 latency
/// (computed from the individual span durations, not histogram buckets).
pub fn summary(spans: &[SpanRecord]) -> String {
    // take_spans() already orders by (tid, seq); re-sort defensively so the
    // stack walk below is correct for arbitrary input.
    let mut ordered: Vec<&SpanRecord> = spans.iter().collect();
    ordered.sort_by_key(|r| (r.tid, r.seq));

    // Aggregate by full path. Paths are rebuilt per thread from recorded
    // depths: a span at depth d is a child of the last span at depth d-1.
    struct PathStats {
        calls: u64,
        total_us: u64,
        depth: u16,
        durs_us: Vec<u64>,
    }
    let mut order: Vec<String> = Vec::new();
    let mut totals: std::collections::HashMap<String, PathStats> = std::collections::HashMap::new();
    let mut stack: Vec<&'static str> = Vec::new();
    let mut current_tid = None;
    let mut root_total_us: u64 = 0;
    for span in &ordered {
        if current_tid != Some(span.tid) {
            current_tid = Some(span.tid);
            stack.clear();
        }
        stack.truncate(span.depth as usize);
        stack.push(span.name);
        let path = stack.join(" > ");
        if span.depth == 0 {
            root_total_us += span.dur_us;
        }
        let entry = totals.entry(path.clone()).or_insert_with(|| {
            order.push(path);
            PathStats {
                calls: 0,
                total_us: 0,
                depth: span.depth,
                durs_us: Vec::new(),
            }
        });
        entry.calls += 1;
        entry.total_us += span.dur_us;
        entry.durs_us.push(span.dur_us);
    }

    // Exact quantile over the sorted per-path durations (nearest-rank).
    fn exact_quantile_us(sorted: &[u64], q: f64) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    let mut out = String::from(
        "span                                      calls     total      share       p50       p95\n",
    );
    for path in &order {
        let stats = &mut totals.get_mut(path).expect("path recorded");
        stats.durs_us.sort_unstable();
        let name = path.rsplit(" > ").next().unwrap_or(path);
        let label = format!("{}{}", "  ".repeat(stats.depth as usize), name);
        let share = if root_total_us == 0 {
            0.0
        } else {
            100.0 * stats.total_us as f64 / root_total_us as f64
        };
        let p50 = exact_quantile_us(&stats.durs_us, 0.50);
        let p95 = exact_quantile_us(&stats.durs_us, 0.95);
        let _ = writeln!(
            out,
            "{label:<40} {:>7} {:>8.3}ms {share:>9.1}% {:>7.3}ms {:>7.3}ms",
            stats.calls,
            stats.total_us as f64 / 1e3,
            p50 as f64 / 1e3,
            p95 as f64 / 1e3
        );
    }
    out
}

fn push_profile_row(out: &mut String, row: &ProfileRow) {
    out.push_str("{\"index\":");
    let _ = write!(out, "{}", row.index);
    out.push_str(",\"name\":");
    push_json_string(out, &row.name);
    out.push_str(",\"phase\":");
    push_json_string(out, &row.phase);
    let _ = write!(
        out,
        ",\"calls\":{},\"host_ns\":{},\"charged_ns\":{},\"predicted_ns\":{},\"flops\":{},\"bytes\":{}",
        row.calls, row.host_ns, row.charged_ns, row.predicted_ns, row.flops, row.bytes
    );
    out.push_str(",\"host_ns_per_call\":");
    push_f64(out, row.host_ns_per_call());
    out.push_str(",\"predicted_ns_per_call\":");
    push_f64(out, row.predicted_ns_per_call());
    out.push_str(",\"roofline_ratio\":");
    match row.roofline_ratio() {
        Some(r) => push_f64(out, r),
        None => out.push_str("null"),
    }
    out.push('}');
}

/// Renders a [`ProfileReport`] as JSON:
/// `{"expr", "device", "iterations", totals, "rows":[{...}, ...]}`.
pub fn profile_json(report: &ProfileReport) -> String {
    let mut out = String::from("{\n\"expr\":");
    push_json_string(&mut out, &report.expr);
    out.push_str(",\n\"device\":");
    push_json_string(&mut out, &report.device);
    let _ = write!(
        out,
        ",\n\"iterations\":{},\n\"total_host_ns\":{},\n\"total_predicted_ns\":{},\n\"rows\":[",
        report.iterations,
        report.total_host_ns(),
        report.total_predicted_ns()
    );
    for (i, row) in report.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        push_profile_row(&mut out, row);
    }
    out.push_str("\n]\n}\n");
    out
}

/// Renders a [`ProfileReport`] as a roofline table: one line per
/// instruction with achieved vs. device-model-predicted time per call and
/// the attributed work. A ratio well above 1 means the kernel ran slower
/// than the device model says the work should take.
pub fn profile_table(report: &ProfileReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile of {} on {} ({} iterations)",
        report.expr, report.device, report.iterations
    );
    out.push_str(
        "#   instr            phase  calls  achieved/call  predicted/call   ratio      flops      bytes\n",
    );
    for row in &report.rows {
        let ratio = match row.roofline_ratio() {
            Some(r) => format!("{r:>6.2}x"),
            None => "     -".to_owned(),
        };
        let _ = writeln!(
            out,
            "{:<3} {:<16} {:<6} {:>6} {:>12.3}us {:>13.3}us {ratio} {:>10} {:>10}",
            row.index,
            row.name,
            row.phase,
            row.calls,
            row.host_ns_per_call() / 1e3,
            row.predicted_ns_per_call() / 1e3,
            row.flops,
            row.bytes
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{AttrValue, SpanRecord};

    fn rec(name: &'static str, tid: u64, depth: u16, seq: u64, dur_us: u64) -> SpanRecord {
        SpanRecord {
            name,
            start_us: seq * 10,
            dur_us,
            tid,
            depth,
            seq,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn chrome_trace_escapes_and_structures() {
        let mut span = rec("a\"b", 0, 0, 0, 5);
        span.attrs.push(("note", AttrValue::Str("x\ny".into())));
        span.attrs.push(("n", AttrValue::U64(3)));
        span.attrs.push(("f", AttrValue::F64(0.5)));
        let json = chrome_trace(&[span]);
        assert!(json.contains("\"name\":\"a\\\"b\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"note\":\"x\\ny\""));
        assert!(json.contains("\"n\":3"));
        assert!(json.contains("\"f\":0.5"));
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn summary_groups_by_path() {
        let spans = vec![
            rec("root", 0, 0, 0, 100),
            rec("child", 0, 1, 1, 60),
            rec("child", 0, 1, 2, 20),
            rec("root", 1, 0, 0, 50),
        ];
        let text = summary(&spans);
        assert!(text.contains("root"));
        assert!(text.contains("  child"));
        // child appears once (aggregated), with 2 calls.
        assert_eq!(text.matches("child").count(), 1);
    }
}
