//! Metrics registry: named counters and log₂-bucketed latency histograms.
//!
//! Both live behind one global mutex keyed by `&'static str`-like string
//! names. Recording is gated on [`crate::enabled`] so a disabled call site
//! costs one relaxed atomic load, same as spans.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock, PoisonError};

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket `i ≥ 1`
/// covers durations in `[2^(i-1), 2^i)` nanoseconds.
pub const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Debug, Clone)]
struct Histogram {
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }

    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.buckets[bucket_index(ns)] += 1;
    }
}

/// Maps a nanosecond value to its log₂ bucket.
pub(crate) fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        64 - ns.leading_zeros() as usize
    }
}

struct Registry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
        })
    })
}

fn with_registry(f: impl FnOnce(&mut Registry)) {
    f(&mut registry().lock().unwrap_or_else(PoisonError::into_inner));
}

/// Adds `delta` to the counter named `name` (no-op when disabled).
pub fn counter_add(name: &str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    with_registry(|r| {
        *r.counters.entry(name.to_owned()).or_insert(0) += delta;
    });
}

/// Records one nanosecond duration into the histogram named `name`
/// (no-op when disabled).
pub fn histogram_record_ns(name: &str, ns: u64) {
    if !crate::enabled() {
        return;
    }
    with_registry(|r| {
        r.histograms
            .entry(name.to_owned())
            .or_insert_with(Histogram::new)
            .record(ns);
    });
}

/// Records a duration given in seconds (converted to integer nanoseconds;
/// negative or non-finite values are recorded as zero).
pub fn histogram_record_seconds(name: &str, seconds: f64) {
    if !crate::enabled() {
        return;
    }
    let ns = if seconds.is_finite() && seconds > 0.0 {
        (seconds * 1e9) as u64
    } else {
        0
    };
    histogram_record_ns(name, ns);
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values in nanoseconds.
    pub sum_ns: u64,
    /// Smallest recorded value in nanoseconds.
    pub min_ns: u64,
    /// Largest recorded value in nanoseconds.
    pub max_ns: u64,
    /// Per-bucket counts; see [`HISTOGRAM_BUCKETS`] for the bucket scheme.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean recorded value in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

/// Point-in-time copy of every counter and histogram.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter name → accumulated value, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Copies the current metrics state without clearing it.
pub fn metrics_snapshot() -> MetricsSnapshot {
    let registry = registry().lock().unwrap_or_else(PoisonError::into_inner);
    MetricsSnapshot {
        counters: registry
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
        histograms: registry
            .histograms
            .iter()
            .map(|(name, h)| HistogramSnapshot {
                name: name.clone(),
                count: h.count,
                sum_ns: h.sum_ns,
                min_ns: if h.count == 0 { 0 } else { h.min_ns },
                max_ns: h.max_ns,
                buckets: h.buckets,
            })
            .collect(),
    }
}

pub(crate) fn clear_metrics() {
    with_registry(|r| {
        r.counters.clear();
        r.histograms.clear();
    });
}

#[cfg(test)]
mod tests {
    use super::bucket_index;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1); // [1, 2)
        assert_eq!(bucket_index(2), 2); // [2, 4)
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3); // [4, 8)
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }
}
