//! Metrics registry: named counters and log₂-bucketed latency histograms.
//!
//! Both live behind one global mutex keyed by `&'static str`-like string
//! names. Recording is gated on [`crate::enabled`] so a disabled call site
//! costs one relaxed atomic load, same as spans.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use crate::sketch::{DistinctCounter, DistinctSnapshot, Sketch, SketchSnapshot};

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket `i ≥ 1`
/// covers durations in `[2^(i-1), 2^i)` nanoseconds.
pub const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Debug, Clone)]
struct Histogram {
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }

    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.buckets[bucket_index(ns)] += 1;
    }
}

/// Maps a nanosecond value to its log₂ bucket.
pub(crate) fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        64 - ns.leading_zeros() as usize
    }
}

/// Inclusive-lower/exclusive-upper nanosecond bounds of bucket `idx`.
pub(crate) fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx == 0 {
        (0, 0)
    } else if idx >= 64 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (idx - 1), 1u64 << idx)
    }
}

struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    sketches: BTreeMap<String, Arc<Sketch>>,
    distincts: BTreeMap<String, Arc<DistinctCounter>>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            sketches: BTreeMap::new(),
            distincts: BTreeMap::new(),
        })
    })
}

fn with_registry(f: impl FnOnce(&mut Registry)) {
    f(&mut registry().lock().unwrap_or_else(PoisonError::into_inner));
}

/// Adds `delta` to the counter named `name` (no-op when disabled).
pub fn counter_add(name: &str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    with_registry(|r| {
        *r.counters.entry(name.to_owned()).or_insert(0) += delta;
    });
}

/// Sets the gauge named `name` to `value` (no-op when disabled). Unlike
/// counters, a gauge is a last-write-wins instantaneous reading — queue
/// depth, cache occupancy, hit rate — not an accumulation.
pub fn gauge_set(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    with_registry(|r| {
        r.gauges.insert(name.to_owned(), value);
    });
}

/// Records one nanosecond duration into the histogram named `name`
/// (no-op when disabled).
pub fn histogram_record_ns(name: &str, ns: u64) {
    if !crate::enabled() {
        return;
    }
    with_registry(|r| {
        r.histograms
            .entry(name.to_owned())
            .or_insert_with(Histogram::new)
            .record(ns);
    });
}

/// Records a duration given in seconds (converted to integer nanoseconds;
/// negative or non-finite values are recorded as zero).
pub fn histogram_record_seconds(name: &str, seconds: f64) {
    if !crate::enabled() {
        return;
    }
    let ns = if seconds.is_finite() && seconds > 0.0 {
        (seconds * 1e9) as u64
    } else {
        0
    };
    histogram_record_ns(name, ns);
}

/// Returns the registry's quantile sketch named `name`, creating it with
/// [`crate::sketch::DEFAULT_SKETCH_ALPHA`] on first use. Unlike the gated
/// record functions this always succeeds: callers that record on a hot path
/// should hold the `Arc` and hit the sketch's lock-free atomics directly
/// instead of paying the registry lock per sample.
pub fn sketch_handle(name: &str) -> Arc<Sketch> {
    let mut registry = registry().lock().unwrap_or_else(PoisonError::into_inner);
    registry
        .sketches
        .entry(name.to_owned())
        .or_insert_with(|| Arc::new(Sketch::new(crate::sketch::DEFAULT_SKETCH_ALPHA)))
        .clone()
}

/// Records one nanosecond duration into the registry sketch named `name`
/// (no-op when disabled).
pub fn sketch_record_ns(name: &str, ns: u64) {
    if !crate::enabled() {
        return;
    }
    sketch_handle(name).record_ns(ns);
}

/// Returns the registry's distinct-count estimator named `name`, creating it
/// on first use. Always succeeds (see [`sketch_handle`]).
pub fn distinct_handle(name: &str) -> Arc<DistinctCounter> {
    let mut registry = registry().lock().unwrap_or_else(PoisonError::into_inner);
    registry
        .distincts
        .entry(name.to_owned())
        .or_insert_with(|| Arc::new(DistinctCounter::new()))
        .clone()
}

/// Folds one key into the registry distinct-count estimator named `name`
/// (no-op when disabled).
pub fn distinct_observe(name: &str, key: u64) {
    if !crate::enabled() {
        return;
    }
    distinct_handle(name).observe(key);
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values in nanoseconds.
    pub sum_ns: u64,
    /// Smallest recorded value in nanoseconds.
    pub min_ns: u64,
    /// Largest recorded value in nanoseconds.
    pub max_ns: u64,
    /// Per-bucket counts; see [`HISTOGRAM_BUCKETS`] for the bucket scheme.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean recorded value in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Estimated value at quantile `q ∈ [0, 1]` in nanoseconds.
    ///
    /// The log₂ buckets only bound each sample to a power-of-two interval,
    /// so the estimate walks the cumulative counts to the bucket holding the
    /// target rank and interpolates linearly inside it. The result is
    /// clamped to the observed `[min_ns, max_ns]`, which makes single-value
    /// histograms exact at every quantile.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        // `f64::clamp` passes NaN through; pin it to 0 so a garbage quantile
        // degrades to the minimum instead of a NaN estimate.
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &bucket_count) in self.buckets.iter().enumerate() {
            if bucket_count == 0 {
                continue;
            }
            if seen + bucket_count >= target {
                let (lo, hi) = bucket_bounds(idx);
                let frac = (target - seen) as f64 / bucket_count as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return est.clamp(self.min_ns as f64, self.max_ns as f64);
            }
            seen += bucket_count;
        }
        self.max_ns as f64
    }

    /// Estimated median in nanoseconds.
    pub fn p50_ns(&self) -> f64 {
        self.quantile_ns(0.50)
    }

    /// Estimated 95th percentile in nanoseconds.
    pub fn p95_ns(&self) -> f64 {
        self.quantile_ns(0.95)
    }

    /// Estimated 99th percentile in nanoseconds.
    pub fn p99_ns(&self) -> f64 {
        self.quantile_ns(0.99)
    }
}

/// Point-in-time copy of every counter and histogram.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotonic capture timestamp: nanoseconds since the process trace
    /// epoch. Strictly increasing across successive snapshots, so two dumps
    /// from a long-running server can be ordered and rate-diffed.
    pub captured_at_ns: u64,
    /// Nanoseconds since the metrics baseline — the last [`crate::reset`]
    /// (process trace epoch if never reset). The CLI resets at startup, so
    /// for a served process this is its uptime.
    pub uptime_ns: u64,
    /// Events dropped (oldest-first) because the bounded event sink was at
    /// capacity — nonzero means `--events-out` artifacts have a hole.
    pub events_dropped: u64,
    /// Counter name → accumulated value, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → last set value, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Quantile sketches, sorted by name.
    pub sketches: Vec<SketchSnapshot>,
    /// Distinct-count estimates, sorted by name.
    pub distincts: Vec<DistinctSnapshot>,
}

/// Baseline for [`MetricsSnapshot::uptime_ns`]: stamped by `clear_metrics`.
static BASELINE_NS: AtomicU64 = AtomicU64::new(0);

/// Copies the current metrics state without clearing it.
pub fn metrics_snapshot() -> MetricsSnapshot {
    let captured_at_ns = crate::span::now_ns();
    let registry = registry().lock().unwrap_or_else(PoisonError::into_inner);
    MetricsSnapshot {
        captured_at_ns,
        uptime_ns: captured_at_ns.saturating_sub(BASELINE_NS.load(Ordering::Relaxed)),
        events_dropped: crate::events::events_dropped(),
        counters: registry
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
        gauges: registry
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
        histograms: registry
            .histograms
            .iter()
            .map(|(name, h)| HistogramSnapshot {
                name: name.clone(),
                count: h.count,
                sum_ns: h.sum_ns,
                min_ns: if h.count == 0 { 0 } else { h.min_ns },
                max_ns: h.max_ns,
                buckets: h.buckets,
            })
            .collect(),
        sketches: registry
            .sketches
            .iter()
            .map(|(name, s)| s.snapshot(name))
            .collect(),
        distincts: registry
            .distincts
            .iter()
            .map(|(name, d)| DistinctSnapshot {
                name: name.clone(),
                estimate: d.estimate(),
            })
            .collect(),
    }
}

pub(crate) fn clear_metrics() {
    BASELINE_NS.store(crate::span::now_ns(), Ordering::Relaxed);
    with_registry(|r| {
        r.counters.clear();
        r.gauges.clear();
        r.histograms.clear();
        // Sketches and distinct counters are cleared in place, not dropped:
        // hot-path recorders hold `Arc` handles that must stay live.
        for sketch in r.sketches.values() {
            sketch.clear();
        }
        for distinct in r.distincts.values() {
            distinct.clear();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::{bucket_bounds, bucket_index, HistogramSnapshot, HISTOGRAM_BUCKETS};

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1); // [1, 2)
        assert_eq!(bucket_index(2), 2); // [2, 4)
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3); // [4, 8)
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_match_index() {
        for ns in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            let idx = bucket_index(ns);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= ns, "{ns} below bucket {idx} lower bound {lo}");
            if idx > 0 && idx < 64 {
                assert!(ns < hi, "{ns} at or above bucket {idx} upper bound {hi}");
            }
        }
    }

    fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot {
            name: "t".to_owned(),
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        };
        for &v in values {
            snap.count += 1;
            snap.sum_ns += v;
            snap.min_ns = snap.min_ns.min(v);
            snap.max_ns = snap.max_ns.max(v);
            snap.buckets[bucket_index(v)] += 1;
        }
        if snap.count == 0 {
            snap.min_ns = 0;
        }
        snap
    }

    #[test]
    fn quantiles_on_empty_histogram_are_zero() {
        let snap = snapshot_of(&[]);
        assert_eq!(snap.p50_ns(), 0.0);
        assert_eq!(snap.p99_ns(), 0.0);
    }

    #[test]
    fn quantiles_of_single_value_are_exact() {
        let snap = snapshot_of(&[777]);
        assert_eq!(snap.p50_ns(), 777.0);
        assert_eq!(snap.p95_ns(), 777.0);
        assert_eq!(snap.p99_ns(), 777.0);
    }

    #[test]
    fn quantiles_are_monotone_and_bucket_accurate() {
        // 90 fast values in [16, 32) and 10 slow ones in [1024, 2048): the
        // p50 must land in the fast bucket and the p95/p99 in the slow one.
        let mut values = vec![20u64; 90];
        values.extend(std::iter::repeat_n(1500u64, 10));
        let snap = snapshot_of(&values);
        let (p50, p95, p99) = (snap.p50_ns(), snap.p95_ns(), snap.p99_ns());
        assert!((16.0..32.0).contains(&p50), "p50 = {p50}");
        assert!((1024.0..2048.0).contains(&p95), "p95 = {p95}");
        assert!((1024.0..2048.0).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p95 && p95 <= p99);
        assert!(snap.quantile_ns(0.0) >= snap.min_ns as f64);
        assert!(snap.quantile_ns(1.0) <= snap.max_ns as f64);
    }
}
