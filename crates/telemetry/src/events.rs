//! Structured event log: discrete, timestamped records of things that
//! *happened* (a request was enqueued, shed, completed; a drift flag fired),
//! as opposed to spans, which measure how long things *took*.
//!
//! Events land in one global bounded sink (drop-oldest beyond
//! [`EVENT_CAPACITY`], with a dropped counter) so a long-running server
//! cannot grow without bound between collections. Recording is gated on
//! [`crate::enabled`], same as spans and metrics.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

use crate::span::{now_us, AttrValue};

/// Maximum buffered events; older records are dropped (and counted) first.
pub const EVENT_CAPACITY: usize = 65_536;

/// One structured event.
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Event name (static, from the instrumentation point), e.g.
    /// `"serve.enqueue"`.
    pub name: &'static str,
    /// Timestamp in microseconds since the process trace epoch.
    pub ts_us: u64,
    /// Key/value payload.
    pub fields: Vec<(&'static str, AttrValue)>,
}

struct Sink {
    events: VecDeque<EventRecord>,
}

fn sink() -> &'static Mutex<Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
    SINK.get_or_init(|| {
        Mutex::new(Sink {
            events: VecDeque::new(),
        })
    })
}

static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Records one event (no-op when telemetry is disabled). Prefer the
/// [`crate::event!`] macro, which skips field construction entirely on the
/// disabled path.
pub fn event_record(name: &'static str, fields: Vec<(&'static str, AttrValue)>) {
    if !crate::enabled() {
        return;
    }
    let record = EventRecord {
        name,
        ts_us: now_us(),
        fields,
    };
    let mut sink = sink().lock().unwrap_or_else(PoisonError::into_inner);
    if sink.events.len() >= EVENT_CAPACITY {
        sink.events.pop_front();
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
    sink.events.push_back(record);
}

/// Drains every buffered event in record order.
pub fn take_events() -> Vec<EventRecord> {
    let mut sink = sink().lock().unwrap_or_else(PoisonError::into_inner);
    sink.events.drain(..).collect()
}

/// Copies every buffered event in record order **without draining**.
///
/// Incident capture snapshots the sink while a periodic `--events-out`
/// export loop may be draining it with [`take_events`]; a destructive read
/// from the capturer would make the exported log lose whatever the bundle
/// happened to grab first. Both callers hold the same sink lock, so each
/// sees a consistent prefix.
pub fn snapshot_events() -> Vec<EventRecord> {
    let sink = sink().lock().unwrap_or_else(PoisonError::into_inner);
    sink.events.iter().cloned().collect()
}

/// Events dropped (oldest-first) because the sink was at capacity.
pub fn events_dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

pub(crate) fn clear_events() {
    sink()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .events
        .clear();
    DROPPED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_is_bounded_and_counts_drops() {
        crate::enable();
        clear_events();
        for i in 0..(EVENT_CAPACITY + 10) {
            event_record("t.bounded", vec![("i", AttrValue::U64(i as u64))]);
        }
        let events = take_events();
        assert_eq!(events.len(), EVENT_CAPACITY);
        assert!(events_dropped() >= 10);
        // The survivors are the newest records.
        match events.last().unwrap().fields[0].1 {
            AttrValue::U64(i) => assert_eq!(i as usize, EVENT_CAPACITY + 9),
            ref other => panic!("unexpected field {other:?}"),
        }
        clear_events();
        crate::disable();
    }

    #[test]
    fn snapshot_is_non_destructive() {
        crate::enable();
        clear_events();
        for i in 0..5u64 {
            event_record("t.snapshot", vec![("i", AttrValue::U64(i))]);
        }
        let snap = snapshot_events();
        assert_eq!(snap.iter().filter(|e| e.name == "t.snapshot").count(), 5);
        // The drain still sees everything the snapshot saw.
        let drained = take_events();
        assert_eq!(drained.iter().filter(|e| e.name == "t.snapshot").count(), 5);
        assert!(snapshot_events().is_empty());
        clear_events();
        crate::disable();
    }

    #[test]
    fn disabled_sink_records_nothing() {
        crate::disable();
        event_record("t.disabled", Vec::new());
        assert!(take_events().iter().all(|e| e.name != "t.disabled"));
    }
}
