//! Criterion entry point for Table V: per-layer selection and execution of a
//! multi-layer model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use granii_core::{Granii, GraniiOptions};
use granii_gnn::models::Model;
use granii_gnn::spec::ModelKind;
use granii_gnn::{Exec, GraphCtx};
use granii_graph::datasets::{Dataset, Scale};
use granii_matrix::device::{DeviceKind, Engine};
use granii_matrix::DenseMatrix;

fn bench_table5(c: &mut Criterion) {
    let granii = Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast()).unwrap();
    let graph = Dataset::Reddit.load(Scale::Tiny).unwrap();
    let ctx = GraphCtx::new(&graph).unwrap();

    let mut group = c.benchmark_group("table5");
    group.sample_size(10);
    for layers in [1usize, 2, 4] {
        let dims: Vec<usize> = std::iter::repeat_n(64usize, layers + 1).collect();
        let selections = granii
            .select_model(ModelKind::Gcn, &graph, &dims, 100)
            .unwrap();
        let comps: Vec<_> = selections.iter().map(|s| s.composition).collect();
        println!(
            "table5[{layers} layers] selections: {:?}",
            comps.iter().map(|c| c.name()).collect::<Vec<_>>()
        );
        let model = Model::new(ModelKind::Gcn, &dims, 7).unwrap();
        let h = DenseMatrix::random(graph.num_nodes(), 64, 1.0, 1);
        group.bench_with_input(BenchmarkId::new("forward", layers), &layers, |b, _| {
            b.iter(|| {
                let engine = Engine::modeled(DeviceKind::H100);
                let exec = Exec::virtual_only(&engine);
                model.forward(&exec, &ctx, &h, &comps).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
