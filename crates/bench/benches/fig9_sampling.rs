//! Criterion entry point for Figure 9: neighborhood sampling and GRANII's
//! decision stability across samples.

use criterion::{criterion_group, criterion_main, Criterion};
use granii_core::{Granii, GraniiOptions};
use granii_gnn::spec::ModelKind;
use granii_graph::datasets::{Dataset, Scale};
use granii_graph::sampling;
use granii_matrix::device::DeviceKind;

fn bench_fig9(c: &mut Criterion) {
    let granii = Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast()).unwrap();
    let graph = Dataset::Mycielskian17.load(Scale::Tiny).unwrap();
    let full = granii.select(ModelKind::Gcn, &graph, 32, 32).unwrap();
    let mut agree = 0;
    for seed in 0..10 {
        let sampled = sampling::sample_neighbors(&graph, 10, seed).unwrap();
        let sel = granii.select(ModelKind::Gcn, &sampled, 32, 32).unwrap();
        if sel.composition == full.composition {
            agree += 1;
        }
    }
    println!("fig9: decision on samples agrees with full graph {agree}/10");

    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("sample_and_select", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let sampled = sampling::sample_neighbors(&graph, 10, seed).unwrap();
            granii.select(ModelKind::Gcn, &sampled, 32, 32).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
