//! Criterion entry point for Table III: times one grid-cell evaluation
//! (baseline + all compositions + GRANII selection) and prints the measured
//! speedups for a representative sample of the grid.

use criterion::{criterion_group, criterion_main, Criterion};
use granii_bench::grid::{EvalConfig, Mode};
use granii_bench::runner::evaluate_config;
use granii_core::{Granii, GraniiOptions};
use granii_gnn::spec::ModelKind;
use granii_gnn::system::System;
use granii_graph::datasets::{Dataset, Scale};
use granii_matrix::device::DeviceKind;

fn bench_table3(c: &mut Criterion) {
    let granii = Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast()).unwrap();
    let graph = Dataset::Reddit.load(Scale::Tiny).unwrap();
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);

    for (model, mode) in [
        (ModelKind::Gcn, Mode::Inference),
        (ModelKind::Gcn, Mode::Training),
        (ModelKind::Gat, Mode::Inference),
    ] {
        let cfg = EvalConfig {
            system: System::WiseGraph,
            device: DeviceKind::H100,
            model,
            dataset: Dataset::Reddit,
            k1: 32,
            k2: 256,
            mode,
        };
        let rec = evaluate_config(&cfg, &graph, &granii).unwrap();
        println!("table3[{model}/{mode}] RD speedup = {:.2}x", rec.speedup());
        group.bench_function(format!("evaluate_{model}_{mode}"), |b| {
            b.iter(|| evaluate_config(&cfg, &graph, &granii).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
