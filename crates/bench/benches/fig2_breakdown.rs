//! Criterion entry point for Figure 2: sparse/dense runtime split across
//! graphs, configurations, and hardware.

use criterion::{criterion_group, criterion_main, Criterion};
use granii_bench::runner::sparse_dense_breakdown;
use granii_graph::datasets::{Dataset, Scale};
use granii_matrix::device::DeviceKind;

fn bench_fig2(c: &mut Criterion) {
    for dataset in [Dataset::Reddit, Dataset::BelgiumOsm] {
        let graph = dataset.load(Scale::Tiny).unwrap();
        for device in DeviceKind::ALL {
            let p = sparse_dense_breakdown(&graph, 32, 32, device).unwrap();
            println!(
                "fig2[{dataset}/{device}] sparse = {:.0}%",
                p.sparse_fraction() * 100.0
            );
        }
    }
    let graph = Dataset::Reddit.load(Scale::Tiny).unwrap();
    let mut group = c.benchmark_group("fig2");
    group.sample_size(20);
    group.bench_function("breakdown_profile", |b| {
        b.iter(|| sparse_dense_breakdown(&graph, 32, 32, DeviceKind::H100).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
