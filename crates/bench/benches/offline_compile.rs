//! Criterion entry point for the offline stage (counts / Fig 6 / Fig 3):
//! IR construction, association-tree enumeration, pruning, and lowering.

use criterion::{criterion_group, criterion_main, Criterion};
use granii_core::complexity::complexity_table;
use granii_core::plan::CompiledModel;
use granii_gnn::spec::{LayerConfig, ModelKind};

fn bench_offline(c: &mut Criterion) {
    for model in ModelKind::EVAL {
        let plan = CompiledModel::compile(model, LayerConfig::new(32, 256)).unwrap();
        println!(
            "counts[{model}] enumerated {} / pruned {} / promoted {}",
            plan.enumerated,
            plan.pruned,
            plan.candidates.len()
        );
    }
    let mut group = c.benchmark_group("offline_compile");
    group.sample_size(20);
    for model in [ModelKind::Gcn, ModelKind::Gat, ModelKind::Sgc] {
        group.bench_function(format!("compile_{model}"), |b| {
            b.iter(|| CompiledModel::compile(model, LayerConfig::new(32, 256)).unwrap())
        });
        group.bench_function(format!("complexity_{model}"), |b| {
            b.iter(|| complexity_table(model, LayerConfig::new(32, 256)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_offline);
criterion_main!(benches);
