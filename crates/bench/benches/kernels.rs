//! Criterion benchmarks of the raw matrix primitives (real CPU execution) —
//! the measured-CPU substrate behind the evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use granii_graph::generators;
use granii_matrix::ops::{self, BroadcastOp};
use granii_matrix::{DenseMatrix, Semiring};

fn bench_kernels(c: &mut Criterion) {
    let graph = generators::power_law(5_000, 16, 1).unwrap();
    let adj = graph.adj().clone();
    let weighted = ops::scale_csr(None, &adj, None).unwrap();
    let mut group = c.benchmark_group("kernels");
    group.sample_size(20);

    for k in [32usize, 128] {
        let x = DenseMatrix::random(adj.cols(), k, 1.0, 2);
        group.bench_with_input(BenchmarkId::new("spmm_unweighted", k), &k, |b, _| {
            b.iter(|| ops::spmm(&adj, &x, Semiring::plus_copy_rhs()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("spmm_weighted", k), &k, |b, _| {
            b.iter(|| ops::spmm(&weighted, &x, Semiring::plus_mul()).unwrap())
        });
        let w = DenseMatrix::random(k, k, 1.0, 3);
        group.bench_with_input(BenchmarkId::new("gemm", k), &k, |b, _| {
            b.iter(|| ops::gemm(&x, &w).unwrap())
        });
        let d: Vec<f32> = (0..adj.rows()).map(|i| (i % 7) as f32).collect();
        group.bench_with_input(BenchmarkId::new("row_broadcast", k), &k, |b, _| {
            b.iter(|| ops::row_broadcast(&d, &x, BroadcastOp::Mul).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sddmm", k), &k, |b, _| {
            b.iter(|| ops::sddmm(&adj, &x, &x).unwrap())
        });
    }
    group.bench_function("edge_softmax", |b| {
        b.iter(|| ops::edge_softmax(&weighted).unwrap())
    });
    group.bench_function("degrees_by_binning", |b| {
        b.iter(|| ops::degrees_by_binning(&adj))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
