//! Criterion entry point for Table IV: end-to-end 2-layer forward execution
//! with real (computed) kernels on a tiny Reddit stand-in.

use criterion::{criterion_group, criterion_main, Criterion};
use granii_core::{Granii, GraniiOptions};
use granii_gnn::models::GnnLayer;
use granii_gnn::spec::{LayerConfig, ModelKind};
use granii_gnn::{Exec, GraphCtx};
use granii_graph::datasets::{Dataset, Scale};
use granii_matrix::device::{DeviceKind, Engine};
use granii_matrix::DenseMatrix;

fn bench_table4(c: &mut Criterion) {
    let granii = Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast()).unwrap();
    let graph = Dataset::Reddit.load(Scale::Tiny).unwrap();
    let ctx = GraphCtx::new(&graph).unwrap();
    let feats = DenseMatrix::random(graph.num_nodes(), 64, 1.0, 1);

    let dims = [(64usize, 32usize), (32, 8)];
    let mut layers = Vec::new();
    for (k1, k2) in dims {
        let cfg = LayerConfig::new(k1, k2);
        let sel = granii
            .select_with_config(ModelKind::Gcn, &graph, cfg, 1)
            .unwrap();
        layers.push((
            GnnLayer::new(ModelKind::Gcn, cfg, 7).unwrap(),
            sel.composition,
        ));
    }

    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    group.bench_function("two_layer_forward_real", |b| {
        b.iter(|| {
            let engine = Engine::cpu_measured();
            let exec = Exec::real(&engine);
            let mut h = feats.clone();
            for (layer, comp) in &layers {
                let prepared = layer.prepare(&exec, &ctx, *comp).unwrap();
                h = layer.forward(&exec, &ctx, &prepared, &h, *comp).unwrap();
            }
            h
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
