//! Criterion entry point for Table VI: GRANII vs the per-factor oracles.

use criterion::{criterion_group, criterion_main, Criterion};
use granii_bench::grid::{EvalConfig, Mode, Record};
use granii_bench::policies::{geomean_speedup, Policy};
use granii_bench::runner::evaluate_config;
use granii_core::{Granii, GraniiOptions};
use granii_gnn::spec::ModelKind;
use granii_gnn::system::System;
use granii_graph::datasets::{Dataset, Scale};
use granii_matrix::device::DeviceKind;

fn bench_table6(c: &mut Criterion) {
    let granii = Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast()).unwrap();
    let mut records: Vec<Record> = Vec::new();
    for dataset in [Dataset::Reddit, Dataset::BelgiumOsm] {
        let graph = dataset.load(Scale::Tiny).unwrap();
        for model in [ModelKind::Gcn, ModelKind::Gat] {
            for (k1, k2) in [(32usize, 256usize), (128, 1024)] {
                let cfg = EvalConfig {
                    system: System::Dgl,
                    device: DeviceKind::H100,
                    model,
                    dataset,
                    k1,
                    k2,
                    mode: Mode::Inference,
                };
                records.push(evaluate_config(&cfg, &graph, &granii).unwrap());
            }
        }
    }
    for policy in Policy::TABLE6 {
        println!(
            "table6[{}] = {:.2}x",
            policy.name(),
            geomean_speedup(policy, &records)
        );
    }
    let mut group = c.benchmark_group("table6");
    group.sample_size(10);
    group.bench_function("oracle_evaluation", |b| {
        b.iter(|| {
            Policy::TABLE6
                .iter()
                .map(|&p| geomean_speedup(p, &records))
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table6);
criterion_main!(benches);
