//! Criterion entry point for Figure 1: static vs config vs input-aware
//! ordering strategies for GCN.

use criterion::{criterion_group, criterion_main, Criterion};
use granii_bench::grid::{EvalConfig, Mode, Record};
use granii_bench::policies::{geomean_speedup, Policy};
use granii_bench::runner::evaluate_config;
use granii_core::{Granii, GraniiOptions};
use granii_gnn::spec::ModelKind;
use granii_gnn::system::System;
use granii_graph::datasets::{Dataset, Scale};
use granii_matrix::device::DeviceKind;

fn records(granii: &Granii) -> Vec<Record> {
    let mut out = Vec::new();
    for dataset in [Dataset::Reddit, Dataset::BelgiumOsm, Dataset::Mycielskian17] {
        let graph = dataset.load(Scale::Tiny).unwrap();
        for (k1, k2) in [(32usize, 32usize), (1024, 1024)] {
            let cfg = EvalConfig {
                system: System::Dgl,
                device: DeviceKind::H100,
                model: ModelKind::Gcn,
                dataset,
                k1,
                k2,
                mode: Mode::Inference,
            };
            out.push(evaluate_config(&cfg, &graph, granii).unwrap());
        }
    }
    out
}

fn bench_fig1(c: &mut Criterion) {
    let granii = Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast()).unwrap();
    let recs = records(&granii);
    for policy in [Policy::Static, Policy::Config, Policy::Granii] {
        println!(
            "fig1[{}] geomean speedup = {:.2}x",
            policy.name(),
            geomean_speedup(policy, &recs)
        );
    }
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.bench_function("policy_evaluation", |b| {
        b.iter(|| {
            for policy in [Policy::Static, Policy::Config, Policy::Granii] {
                geomean_speedup(policy, &recs);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
