//! End-to-end drift detection: serve a signature, hot-swap in a cost model
//! corrupted to flip the selection onto a plan whose steady-state prediction
//! is wildly wrong, and assert the online detector flags the signature,
//! invalidates its cached plan, and that restoring the clean model recovers
//! zero regret (cross-checked against `granii.verify`'s oracle).
//!
//! Runs as a single `#[test]` in its own binary: the scenario reads global
//! telemetry (metrics + events), which parallel tests would race.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use granii_bench::serve_load::run_drift_scenario;
use granii_boost::{Dataset as BoostDataset, GbtParams, GbtRegressor};
use granii_core::cost::{CostModelSet, FeaturizedInput};
use granii_core::{Granii, GraniiOptions};
use granii_gnn::spec::{LayerConfig, ModelKind};
use granii_graph::datasets::{Dataset, Scale};
use granii_matrix::device::DeviceKind;
use granii_matrix::PrimitiveKind;
use granii_serve::{DriftConfig, ServeConfig, ServeRequest};

/// Rebuilds the model set with the `deflate`d primitives retrained on the
/// clean model's own predictions shifted by `-ln(10^6)` — those primitives
/// now look a million times *cheaper*. Deflating the per-iteration kinds
/// only a rival uses makes the selector flip to that rival, whose
/// steady-state prediction is then a ~1e6x underestimate of reality:
/// exactly the measured-vs-predicted mismatch the drift detector watches.
/// (The audit test inflates the chosen plan's kinds instead — that drives
/// selection *away* from a plan; it never produces a served plan with a
/// broken prediction, so it cannot trigger drift.)
fn corrupt_deflate(
    clean: &CostModelSet,
    feature_rows: &BTreeMap<PrimitiveKind, Vec<Vec<f64>>>,
    deflate: &[PrimitiveKind],
) -> CostModelSet {
    let params = GbtParams {
        num_rounds: 60,
        ..GbtParams::default()
    };
    let shift = -(1e6f64.ln());
    let mut corrupted = BTreeMap::new();
    for (&kind, model) in clean.models() {
        if !deflate.contains(&kind) {
            corrupted.insert(kind, model.clone());
            continue;
        }
        let rows = &feature_rows[&kind];
        let labels: Vec<f64> = rows.iter().map(|r| model.predict(r) + shift).collect();
        let train = BoostDataset::from_rows(rows, &labels).unwrap();
        corrupted.insert(kind, GbtRegressor::fit(&train, &params).unwrap());
    }
    CostModelSet::new(clean.device(), corrupted, clean.validation.clone())
}

#[test]
fn corrupted_model_is_flagged_invalidated_and_recovers() {
    let clean = Arc::new(
        Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast())
            .expect("fast offline training"),
    );
    let graph = Arc::new(Dataset::Mycielskian17.load(Scale::Tiny).unwrap());
    // The audit suite's known shrink cell: the clean choice equals the
    // oracle with zero regret, and the two eligible orderings have distinct
    // measured costs, so a selection flip is observable as regret.
    let cfg = LayerConfig::new(2048, 256);
    let iterations = 100;

    let clean_report = clean
        .verify(ModelKind::Gcn, &graph, cfg, iterations)
        .unwrap();
    assert_eq!(clean_report.chosen, clean_report.oracle);
    assert!(clean_report.regret_seconds().abs() < 1e-15);
    let oracle_name = clean_report.oracle.name();

    // Featurize every step of every GCN candidate across the Table II tiny
    // graphs (same corpus the audit test retrains on).
    let plan = clean.compiled(ModelKind::Gcn, cfg).unwrap();
    let mut feature_rows: BTreeMap<PrimitiveKind, Vec<Vec<f64>>> = BTreeMap::new();
    for dataset in Dataset::ALL {
        let g = dataset.load(Scale::Tiny).unwrap();
        for (k1, k2) in [(32, 32), (256, 64), (64, 512), (1024, 1024), (2048, 256)] {
            let input = FeaturizedInput::extract(&g, k1, k2);
            for cand in &plan.candidates {
                for step in &cand.program.steps {
                    feature_rows
                        .entry(step.kind)
                        .or_default()
                        .push(input.step_features(step));
                }
            }
        }
    }

    // Deflate *every* per-iteration kind the rivals run. That collapses a
    // rival's whole steady-state prediction to ~1e-6 of reality, so (a) the
    // selector flips to it, and (b) the served plan's residual is ~ln(1e6).
    // Deflating only rival-unique kinds is not enough: the shared Gemm
    // dominates this cell's cost, and a prediction that keeps the dominant
    // term stays within the 2x drift threshold.
    let eligible = plan.eligible(cfg.k_in, cfg.k_out);
    let chosen_prog = &eligible
        .iter()
        .find(|c| c.composition == clean_report.chosen)
        .expect("chosen candidate is eligible")
        .program;
    let deflate: Vec<_> = eligible
        .iter()
        .filter(|c| c.composition != clean_report.chosen)
        .flat_map(|c| c.program.steps.iter().filter(|s| !s.once).map(|s| s.kind))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    assert!(!deflate.is_empty(), "rivals must have per-iteration steps");
    // The flip is only guaranteed if the chosen plan keeps at least one
    // full-scale per-iteration term (here: SpmmWeighted, which no rival
    // uses) to lose the deflated argmin against.
    assert!(
        chosen_prog
            .steps
            .iter()
            .any(|s| !s.once && !deflate.contains(&s.kind)),
        "chosen plan must iterate a primitive no rival uses"
    );
    let corrupted = Arc::new(Granii::with_cost_models(corrupt_deflate(
        clean.cost_models(),
        &feature_rows,
        &deflate,
    )));

    granii_telemetry::reset();
    granii_telemetry::enable();
    let drift = DriftConfig::default();
    let report = run_drift_scenario(
        clean.clone(),
        corrupted,
        &ServeRequest::new(ModelKind::Gcn, graph.clone(), cfg.k_in, cfg.k_out)
            .with_iterations(iterations),
        12,
        ServeConfig {
            workers: 1,
            drift,
            ..ServeConfig::default()
        },
    );
    granii_telemetry::disable();
    let events = granii_telemetry::take_events();
    let snapshot = granii_telemetry::metrics_snapshot();
    granii_telemetry::reset();

    eprintln!(
        "phases: clean={:?} corrupted={:?} recovered={:?}",
        report.clean_before.compositions,
        report.corrupted.compositions,
        report.clean_after.compositions
    );

    // Phase 1: clean model, stable oracle selection, no flags.
    assert_eq!(report.clean_before.failed, 0);
    assert_eq!(report.clean_before.compositions, vec![oracle_name.clone()]);
    assert_eq!(
        report.clean_before.drift_flagged, 0,
        "clean model must not flag"
    );

    // Phase 2: the deflated rival wins selection (regret), and the detector
    // flags the signature within min_samples + k_consecutive requests,
    // invalidating its plan-cache entry. The cooldown keeps 12 hammered
    // requests at exactly one flag — no re-flag storm.
    assert_eq!(report.corrupted.failed, 0);
    assert_ne!(
        report.corrupted.compositions.first(),
        Some(&oracle_name),
        "deflated rival predictions must flip the selection"
    );
    assert_eq!(
        report.corrupted.drift_flagged, 1,
        "flag within K requests, then cooldown-suppressed"
    );
    assert!(
        report.corrupted.cache_invalidations > report.clean_before.cache_invalidations,
        "the flagged signature's cached plan must be invalidated"
    );

    // Phase 3: clean model restored; re-selection recovers the oracle
    // composition — zero regret by the clean verify above — with no new
    // flags.
    assert_eq!(report.clean_after.failed, 0);
    assert_eq!(report.clean_after.compositions, vec![oracle_name.clone()]);
    assert_eq!(
        report.clean_after.drift_flagged,
        report.corrupted.drift_flagged
    );

    // The flag surfaces everywhere the tentpole promises: server stats and
    // status, the metrics counter, and the structured event stream.
    assert_eq!(report.status.drift_flagged, 1);
    assert!(
        report.status.drift.iter().any(|row| row.model == "gcn"),
        "status drift table must track the served signature"
    );
    let drift_counter = snapshot
        .counters
        .iter()
        .find(|(name, _)| name == "serve.drift_flagged")
        .map(|(_, v)| *v);
    assert_eq!(
        drift_counter,
        Some(1),
        "serve.drift_flagged in metrics_json"
    );
    assert!(
        granii_telemetry::export::metrics_json(&snapshot).contains("serve.drift_flagged"),
        "metrics export must carry the drift counter"
    );
    let drift_events: Vec<_> = events.iter().filter(|e| e.name == "serve.drift").collect();
    assert_eq!(drift_events.len(), 1, "one structured drift event");
    let jsonl = granii_telemetry::export::events_jsonl(&events);
    assert!(
        jsonl.contains("serve.drift"),
        "drift event in the JSONL log"
    );
}
