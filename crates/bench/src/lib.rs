//! Reproduction harness for the GRANII paper's evaluation (§VI).
//!
//! The harness measures every (system, device, model, graph, embedding-size,
//! mode) configuration of the paper's grid:
//!
//! - baselines run their system's default composition plus its per-iteration
//!   normalization path (WiseGraph's binning, DGL's scan),
//! - GRANII runs its online selection once, then the chosen composition,
//! - ground-truth per-composition latencies are recorded for the oracle
//!   comparisons of Table VI and the `Optimal` row.
//!
//! All latencies come from the analytical device models through the same
//! [`granii_gnn::Exec`] path the correctness tests exercise (see `DESIGN.md`
//! §2 for the GPU substitution); kernels run in *virtual* mode so the full
//! grid sweeps in seconds. One iteration is charged and scaled to the run
//! length, which is exact because modeled per-iteration charges are
//! deterministic.
//!
//! Binary: `cargo run -p granii-bench --bin repro -- <experiment>` with one
//! subcommand per table/figure (see `repro --help`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod grid;
pub mod policies;
pub mod report;
pub mod runner;
pub mod serve_load;
pub mod snapshot;

pub use grid::{EvalConfig, Mode, Record};
pub use runner::evaluate_config;
pub use snapshot::{BenchSnapshot, SnapshotEntry};
