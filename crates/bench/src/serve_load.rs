//! Closed-loop multi-client load harness for the serving runtime
//! (`granii-serve`), shared by the `serve_bench` binary and the
//! bench-snapshot serving cell.
//!
//! Closed loop means each client issues its next request only after the
//! previous one replied — offered load adapts to service rate, so the
//! harness measures sustainable throughput and tail latency rather than
//! queue explosion. Shed requests ([`granii_serve::ServeError::Overloaded`])
//! are counted and the client moves on; any other error is a harness
//! failure.

use std::sync::Arc;
use std::time::Instant;

use granii_core::Granii;
use granii_serve::{ServeConfig, ServeError, ServeRequest, ServeStats, Server};
use granii_telemetry::SketchSnapshot;

/// Load-test shape: how many clients, how many requests each.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Serving runtime configuration under test.
    pub serve: ServeConfig,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 8,
            requests_per_client: 50,
            serve: ServeConfig::default(),
        }
    }
}

/// Exact (sorted-sample) latency quantiles in milliseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Completed-request count the quantiles are over.
    pub count: usize,
    /// Mean latency.
    pub mean_ms: f64,
    /// Median latency.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Slowest request.
    pub max_ms: f64,
}

/// The outcome of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Wall time of the whole run.
    pub wall_seconds: f64,
    /// Requests that completed with a response.
    pub completed: u64,
    /// Requests shed with `Overloaded`.
    pub shed: u64,
    /// Requests that failed with any other error (must be 0 in a healthy run).
    pub failed: u64,
    /// Responses served via the degradation fallback.
    pub degraded: u64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// End-to-end (submit-to-reply) latency distribution.
    pub latency: LatencySummary,
    /// The server's own counters at the end of the run.
    pub stats: ServeStats,
    /// The server's per-outcome latency sketches (`serve.latency.hit` /
    /// `.miss` / `.degraded`), captured before shutdown. Mergeable into one
    /// whole-server distribution for deep-tail (p99/p999) quantiles the
    /// exact per-client sample cannot resolve at small request counts.
    pub latency_sketches: Vec<SketchSnapshot>,
}

/// Folds the per-outcome sketches into one whole-server latency
/// distribution (the merge is exact: sketches are a commutative monoid).
/// `None` when no sketch recorded anything.
pub fn merged_latency_sketch(sketches: &[SketchSnapshot]) -> Option<SketchSnapshot> {
    let mut merged: Option<SketchSnapshot> = None;
    for snap in sketches.iter().filter(|s| s.count > 0) {
        match merged.as_mut() {
            Some(m) => m.merge(snap),
            None => {
                let mut m = snap.clone();
                m.name = "serve.latency".to_owned();
                merged = Some(m);
            }
        }
    }
    merged
}

/// Exact percentile of a sorted sample (nearest-rank interpolation-free);
/// 0 for an empty sample.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

/// Summarizes a latency sample given in seconds.
pub fn summarize_latencies(seconds: &[f64]) -> LatencySummary {
    if seconds.is_empty() {
        return LatencySummary::default();
    }
    let mut ms: Vec<f64> = seconds.iter().map(|s| s * 1e3).collect();
    ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    LatencySummary {
        count: ms.len(),
        mean_ms: ms.iter().sum::<f64>() / ms.len() as f64,
        p50_ms: percentile(&ms, 0.50),
        p95_ms: percentile(&ms, 0.95),
        p99_ms: percentile(&ms, 0.99),
        max_ms: *ms.last().expect("non-empty"),
    }
}

/// Runs the closed-loop load test: `clients` threads round-robin over
/// `workload` (each client starts at a different offset so signatures mix),
/// issuing requests back-to-back against one server.
///
/// # Panics
///
/// Panics if `workload` is empty.
pub fn run_load(granii: Arc<Granii>, workload: &[ServeRequest], cfg: &LoadConfig) -> LoadReport {
    assert!(!workload.is_empty(), "load test needs at least one request");
    let server = Server::start(granii, cfg.serve.clone());
    let t0 = Instant::now();
    let per_client: Vec<(Vec<f64>, u64, u64, u64)> = std::thread::scope(|s| {
        let server = &server;
        let handles: Vec<_> = (0..cfg.clients.max(1))
            .map(|c| {
                s.spawn(move || {
                    let mut latencies = Vec::with_capacity(cfg.requests_per_client);
                    let (mut shed, mut failed, mut degraded) = (0u64, 0u64, 0u64);
                    for i in 0..cfg.requests_per_client {
                        let request = workload[(c + i) % workload.len()].clone();
                        match server.process(request) {
                            Ok(response) => {
                                latencies.push(response.timing.total_seconds);
                                if response.degraded {
                                    degraded += 1;
                                }
                            }
                            Err(ServeError::Overloaded { .. }) => shed += 1,
                            Err(_) => failed += 1,
                        }
                    }
                    (latencies, shed, failed, degraded)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load client panicked"))
            .collect()
    });
    let wall_seconds = t0.elapsed().as_secs_f64();
    let stats = server.stats();
    let latency_sketches = server.latency_sketches();
    server.shutdown();

    let mut all_latencies = Vec::new();
    let (mut shed, mut failed, mut degraded) = (0u64, 0u64, 0u64);
    for (lat, s, f, d) in per_client {
        all_latencies.extend(lat);
        shed += s;
        failed += f;
        degraded += d;
    }
    let completed = all_latencies.len() as u64;
    LoadReport {
        wall_seconds,
        completed,
        shed,
        failed,
        degraded,
        throughput_rps: if wall_seconds > 0.0 {
            completed as f64 / wall_seconds
        } else {
            0.0
        },
        latency: summarize_latencies(&all_latencies),
        stats,
        latency_sketches,
    }
}

/// Per-phase outcome of a [`run_drift_scenario`] run.
#[derive(Debug, Clone)]
pub struct DriftPhaseReport {
    /// Requests completed in this phase.
    pub completed: u64,
    /// Requests failed in this phase (must be 0 in a healthy run).
    pub failed: u64,
    /// Distinct composition names served, in first-seen order. One entry
    /// means the phase was stable on a single plan.
    pub compositions: Vec<String>,
    /// Server-cumulative drift flags at phase end.
    pub drift_flagged: u64,
    /// Server-cumulative plan-cache invalidations at phase end (includes
    /// model-swap flushes).
    pub cache_invalidations: u64,
}

/// Outcome of the three-phase drift-injection scenario.
#[derive(Debug, Clone)]
pub struct DriftScenarioReport {
    /// Phase 1: serving under the clean cost models.
    pub clean_before: DriftPhaseReport,
    /// Phase 2: serving after the corrupted models were hot-swapped in.
    pub corrupted: DriftPhaseReport,
    /// Phase 3: serving after the clean models were restored.
    pub clean_after: DriftPhaseReport,
    /// Final live status snapshot (drift table included).
    pub status: granii_serve::ServerStatus,
}

fn run_drift_phase(server: &Server, request: &ServeRequest, requests: usize) -> DriftPhaseReport {
    let (mut completed, mut failed) = (0u64, 0u64);
    let mut compositions: Vec<String> = Vec::new();
    for _ in 0..requests {
        match server.process(request.clone()) {
            Ok(response) => {
                completed += 1;
                let name = response.composition.name();
                if compositions.last() != Some(&name) && !compositions.contains(&name) {
                    compositions.push(name);
                }
            }
            Err(_) => failed += 1,
        }
    }
    let stats = server.stats();
    DriftPhaseReport {
        completed,
        failed,
        compositions,
        drift_flagged: stats.drift_flagged,
        cache_invalidations: stats.cache_invalidations,
    }
}

/// Drift-injection load scenario: serve one fixed request signature through
/// three model regimes on a single long-lived server.
///
/// 1. **Clean**: `requests_per_phase` requests under `clean` — establishes
///    the baseline selection; no drift flags expected.
/// 2. **Corrupted**: `corrupted` is hot-swapped in (cache flushed), and the
///    same signature is hammered again. A model set corrupted so that
///    selection picks a plan whose steady-state prediction is wildly off
///    should be flagged by the online detector within
///    `min_samples + k_consecutive` requests, invalidating the cached plan.
/// 3. **Recovered**: `clean` is restored; re-selection should return to the
///    original composition with zero regret.
///
/// The harness is deliberately serial (one client): drift detection on the
/// modeled engine is deterministic per signature, and serial phases keep the
/// per-phase counters exact for the e2e assertions in
/// `crates/bench/tests/drift.rs`.
pub fn run_drift_scenario(
    clean: Arc<Granii>,
    corrupted: Arc<Granii>,
    request: &ServeRequest,
    requests_per_phase: usize,
    serve: ServeConfig,
) -> DriftScenarioReport {
    let server = Server::start(clean.clone(), serve);
    let clean_before = run_drift_phase(&server, request, requests_per_phase);
    server.replace_granii(corrupted);
    let corrupted_phase = run_drift_phase(&server, request, requests_per_phase);
    server.replace_granii(clean);
    let clean_after = run_drift_phase(&server, request, requests_per_phase);
    let status = server.status();
    server.shutdown();
    DriftScenarioReport {
        clean_before,
        corrupted: corrupted_phase,
        clean_after,
        status,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_exact_on_known_samples() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert_eq!(percentile(&sorted, 0.50), 51.0); // nearest rank on 0..=99
        assert_eq!(percentile(&[], 0.5), 0.0);
        let summary = summarize_latencies(&[0.001, 0.002, 0.003]);
        assert_eq!(summary.count, 3);
        assert_eq!(summary.p50_ms, 2.0);
        assert_eq!(summary.max_ms, 3.0);
    }

    #[test]
    fn merged_sketch_folds_outcomes_and_skips_empty() {
        use granii_telemetry::Sketch;
        let hit = Sketch::new(0.01);
        let miss = Sketch::new(0.01);
        for ns in [1_000_000u64, 2_000_000, 3_000_000] {
            hit.record_ns(ns);
        }
        miss.record_ns(50_000_000);
        let degraded = Sketch::new(0.01); // never recorded
        let snaps = vec![
            hit.snapshot("serve.latency.hit"),
            miss.snapshot("serve.latency.miss"),
            degraded.snapshot("serve.latency.degraded"),
        ];
        let merged = merged_latency_sketch(&snaps).expect("non-empty merge");
        assert_eq!(merged.name, "serve.latency");
        assert_eq!(merged.count, 4);
        assert_eq!(merged.max_ns, 50_000_000);
        assert_eq!(merged.min_ns, 1_000_000);
        assert!(merged_latency_sketch(&[]).is_none());
    }
}
