//! Load harnesses for the serving runtime (`granii-serve`), shared by the
//! `serve_bench` binary and the bench-snapshot serving cell.
//!
//! Two load models:
//!
//! - **Closed loop** ([`run_load`]): each client issues its next request
//!   only after the previous one replied — offered load adapts to service
//!   rate, so the harness measures sustainable throughput and tail latency
//!   rather than queue explosion.
//! - **Open loop** ([`run_open_loop`]): arrivals follow a Poisson process
//!   at a fixed offered rate, independent of completions — the model that
//!   actually exercises continuous batching (requests pile up while a
//!   worker is busy and get coalesced), with a configurable zipf-style
//!   tenant skew over the workload signatures.
//!
//! In both, shed requests ([`granii_serve::ServeError::Overloaded`]) are
//! counted and the harness moves on; any other error is a harness failure.

use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use granii_core::Granii;
use granii_serve::{ServeConfig, ServeError, ServeRequest, ServeStats, Server, Ticket};
use granii_telemetry::SketchSnapshot;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Load-test shape: how many clients, how many requests each.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Serving runtime configuration under test.
    pub serve: ServeConfig,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 8,
            requests_per_client: 50,
            serve: ServeConfig::default(),
        }
    }
}

/// Exact (sorted-sample) latency quantiles in milliseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Completed-request count the quantiles are over.
    pub count: usize,
    /// Mean latency.
    pub mean_ms: f64,
    /// Median latency.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Slowest request.
    pub max_ms: f64,
}

/// The outcome of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Wall time of the whole run.
    pub wall_seconds: f64,
    /// Requests that completed with a response.
    pub completed: u64,
    /// Requests shed with `Overloaded`.
    pub shed: u64,
    /// Requests that failed with any other error (must be 0 in a healthy run).
    pub failed: u64,
    /// Responses served via the degradation fallback.
    pub degraded: u64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// End-to-end (submit-to-reply) latency distribution.
    pub latency: LatencySummary,
    /// The server's own counters at the end of the run.
    pub stats: ServeStats,
    /// The server's per-outcome latency sketches (`serve.latency.hit` /
    /// `.miss` / `.degraded`), captured before shutdown. Mergeable into one
    /// whole-server distribution for deep-tail (p99/p999) quantiles the
    /// exact per-client sample cannot resolve at small request counts.
    pub latency_sketches: Vec<SketchSnapshot>,
}

/// Folds the per-outcome sketches into one whole-server latency
/// distribution (the merge is exact: sketches are a commutative monoid).
/// `None` when no sketch recorded anything.
pub fn merged_latency_sketch(sketches: &[SketchSnapshot]) -> Option<SketchSnapshot> {
    let mut merged: Option<SketchSnapshot> = None;
    for snap in sketches.iter().filter(|s| s.count > 0) {
        match merged.as_mut() {
            Some(m) => m.merge(snap),
            None => {
                let mut m = snap.clone();
                m.name = "serve.latency".to_owned();
                merged = Some(m);
            }
        }
    }
    merged
}

/// Exact percentile of a sorted sample (nearest-rank interpolation-free);
/// 0 for an empty sample.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

/// Summarizes a latency sample given in seconds.
pub fn summarize_latencies(seconds: &[f64]) -> LatencySummary {
    if seconds.is_empty() {
        return LatencySummary::default();
    }
    let mut ms: Vec<f64> = seconds.iter().map(|s| s * 1e3).collect();
    ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    LatencySummary {
        count: ms.len(),
        mean_ms: ms.iter().sum::<f64>() / ms.len() as f64,
        p50_ms: percentile(&ms, 0.50),
        p95_ms: percentile(&ms, 0.95),
        p99_ms: percentile(&ms, 0.99),
        max_ms: *ms.last().expect("non-empty"),
    }
}

/// Runs the closed-loop load test: `clients` threads round-robin over
/// `workload` (each client starts at a different offset so signatures mix),
/// issuing requests back-to-back against one server.
///
/// # Panics
///
/// Panics if `workload` is empty.
pub fn run_load(granii: Arc<Granii>, workload: &[ServeRequest], cfg: &LoadConfig) -> LoadReport {
    assert!(!workload.is_empty(), "load test needs at least one request");
    let server = Server::start(granii, cfg.serve.clone());
    let t0 = Instant::now();
    let per_client: Vec<(Vec<f64>, u64, u64, u64)> = std::thread::scope(|s| {
        let server = &server;
        let handles: Vec<_> = (0..cfg.clients.max(1))
            .map(|c| {
                s.spawn(move || {
                    let mut latencies = Vec::with_capacity(cfg.requests_per_client);
                    let (mut shed, mut failed, mut degraded) = (0u64, 0u64, 0u64);
                    for i in 0..cfg.requests_per_client {
                        let request = workload[(c + i) % workload.len()].clone();
                        match server.process(request) {
                            Ok(response) => {
                                latencies.push(response.timing.total_seconds);
                                if response.degraded {
                                    degraded += 1;
                                }
                            }
                            Err(ServeError::Overloaded { .. }) => shed += 1,
                            Err(_) => failed += 1,
                        }
                    }
                    (latencies, shed, failed, degraded)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load client panicked"))
            .collect()
    });
    let wall_seconds = t0.elapsed().as_secs_f64();
    let stats = server.stats();
    let latency_sketches = server.latency_sketches();
    server.shutdown();

    let mut all_latencies = Vec::new();
    let (mut shed, mut failed, mut degraded) = (0u64, 0u64, 0u64);
    for (lat, s, f, d) in per_client {
        all_latencies.extend(lat);
        shed += s;
        failed += f;
        degraded += d;
    }
    let completed = all_latencies.len() as u64;
    LoadReport {
        wall_seconds,
        completed,
        shed,
        failed,
        degraded,
        throughput_rps: if wall_seconds > 0.0 {
            completed as f64 / wall_seconds
        } else {
            0.0
        },
        latency: summarize_latencies(&all_latencies),
        stats,
        latency_sketches,
    }
}

/// Open-loop load shape: offered rate, duration, and tenant skew.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Offered arrival rate in requests per second (Poisson process).
    pub rps: f64,
    /// How long arrivals are generated for, in seconds.
    pub duration_secs: f64,
    /// Zipf-style tenant skew over the workload: signature `i` gets weight
    /// `1 / (i + 1)^skew`. `0` is uniform; larger values concentrate
    /// traffic on the first signatures (the regime where signature
    /// coalescing pays).
    pub skew: f64,
    /// Reply-waiter threads draining tickets (the submitter never blocks on
    /// a reply — that would close the loop).
    pub waiters: usize,
    /// Arrival-schedule RNG seed: the same seed offers the same arrival
    /// times and signature picks.
    pub seed: u64,
    /// Serving runtime configuration under test.
    pub serve: ServeConfig,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            rps: 500.0,
            duration_secs: 2.0,
            skew: 1.0,
            waiters: 4,
            seed: 7,
            serve: ServeConfig::default(),
        }
    }
}

/// The outcome of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Wall time from first arrival to last reply.
    pub wall_seconds: f64,
    /// Arrivals the schedule offered.
    pub offered: u64,
    /// Offered rate actually realized (`offered / wall`).
    pub offered_rps: f64,
    /// Requests that completed with a response.
    pub completed: u64,
    /// Requests shed at admission (queue depth or tenant bound).
    pub shed: u64,
    /// Requests that failed with any other error (0 in a healthy run).
    pub failed: u64,
    /// Responses served via the degradation fallback.
    pub degraded: u64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// End-to-end (submit-to-reply) latency distribution.
    pub latency: LatencySummary,
    /// The server's batch-group size distribution (`serve.batch.size`).
    pub batch: SketchSnapshot,
    /// The server's own counters at the end of the run.
    pub stats: ServeStats,
    /// Per-outcome latency sketches, as in [`LoadReport`].
    pub latency_sketches: Vec<SketchSnapshot>,
    /// Final live status snapshot; carries the per-tenant metering ledger
    /// (`status.metering`) so the harness can report who consumed what
    /// under the skewed open-loop tenant mix.
    pub status: granii_serve::ServerStatus,
}

/// Pre-generates the Poisson arrival schedule: cumulative exponential gaps
/// (`−ln(U)/λ`) paired with a skew-weighted signature index per arrival.
fn arrival_schedule(cfg: &OpenLoopConfig, signatures: usize) -> Vec<(Duration, usize)> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Cumulative zipf-ish weights over the signatures.
    let mut cumulative = Vec::with_capacity(signatures);
    let mut total = 0.0f64;
    for i in 0..signatures {
        total += 1.0 / ((i + 1) as f64).powf(cfg.skew);
        cumulative.push(total);
    }
    let mut schedule = Vec::new();
    let mut at = 0.0f64;
    loop {
        // Exponential inter-arrival gap; 1 − U keeps ln away from 0.
        let u: f64 = rng.gen_range(0.0..1.0);
        at += -(1.0 - u).ln() / cfg.rps;
        if at >= cfg.duration_secs {
            return schedule;
        }
        let pick: f64 = rng.gen_range(0.0..total);
        let index = cumulative
            .partition_point(|c| *c <= pick)
            .min(signatures - 1);
        schedule.push((Duration::from_secs_f64(at), index));
    }
}

/// Runs the open-loop load test: arrivals are submitted on schedule whether
/// or not earlier requests finished (tickets are drained by a waiter pool),
/// so queueing — and therefore batching — emerges whenever the offered rate
/// exceeds the service rate.
///
/// # Panics
///
/// Panics if `workload` is empty, or the rate/duration are not positive.
pub fn run_open_loop(
    granii: Arc<Granii>,
    workload: &[ServeRequest],
    cfg: &OpenLoopConfig,
) -> OpenLoopReport {
    assert!(!workload.is_empty(), "load test needs at least one request");
    assert!(
        cfg.rps > 0.0 && cfg.duration_secs > 0.0,
        "open loop needs a positive rate and duration"
    );
    let schedule = arrival_schedule(cfg, workload.len());
    let offered = schedule.len() as u64;
    let server = Server::start(granii, cfg.serve.clone());
    let (tx, rx) = mpsc::channel::<Ticket>();
    let rx = Arc::new(Mutex::new(rx));

    let t0 = Instant::now();
    let (per_waiter, shed, submit_failed) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.waiters.max(1))
            .map(|_| {
                let rx = rx.clone();
                s.spawn(move || {
                    let mut latencies = Vec::new();
                    let (mut failed, mut degraded) = (0u64, 0u64);
                    loop {
                        // Holding the lock across `recv` is fine: whoever
                        // holds it takes the next ticket and releases before
                        // the (long) reply wait.
                        let ticket = match rx.lock().unwrap_or_else(PoisonError::into_inner).recv()
                        {
                            Ok(ticket) => ticket,
                            Err(_) => break, // submitter hung up, queue drained
                        };
                        match ticket.wait() {
                            Ok(response) => {
                                latencies.push(response.timing.total_seconds);
                                if response.degraded {
                                    degraded += 1;
                                }
                            }
                            Err(_) => failed += 1,
                        }
                    }
                    (latencies, failed, degraded)
                })
            })
            .collect();

        // The submitter: fire every arrival at its scheduled offset.
        let (mut shed, mut submit_failed) = (0u64, 0u64);
        for (at, index) in &schedule {
            if let Some(gap) = at.checked_sub(t0.elapsed()) {
                std::thread::sleep(gap);
            }
            match server.submit(workload[*index].clone()) {
                Ok(ticket) => {
                    let _ = tx.send(ticket);
                }
                Err(ServeError::Overloaded { .. }) => shed += 1,
                Err(_) => submit_failed += 1,
            }
        }
        drop(tx); // waiters exit once the in-flight tickets drain
        let per_waiter: Vec<(Vec<f64>, u64, u64)> = handles
            .into_iter()
            .map(|h| h.join().expect("open-loop waiter panicked"))
            .collect();
        (per_waiter, shed, submit_failed)
    });
    let wall_seconds = t0.elapsed().as_secs_f64();
    let stats = server.stats();
    let batch = server.batch_sketch();
    let latency_sketches = server.latency_sketches();
    let status = server.status();
    server.shutdown();

    let mut all_latencies = Vec::new();
    let (mut failed, mut degraded) = (submit_failed, 0u64);
    for (lat, f, d) in per_waiter {
        all_latencies.extend(lat);
        failed += f;
        degraded += d;
    }
    let completed = all_latencies.len() as u64;
    OpenLoopReport {
        wall_seconds,
        offered,
        offered_rps: if wall_seconds > 0.0 {
            offered as f64 / wall_seconds
        } else {
            0.0
        },
        completed,
        shed,
        failed,
        degraded,
        throughput_rps: if wall_seconds > 0.0 {
            completed as f64 / wall_seconds
        } else {
            0.0
        },
        latency: summarize_latencies(&all_latencies),
        batch,
        stats,
        latency_sketches,
        status,
    }
}

/// Per-phase outcome of a [`run_drift_scenario`] run.
#[derive(Debug, Clone)]
pub struct DriftPhaseReport {
    /// Requests completed in this phase.
    pub completed: u64,
    /// Requests failed in this phase (must be 0 in a healthy run).
    pub failed: u64,
    /// Distinct composition names served, in first-seen order. One entry
    /// means the phase was stable on a single plan.
    pub compositions: Vec<String>,
    /// Server-cumulative drift flags at phase end.
    pub drift_flagged: u64,
    /// Server-cumulative plan-cache invalidations at phase end (includes
    /// model-swap flushes).
    pub cache_invalidations: u64,
}

/// Outcome of the three-phase drift-injection scenario.
#[derive(Debug, Clone)]
pub struct DriftScenarioReport {
    /// Phase 1: serving under the clean cost models.
    pub clean_before: DriftPhaseReport,
    /// Phase 2: serving after the corrupted models were hot-swapped in.
    pub corrupted: DriftPhaseReport,
    /// Phase 3: serving after the clean models were restored.
    pub clean_after: DriftPhaseReport,
    /// Final live status snapshot (drift table included).
    pub status: granii_serve::ServerStatus,
}

fn run_drift_phase(server: &Server, request: &ServeRequest, requests: usize) -> DriftPhaseReport {
    let (mut completed, mut failed) = (0u64, 0u64);
    let mut compositions: Vec<String> = Vec::new();
    for _ in 0..requests {
        match server.process(request.clone()) {
            Ok(response) => {
                completed += 1;
                let name = response.composition.name();
                if compositions.last() != Some(&name) && !compositions.contains(&name) {
                    compositions.push(name);
                }
            }
            Err(_) => failed += 1,
        }
    }
    let stats = server.stats();
    DriftPhaseReport {
        completed,
        failed,
        compositions,
        drift_flagged: stats.drift_flagged,
        cache_invalidations: stats.cache_invalidations,
    }
}

/// Drift-injection load scenario: serve one fixed request signature through
/// three model regimes on a single long-lived server.
///
/// 1. **Clean**: `requests_per_phase` requests under `clean` — establishes
///    the baseline selection; no drift flags expected.
/// 2. **Corrupted**: `corrupted` is hot-swapped in (cache flushed), and the
///    same signature is hammered again. A model set corrupted so that
///    selection picks a plan whose steady-state prediction is wildly off
///    should be flagged by the online detector within
///    `min_samples + k_consecutive` requests, invalidating the cached plan.
/// 3. **Recovered**: `clean` is restored; re-selection should return to the
///    original composition with zero regret.
///
/// The harness is deliberately serial (one client): drift detection on the
/// modeled engine is deterministic per signature, and serial phases keep the
/// per-phase counters exact for the e2e assertions in
/// `crates/bench/tests/drift.rs`.
pub fn run_drift_scenario(
    clean: Arc<Granii>,
    corrupted: Arc<Granii>,
    request: &ServeRequest,
    requests_per_phase: usize,
    serve: ServeConfig,
) -> DriftScenarioReport {
    let server = Server::start(clean.clone(), serve);
    let clean_before = run_drift_phase(&server, request, requests_per_phase);
    server.replace_granii(corrupted);
    let corrupted_phase = run_drift_phase(&server, request, requests_per_phase);
    server.replace_granii(clean);
    let clean_after = run_drift_phase(&server, request, requests_per_phase);
    let status = server.status();
    server.shutdown();
    DriftScenarioReport {
        clean_before,
        corrupted: corrupted_phase,
        clean_after,
        status,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_exact_on_known_samples() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert_eq!(percentile(&sorted, 0.50), 51.0); // nearest rank on 0..=99
        assert_eq!(percentile(&[], 0.5), 0.0);
        let summary = summarize_latencies(&[0.001, 0.002, 0.003]);
        assert_eq!(summary.count, 3);
        assert_eq!(summary.p50_ms, 2.0);
        assert_eq!(summary.max_ms, 3.0);
    }

    #[test]
    fn arrival_schedule_is_deterministic_skewed_and_rate_matched() {
        let cfg = OpenLoopConfig {
            rps: 1000.0,
            duration_secs: 2.0,
            skew: 1.5,
            ..OpenLoopConfig::default()
        };
        let a = arrival_schedule(&cfg, 6);
        let b = arrival_schedule(&cfg, 6);
        assert_eq!(a.len(), b.len(), "same seed, same schedule");
        assert!(a.iter().zip(&b).all(|(x, y)| x == y));
        // ~2000 expected arrivals; Poisson keeps it within a loose band.
        assert!(a.len() > 1500 && a.len() < 2500, "got {}", a.len());
        // Arrival times are sorted and inside the window.
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(a.last().unwrap().0.as_secs_f64() < cfg.duration_secs);
        // Skew concentrates on signature 0 and still reaches the tail.
        let head = a.iter().filter(|(_, i)| *i == 0).count();
        let tail = a.iter().filter(|(_, i)| *i == 5).count();
        assert!(
            head > tail,
            "skew must favor signature 0 ({head} vs {tail})"
        );
        assert!(tail > 0, "tail signatures still receive traffic");
        assert!(a.iter().all(|(_, i)| *i < 6));
        // Uniform skew (0) spreads the load roughly evenly.
        let uniform = arrival_schedule(
            &OpenLoopConfig {
                skew: 0.0,
                ..cfg.clone()
            },
            4,
        );
        for sig in 0..4usize {
            let n = uniform.iter().filter(|(_, i)| *i == sig).count();
            assert!(
                n > uniform.len() / 8,
                "uniform skew starved signature {sig} ({n}/{})",
                uniform.len()
            );
        }
    }

    #[test]
    fn merged_sketch_folds_outcomes_and_skips_empty() {
        use granii_telemetry::Sketch;
        let hit = Sketch::new(0.01);
        let miss = Sketch::new(0.01);
        for ns in [1_000_000u64, 2_000_000, 3_000_000] {
            hit.record_ns(ns);
        }
        miss.record_ns(50_000_000);
        let degraded = Sketch::new(0.01); // never recorded
        let snaps = vec![
            hit.snapshot("serve.latency.hit"),
            miss.snapshot("serve.latency.miss"),
            degraded.snapshot("serve.latency.degraded"),
        ];
        let merged = merged_latency_sketch(&snaps).expect("non-empty merge");
        assert_eq!(merged.name, "serve.latency");
        assert_eq!(merged.count, 4);
        assert_eq!(merged.max_ns, 50_000_000);
        assert_eq!(merged.min_ns, 1_000_000);
        assert!(merged_latency_sketch(&[]).is_none());
    }
}
