//! Reproduces every table and figure of the GRANII paper's evaluation.
//!
//! ```text
//! repro [--scale tiny|small] <experiment>
//!
//! experiments:
//!   counts     §VI-B composition counts (enumerated / pruned pairs)
//!   fig6       matrix IR and association trees for the GCN running example
//!   fig3       per-operation complexity tables for GCN and GAT
//!   fig1       speedup of static / config / input-aware orderings (GCN)
//!   fig2       sparse vs dense runtime split across graphs and hardware
//!   table3     geomean speedups across systems, devices, models, and modes
//!   fig8       per-graph speedups for every panel of the grid
//!   table4     end-to-end 2-layer forward latencies (Reddit, ogbn-products)
//!   fig9       sampling sensitivity on mycielskian (GCN and GAT)
//!   table5     multi-layer speedups vs WiseGraph
//!   table6     GRANII vs oracle heuristics
//!   overheads  featurization + selection overheads
//!   ablations  design-choice studies (pruning benefit, amortization)
//!   calibrate  device-model vs measured-CPU kernel validation
//!   all        everything above
//! ```

use std::collections::BTreeMap;

use granii_bench::grid::{self, EvalConfig, Mode, Record};
use granii_bench::policies::{self, Policy};
use granii_bench::report::{geomean, seconds, speedup, table};
use granii_bench::runner::{self, ITERATIONS};
use granii_core::complexity::complexity_table;
use granii_core::ir::{builder, rewrite};
use granii_core::plan::CompiledModel;
use granii_core::{Granii, GraniiOptions};
use granii_gnn::models::GnnLayer;
use granii_gnn::spec::{Composition, GatStrategy, LayerConfig, ModelKind, NormStrategy, OpOrder};
use granii_gnn::system::{BaselineRunner, System};
use granii_gnn::{Exec, GraphCtx};
use granii_graph::datasets::{Dataset, Scale};
use granii_graph::{sampling, Graph};
use granii_matrix::device::{DeviceKind, Engine, Profile};
use granii_matrix::DenseMatrix;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut records_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut trace_summary = false;
    let mut cmd = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--records" => {
                i += 1;
                records_path = args.get(i).cloned();
                if records_path.is_none() {
                    eprintln!("--records needs a path");
                    std::process::exit(2);
                }
            }
            "--trace-out" => {
                i += 1;
                trace_path = args.get(i).cloned();
                if trace_path.is_none() {
                    eprintln!("--trace-out needs a path");
                    std::process::exit(2);
                }
            }
            "--metrics-out" => {
                i += 1;
                metrics_path = args.get(i).cloned();
                if metrics_path.is_none() {
                    eprintln!("--metrics-out needs a path");
                    std::process::exit(2);
                }
            }
            "--trace-summary" => trace_summary = true,
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            c if cmd.is_none() => cmd = Some(c.to_string()),
            other => {
                eprintln!("unexpected argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(cmd) = cmd else {
        eprintln!("usage: repro [--scale tiny|small] [--trace-out FILE] [--metrics-out FILE] [--trace-summary] <experiment>");
        eprintln!("experiments: counts fig6 fig3 fig1 fig2 table3 fig8 table4 fig9 table5 table6 overheads all");
        std::process::exit(2);
    };

    let tracing = trace_path.is_some() || metrics_path.is_some() || trace_summary;
    if tracing {
        granii_telemetry::enable();
    }
    let mut ctx = ReproContext::new(scale);
    ctx.records_path = records_path;
    match cmd.as_str() {
        "counts" => counts(),
        "fig6" => fig6(),
        "fig3" => fig3(),
        "fig1" => fig1(&mut ctx),
        "fig2" => fig2(&mut ctx),
        "table3" => table3(&mut ctx),
        "fig8" => fig8(&mut ctx),
        "table4" => table4(&mut ctx),
        "fig9" => fig9(&mut ctx),
        "table5" => table5(&mut ctx),
        "table6" => table6(&mut ctx),
        "overheads" => overheads(&mut ctx),
        "ablations" => ablations(&mut ctx),
        "calibrate" => calibrate(),
        "all" => {
            counts();
            fig6();
            fig3();
            fig1(&mut ctx);
            fig2(&mut ctx);
            table3(&mut ctx);
            fig8(&mut ctx);
            table4(&mut ctx);
            fig9(&mut ctx);
            table5(&mut ctx);
            table6(&mut ctx);
            overheads(&mut ctx);
            ablations(&mut ctx);
            calibrate();
        }
        other => {
            eprintln!("unknown experiment {other}");
            std::process::exit(2);
        }
    }

    if tracing {
        granii_telemetry::disable();
        let spans = granii_telemetry::take_spans();
        if let Some(path) = &trace_path {
            let json = granii_telemetry::export::chrome_trace(&spans);
            match std::fs::write(path, json) {
                Ok(()) => eprintln!("[trace] {} spans -> {path}", spans.len()),
                Err(e) => eprintln!("[trace] failed to write {path}: {e}"),
            }
        }
        if let Some(path) = &metrics_path {
            let snapshot = granii_telemetry::metrics_snapshot();
            match std::fs::write(path, granii_telemetry::export::metrics_json(&snapshot)) {
                Ok(()) => eprintln!(
                    "[metrics] {} counters, {} histograms -> {path}",
                    snapshot.counters.len(),
                    snapshot.histograms.len()
                ),
                Err(e) => eprintln!("[metrics] failed to write {path}: {e}"),
            }
        }
        if trace_summary {
            println!("\n== Span summary ==");
            print!("{}", granii_telemetry::export::summary(&spans));
        }
    }
}

/// Caches trained GRANII instances, loaded graphs, and the main-grid records.
struct ReproContext {
    scale: Scale,
    granii: BTreeMap<DeviceKind, Granii>,
    graphs: BTreeMap<Dataset, Graph>,
    records: Option<Vec<Record>>,
    /// Optional JSON cache for the main-grid records (`--records PATH`).
    records_path: Option<String>,
}

impl ReproContext {
    fn new(scale: Scale) -> Self {
        Self {
            scale,
            granii: BTreeMap::new(),
            graphs: BTreeMap::new(),
            records: None,
            records_path: None,
        }
    }

    fn granii(&mut self, device: DeviceKind) -> &Granii {
        self.granii.entry(device).or_insert_with(|| {
            eprintln!("[offline] training cost models for {device}...");
            Granii::train_for_device(device, GraniiOptions::default()).expect("cost-model training")
        })
    }

    fn graph(&mut self, dataset: Dataset) -> &Graph {
        let scale = self.scale;
        self.graphs.entry(dataset).or_insert_with(|| {
            eprintln!("[data] generating {dataset} stand-in...");
            dataset.load(scale).expect("dataset generation")
        })
    }

    /// Computes (once) the full Table III / Fig 8 / Table VI record set,
    /// loading/saving the JSON cache when `--records` was given.
    fn records(&mut self) -> &[Record] {
        if self.records.is_none() {
            if let Some(path) = &self.records_path {
                if let Ok(json) = std::fs::read_to_string(path) {
                    match serde_json::from_str::<Vec<Record>>(&json) {
                        Ok(records) => {
                            eprintln!("[grid] loaded {} cached records from {path}", records.len());
                            self.records = Some(records);
                            return self.records.as_deref().expect("just loaded");
                        }
                        Err(e) => eprintln!("[grid] ignoring unreadable cache {path}: {e}"),
                    }
                }
            }
            let configs = grid::full_grid(&Dataset::ALL);
            eprintln!("[grid] evaluating {} configurations...", configs.len());
            let mut records = Vec::with_capacity(configs.len());
            for (i, cfg) in configs.iter().enumerate() {
                if i % 100 == 0 {
                    eprintln!("[grid] {i}/{}", configs.len());
                }
                self.granii(cfg.device);
                self.graph(cfg.dataset);
                let granii = &self.granii[&cfg.device];
                let graph = &self.graphs[&cfg.dataset];
                let rec = runner::evaluate_config(cfg, graph, granii).expect("evaluation");
                records.push(rec);
            }
            if let Some(path) = &self.records_path {
                match serde_json::to_string(&records) {
                    Ok(json) => {
                        if let Err(e) = std::fs::write(path, json) {
                            eprintln!("[grid] failed to write cache {path}: {e}");
                        } else {
                            eprintln!("[grid] cached {} records to {path}", records.len());
                        }
                    }
                    Err(e) => eprintln!("[grid] failed to serialize cache: {e}"),
                }
            }
            self.records = Some(records);
        }
        self.records.as_deref().expect("just computed")
    }
}

/// §VI-B composition counts.
fn counts() {
    println!("\n== Composition counts (paper §VI-B: GCN 12/8, GAT 2/0, GIN 8/4) ==");
    let mut rows = vec![vec![
        "model".into(),
        "enumerated".into(),
        "pruned".into(),
        "promoted".into(),
        "paper (enum/pruned)".into(),
    ]];
    for (model, paper) in [
        (ModelKind::Gcn, "12 / 8"),
        (ModelKind::Gat, "2 / 0"),
        (ModelKind::Gin, "8 / 4"),
        (ModelKind::Sgc, "-"),
        (ModelKind::Tagcn, "-"),
        (ModelKind::Sage, "-"),
    ] {
        let plan = CompiledModel::compile(model, LayerConfig::new(32, 256)).expect("compile");
        rows.push(vec![
            model.to_string(),
            plan.enumerated.to_string(),
            plan.pruned.to_string(),
            plan.candidates.len().to_string(),
            paper.into(),
        ]);
    }
    print!("{}", table(&rows));
}

/// Fig 6: the GCN running example through the offline stage.
fn fig6() {
    println!("\n== Fig 6: matrix IR and association trees (GCN) ==");
    let ir = builder::build(ModelKind::Gcn, LayerConfig::new(32, 256));
    println!("message-passing IR : {}", ir.render());
    let canon = rewrite::canonicalize(&ir);
    println!("after rewrite      : {}", canon.render());
    let plan = CompiledModel::compile(ModelKind::Gcn, LayerConfig::new(32, 256)).expect("compile");
    println!("promoted association trees:");
    for c in &plan.candidates {
        let scen = match (c.shrink, c.grow) {
            (true, true) => "<>",
            (true, false) => ">",
            (false, true) => "<",
            _ => "-",
        };
        println!("  [{scen}] {} => {}", c.program.expr, c.composition);
        for s in &c.program.steps {
            let once = if s.once { " (hoisted)" } else { "" };
            println!("        {}: {}{once}", s.kind, s.signature);
        }
    }
}

/// Fig 3: complexity tables.
fn fig3() {
    println!("\n== Fig 3: composition complexities ==");
    for model in [ModelKind::Gcn, ModelKind::Gat] {
        println!("-- {model} --");
        for row in complexity_table(model, LayerConfig::new(32, 256)).expect("compile") {
            let ops: Vec<String> = row
                .operations
                .iter()
                .map(|(k, c)| format!("{k} {c}"))
                .collect();
            println!("  {}: {}", row.composition, ops.join(", "));
        }
    }
}

/// Fig 1: static vs config vs input-aware orderings for GCN.
fn fig1(ctx: &mut ReproContext) {
    let records: Vec<Record> = ctx
        .records()
        .iter()
        .filter(|r| r.config.model == ModelKind::Gcn && r.config.mode == Mode::Inference)
        .cloned()
        .collect();
    println!("\n== Fig 1: GCN speedups by ordering strategy ==");
    let mut rows = vec![vec![
        "graph".into(),
        "static".into(),
        "config".into(),
        "all (GRANII)".into(),
    ]];
    for dataset in Dataset::ALL {
        let subset: Vec<Record> = records
            .iter()
            .filter(|r| r.config.dataset == dataset)
            .cloned()
            .collect();
        rows.push(vec![
            dataset.to_string(),
            speedup(policies::geomean_speedup(Policy::Static, &subset)),
            speedup(policies::geomean_speedup(Policy::Config, &subset)),
            speedup(policies::geomean_speedup(Policy::Granii, &subset)),
        ]);
    }
    rows.push(vec![
        "geomean".into(),
        speedup(policies::geomean_speedup(Policy::Static, &records)),
        speedup(policies::geomean_speedup(Policy::Config, &records)),
        speedup(policies::geomean_speedup(Policy::Granii, &records)),
    ]);
    print!("{}", table(&rows));
}

/// Fig 2: sparse/dense runtime split.
fn fig2(ctx: &mut ReproContext) {
    println!("\n== Fig 2: % runtime in sparse vs dense primitives (GCN, DGL default) ==");
    let mut rows = vec![vec![
        "graph".into(),
        "(in,out)".into(),
        "device".into(),
        "sparse".into(),
        "dense".into(),
    ]];
    let mut merged: BTreeMap<DeviceKind, Profile> = BTreeMap::new();
    for dataset in Dataset::ALL {
        let graph = ctx.graph(dataset).clone();
        for (k1, k2) in [(32, 32), (1024, 1024)] {
            for device in DeviceKind::ALL {
                let p = runner::sparse_dense_breakdown(&graph, k1, k2, device).expect("profile");
                let f = p.sparse_fraction();
                rows.push(vec![
                    dataset.to_string(),
                    format!("({k1},{k2})"),
                    device.to_string(),
                    format!("{:.0}%", f * 100.0),
                    format!("{:.0}%", (1.0 - f) * 100.0),
                ]);
                merged.entry(device).or_default().merge(p);
            }
        }
    }
    print!("{}", table(&rows));
    for (device, profile) in merged {
        println!("\n-- aggregate primitive breakdown, all graphs/widths on {device} --");
        println!("{profile}");
    }
}

/// Table III: geomean speedups.
fn table3(ctx: &mut ReproContext) {
    let records = ctx.records().to_vec();
    println!(
        "\n== Table III: geomean speedups across graphs and configurations ({ITERATIONS} iterations) =="
    );
    let mut rows = vec![vec![
        "system".into(),
        "hw".into(),
        "mode".into(),
        "overall".into(),
        "GCN".into(),
        "GIN".into(),
        "SGC".into(),
        "TAGCN".into(),
        "GAT".into(),
    ]];
    for (system, device) in grid::system_devices() {
        for mode in Mode::ALL {
            let subset: Vec<&Record> = records
                .iter()
                .filter(|r| {
                    r.config.system == system && r.config.device == device && r.config.mode == mode
                })
                .collect();
            let mut row = vec![system.to_string(), device.to_string(), mode.to_string()];
            row.push(speedup(geomean(
                &subset.iter().map(|r| r.speedup()).collect::<Vec<_>>(),
            )));
            for model in ModelKind::EVAL {
                let per: Vec<f64> = subset
                    .iter()
                    .filter(|r| r.config.model == model)
                    .map(|r| r.speedup())
                    .collect();
                row.push(speedup(geomean(&per)));
            }
            rows.push(row);
        }
    }
    for mode in Mode::ALL {
        let subset: Vec<&Record> = records.iter().filter(|r| r.config.mode == mode).collect();
        let mut row = vec!["Overall".into(), "-".into(), mode.to_string()];
        row.push(speedup(geomean(
            &subset.iter().map(|r| r.speedup()).collect::<Vec<_>>(),
        )));
        for model in ModelKind::EVAL {
            let per: Vec<f64> = subset
                .iter()
                .filter(|r| r.config.model == model)
                .map(|r| r.speedup())
                .collect();
            row.push(speedup(geomean(&per)));
        }
        rows.push(row);
    }
    print!("{}", table(&rows));
    println!("paper: overall 1.56x inference / 1.40x training");
}

/// Fig 8: per-graph speedups, panel by panel.
fn fig8(ctx: &mut ReproContext) {
    let records = ctx.records().to_vec();
    println!("\n== Fig 8: per-graph inference speedups ==");
    for (system, device) in grid::system_devices() {
        for model in ModelKind::EVAL {
            println!("-- {system} / {device} / {model} --");
            let mut rows = vec![{
                let mut h = vec!["(k1,k2)".to_string()];
                h.extend(Dataset::ALL.iter().map(ToString::to_string));
                h
            }];
            for (k1, k2) in grid::embed_combos(model) {
                let mut row = vec![format!("({k1},{k2})")];
                for dataset in Dataset::ALL {
                    let rec = records.iter().find(|r| {
                        r.config
                            == EvalConfig {
                                system,
                                device,
                                model,
                                dataset,
                                k1,
                                k2,
                                mode: Mode::Inference,
                            }
                    });
                    row.push(rec.map_or("-".into(), |r| speedup(r.speedup())));
                }
                rows.push(row);
            }
            print!("{}", table(&rows));
        }
    }
}

/// Table IV: end-to-end 2-layer forward latencies on the H100.
fn table4(ctx: &mut ReproContext) {
    println!("\n== Table IV: end-to-end forward latency (H100, 2 layers) ==");
    let device = DeviceKind::H100;
    ctx.granii(device);
    let mut rows = vec![vec![
        "graph".into(),
        "model".into(),
        "hidden".into(),
        "Wise default".into(),
        "Wise GRANII".into(),
        "DGL default".into(),
        "DGL GRANII".into(),
    ]];
    for (dataset, feats, classes) in [
        (Dataset::Reddit, 602usize, 41usize),
        (Dataset::OgbnProducts, 100, 47),
    ] {
        ctx.graph(dataset);
        for model in [ModelKind::Gcn, ModelKind::Gat] {
            for hidden in [32usize, 256, 1024] {
                let graph = &ctx.graphs[&dataset];
                let granii = &ctx.granii[&device];
                let mut cells = vec![dataset.to_string(), model.to_string(), hidden.to_string()];
                for system in [System::WiseGraph, System::Dgl] {
                    let (base, opt) =
                        end_to_end(system, model, graph, feats, hidden, classes, granii);
                    cells.push(seconds(base));
                    cells.push(format!("{} ({})", seconds(opt), speedup(base / opt)));
                }
                rows.push(cells);
            }
        }
    }
    print!("{}", table(&rows));
}

/// One end-to-end 2-layer forward: baseline vs GRANII-selected compositions.
fn end_to_end(
    system: System,
    model: ModelKind,
    graph: &Graph,
    feats: usize,
    hidden: usize,
    classes: usize,
    granii: &Granii,
) -> (f64, f64) {
    let ctx = GraphCtx::new(graph).expect("ctx");
    let engine = Engine::modeled(granii.device());
    let exec = Exec::virtual_only(&engine);
    let dims = [(feats, hidden), (hidden, classes)];

    let mut baseline = 0.0;
    for (k1, k2) in dims {
        let runner = BaselineRunner::new(system, model, LayerConfig::new(k1, k2), 7, &exec, &ctx)
            .expect("baseline");
        engine.take_profile();
        let h = DenseMatrix::zeros(ctx.num_nodes(), k1).expect("alloc");
        runner.iterate(&exec, &ctx, &h).expect("forward");
        baseline += engine.take_profile().total_seconds();
    }

    // GRANII: decisions amortized over the usual run length; the one-time
    // selection overhead and preparation are not part of the per-forward
    // latency (they are reported by the `overheads` experiment), matching the
    // paper's per-forward Table IV numbers.
    let mut optimized = 0.0;
    for (k1, k2) in dims {
        let cfg = LayerConfig::new(k1, k2);
        let sel = granii
            .select_with_config(model, graph, cfg, granii_bench::runner::ITERATIONS)
            .expect("select");
        let layer = GnnLayer::new(model, cfg, 7).expect("layer");
        let prepared = layer
            .prepare(&exec, &ctx, sel.composition)
            .expect("prepare");
        engine.take_profile();
        let h = DenseMatrix::zeros(ctx.num_nodes(), k1).expect("alloc");
        layer
            .forward(&exec, &ctx, &prepared, &h, sel.composition)
            .expect("forward");
        optimized += engine.take_profile().total_seconds();
    }
    (baseline, optimized)
}

/// Fig 9: sampling sensitivity on mycielskian.
fn fig9(ctx: &mut ReproContext) {
    println!("\n== Fig 9: neighborhood sampling on MC (H100, DGL kernels) ==");
    let device = DeviceKind::H100;
    ctx.granii(device);
    ctx.graph(Dataset::Mycielskian17);
    let graph = ctx.graphs[&Dataset::Mycielskian17].clone();
    let granii = &ctx.granii[&device];

    for (model, k1, k2, comps) in [
        (
            ModelKind::Gcn,
            32usize,
            32usize,
            vec![
                Composition::Gcn(NormStrategy::Dynamic, OpOrder::AggregateFirst),
                Composition::Gcn(NormStrategy::Precompute, OpOrder::AggregateFirst),
            ],
        ),
        (
            ModelKind::Gat,
            1024,
            2048,
            vec![
                Composition::Gat(GatStrategy::Reuse),
                Composition::Gat(GatStrategy::Recompute),
            ],
        ),
    ] {
        println!("-- {model} ({k1},{k2}) --");
        let full_decision = granii
            .select_with_config(model, &graph, LayerConfig::new(k1, k2), ITERATIONS)
            .expect("select");
        println!("decision on the full graph: {}", full_decision.composition);
        let mut rows = vec![vec![
            "fanout".into(),
            format!("{} median", comps[0]),
            format!("{} median", comps[1]),
            "per-sample winner".into(),
        ]];
        for fanout in [1000usize, 100, 10] {
            let mut times: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
            let mut winners = [0usize; 2];
            for seed in 0..10u64 {
                let sampled = sampling::sample_neighbors(&graph, fanout, seed).expect("sample");
                let sctx = GraphCtx::new(&sampled).expect("ctx");
                let engine = Engine::modeled(device);
                let exec = Exec::virtual_only(&engine);
                let h = DenseMatrix::zeros(sctx.num_nodes(), k1).expect("alloc");
                let mut per = Vec::new();
                for comp in &comps {
                    let layer = GnnLayer::new(model, LayerConfig::new(k1, k2), 7).expect("layer");
                    engine.take_profile();
                    let prepared = layer.prepare(&exec, &sctx, *comp).expect("prepare");
                    let prep = engine.take_profile().total_seconds();
                    layer
                        .forward(&exec, &sctx, &prepared, &h, *comp)
                        .expect("forward");
                    let iter = engine.take_profile().total_seconds();
                    per.push(prep + ITERATIONS as f64 * iter);
                }
                winners[if per[0] <= per[1] { 0 } else { 1 }] += 1;
                times[0].push(per[0]);
                times[1].push(per[1]);
            }
            let median = |v: &mut Vec<f64>| {
                v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                v[v.len() / 2]
            };
            rows.push(vec![
                fanout.to_string(),
                seconds(median(&mut times[0])),
                seconds(median(&mut times[1])),
                format!("{}:{}", winners[0], winners[1]),
            ]);
        }
        print!("{}", table(&rows));
    }
}

/// Table V: multi-layer speedups vs WiseGraph (H100).
fn table5(ctx: &mut ReproContext) {
    println!("\n== Table V: multi-layer speedups vs WiseGraph (H100, GCN, 100 iterations) ==");
    let device = DeviceKind::H100;
    ctx.granii(device);
    let mut rows = vec![{
        let mut h = vec!["graph".to_string()];
        h.extend((1..=4).map(|l| format!("{l} layer(s)")));
        h
    }];
    for dataset in [Dataset::Reddit, Dataset::BelgiumOsm, Dataset::Mycielskian17] {
        ctx.graph(dataset);
        let graph = ctx.graphs[&dataset].clone();
        let granii = &ctx.granii[&device];
        let gctx = GraphCtx::new(&graph).expect("ctx");
        let mut row = vec![dataset.to_string()];
        for layers in 1..=4usize {
            let dims: Vec<(usize, usize)> = (0..layers).map(|_| (256usize, 256usize)).collect();
            let engine = Engine::modeled(device);
            let exec = Exec::virtual_only(&engine);
            // Baseline: WiseGraph default per layer, per iteration.
            let mut base = 0.0;
            for &(k1, k2) in &dims {
                let runner = BaselineRunner::new(
                    System::WiseGraph,
                    ModelKind::Gcn,
                    LayerConfig::new(k1, k2),
                    7,
                    &exec,
                    &gctx,
                )
                .expect("baseline");
                engine.take_profile();
                let h = DenseMatrix::zeros(gctx.num_nodes(), k1).expect("alloc");
                runner.iterate(&exec, &gctx, &h).expect("fwd");
                base += engine.take_profile().total_seconds();
            }
            // GRANII: per-layer selection (§VI-F).
            let mut opt = 0.0;
            let mut once = 0.0;
            for &(k1, k2) in &dims {
                let cfg = LayerConfig::new(k1, k2);
                let sel = granii
                    .select_with_config(ModelKind::Gcn, &graph, cfg, ITERATIONS)
                    .expect("select");
                once += sel.overhead_seconds();
                let layer = GnnLayer::new(ModelKind::Gcn, cfg, 7).expect("layer");
                engine.take_profile();
                let prepared = layer.prepare(&exec, &gctx, sel.composition).expect("prep");
                once += engine.take_profile().total_seconds();
                let h = DenseMatrix::zeros(gctx.num_nodes(), k1).expect("alloc");
                layer
                    .forward(&exec, &gctx, &prepared, &h, sel.composition)
                    .expect("fwd");
                opt += engine.take_profile().total_seconds();
            }
            let n = ITERATIONS as f64;
            row.push(speedup((base * n) / (opt * n + once)));
        }
        rows.push(row);
    }
    print!("{}", table(&rows));
}

/// Table VI: GRANII vs oracle heuristics.
fn table6(ctx: &mut ReproContext) {
    let records = ctx.records().to_vec();
    println!("\n== Table VI: speedup from GRANII vs other heuristics ==");
    let mut rows = vec![{
        let mut h = vec!["GNN".to_string()];
        h.extend(Policy::TABLE6.iter().map(|p| p.name().to_string()));
        h
    }];
    for model in ModelKind::EVAL {
        let subset: Vec<Record> = records
            .iter()
            .filter(|r| r.config.model == model)
            .cloned()
            .collect();
        let mut row = vec![model.to_string().to_uppercase()];
        for policy in Policy::TABLE6 {
            row.push(speedup(policies::geomean_speedup(policy, &subset)));
        }
        rows.push(row);
    }
    print!("{}", table(&rows));
}

/// Selection overhead report (§VI-C1 "Overheads").
fn overheads(ctx: &mut ReproContext) {
    let records = ctx.records().to_vec();
    println!("\n== Overheads: featurization + selection (once per runtime) ==");
    let mut rows = vec![vec![
        "device".into(),
        "max overhead".into(),
        "max vs one iteration".into(),
    ]];
    for device in DeviceKind::ALL {
        let subset: Vec<&Record> = records
            .iter()
            .filter(|r| r.config.device == device && r.used_cost_models)
            .collect();
        if subset.is_empty() {
            continue;
        }
        let max = subset
            .iter()
            .map(|r| r.overhead_seconds)
            .fold(0.0, f64::max);
        let rel = subset
            .iter()
            .map(|r| r.overhead_seconds / (r.granii_seconds / ITERATIONS as f64))
            .fold(0.0, f64::max);
        rows.push(vec![device.to_string(), seconds(max), format!("{rel:.1}x")]);
    }
    print!("{}", table(&rows));
    println!("paper: at most 7ms on GPU / 0.42s on CPU; 4.4x / 1.1x of one iteration");
}

/// Ablations of GRANII's design choices (see `DESIGN.md`): the offline
/// pruning's online-overhead benefit, and the sensitivity of decisions to the
/// amortized iteration count.
fn ablations(ctx: &mut ReproContext) {
    println!("\n== Ablation 1: offline pruning reduces the online search space ==");
    let device = DeviceKind::H100;
    ctx.granii(device);
    ctx.graph(Dataset::Reddit);
    let graph = ctx.graphs[&Dataset::Reddit].clone();
    let granii = &ctx.granii[&device];
    let mut rows = vec![vec![
        "model".into(),
        "enumerated".into(),
        "promoted".into(),
        "select (all trees)".into(),
        "select (promoted)".into(),
    ]];
    for model in ModelKind::EVAL {
        let cfg = LayerConfig::new(64, 64);
        let plan = CompiledModel::compile(model, cfg).expect("compile");
        // Selection over the pruned (promoted) set — the production path.
        let t0 = std::time::Instant::now();
        let _ = granii
            .select_with_config(model, &graph, cfg, ITERATIONS)
            .expect("select");
        let pruned_time = t0.elapsed().as_secs_f64();
        // Selection over the *whole* enumerated forest (pruning disabled):
        // featurize once, predict every tree.
        let ir = builder::build(model, cfg);
        let mut all = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for v in rewrite::variants(&ir) {
            for cand in granii_core::assoc::enumerate(&v).expect("enumerate") {
                if seen.insert(cand.expr.clone()) {
                    all.push(cand);
                }
            }
        }
        let t1 = std::time::Instant::now();
        let input = granii_core::cost::FeaturizedInput::extract(&graph, cfg.k_in, cfg.k_out);
        let mut best = f64::INFINITY;
        for cand in &all {
            let c = granii
                .cost_models()
                .predict_program(cand, &input, ITERATIONS)
                .expect("predict");
            best = best.min(c);
        }
        let full_time = t1.elapsed().as_secs_f64();
        rows.push(vec![
            model.to_string(),
            all.len().to_string(),
            plan.candidates.len().to_string(),
            seconds(full_time),
            seconds(pruned_time),
        ]);
    }
    print!("{}", table(&rows));

    println!("\n== Ablation 2: decisions vs the amortized iteration count (GCN, k=1024) ==");
    let mut rows = vec![vec![
        "graph".into(),
        "1 iter".into(),
        "10 iters".into(),
        "100 iters".into(),
        "1000 iters".into(),
    ]];
    for dataset in [Dataset::Mycielskian17, Dataset::BelgiumOsm] {
        ctx.graph(dataset);
        let graph = ctx.graphs[&dataset].clone();
        let granii = &ctx.granii[&device];
        let mut row = vec![dataset.to_string()];
        for iters in [1usize, 10, 100, 1000] {
            let sel = granii
                .select_with_config(ModelKind::Gcn, &graph, LayerConfig::new(1024, 1024), iters)
                .expect("select");
            row.push(sel.composition_name());
        }
        rows.push(row);
    }
    print!("{}", table(&rows));
}

/// Validates the CPU device model against real measured kernels: the
/// substitution argument of `DESIGN.md` §2 requires the model to *rank*
/// kernels and inputs like the real machine does, so the report shows
/// measured vs modeled latencies and their rank correlation.
fn calibrate() {
    use granii_matrix::device::{DeviceSpec, Engine};
    use granii_matrix::{ops, Semiring, WorkStats};

    println!("\n== Calibration: measured CPU kernels vs the CPU device model ==");
    let spec = DeviceSpec::cpu();
    let engine = Engine::cpu_measured();
    let mut rows = vec![vec![
        "kernel".to_string(),
        "graph".into(),
        "k".into(),
        "measured".into(),
        "modeled".into(),
    ]];
    let mut measured_all = Vec::new();
    let mut modeled_all = Vec::new();

    let graphs = [
        granii_graph::generators::power_law(4_000, 12, 1).expect("gen"),
        granii_graph::generators::grid_2d(70, 70).expect("gen"),
        granii_graph::generators::mycielskian(10).expect("gen"),
    ];
    for graph in &graphs {
        let adj = graph.adj();
        let irr = graph.row_stats().cv;
        for k in [32usize, 128, 512] {
            let x = DenseMatrix::random(adj.cols(), k, 1.0, 2);
            let w = DenseMatrix::random(k, k, 1.0, 3);
            let d: Vec<f32> = (0..adj.rows()).map(|i| 1.0 + (i % 5) as f32).collect();

            let mut push = |kernel: &str, stats: WorkStats, run: &mut dyn FnMut()| {
                // Warm up once, then time the median of 3 runs.
                run();
                let mut times = Vec::new();
                for _ in 0..3 {
                    let t = std::time::Instant::now();
                    run();
                    times.push(t.elapsed().as_secs_f64());
                }
                times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                let measured = times[1];
                let modeled = spec.estimate_seconds(&stats);
                measured_all.push(measured);
                modeled_all.push(modeled);
                rows.push(vec![
                    kernel.to_string(),
                    graph.name().to_string(),
                    k.to_string(),
                    seconds(measured),
                    seconds(modeled),
                ]);
            };

            push(
                "spmm_unweighted",
                WorkStats::spmm(adj.rows(), adj.nnz(), k, false, irr),
                &mut || {
                    ops::spmm(adj, &x, Semiring::plus_copy_rhs()).expect("spmm");
                },
            );
            push("gemm", WorkStats::gemm(adj.rows(), k, k), &mut || {
                ops::gemm(&x, &w).expect("gemm");
            });
            push(
                "row_broadcast",
                WorkStats::row_broadcast(adj.rows(), k),
                &mut || {
                    ops::row_broadcast(&d, &x, granii_matrix::ops::BroadcastOp::Mul)
                        .expect("broadcast");
                },
            );
        }
    }
    let _ = engine; // the Engine API is exercised elsewhere; timing is direct here
    print!("{}", table(&rows));
    let spearman = granii_boost::metrics::spearman(&measured_all, &modeled_all);
    println!(
        "rank correlation (spearman) over {} kernel invocations: {spearman:.3}",
        measured_all.len()
    );
    println!("the device model must rank kernels/inputs like the machine; 1.0 is perfect");
}
