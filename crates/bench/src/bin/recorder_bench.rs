//! Hot-path cost of the serving flight recorder (`granii_serve::FlightRecorder`).
//!
//! ```text
//! recorder_bench [--records N] [--threads N] [--capacity N]
//! ```
//!
//! The recorder rides EVERY request — admission, batch formation, cache
//! traffic, completion — so its per-record cost is a direct tax on serve
//! throughput. This bench measures `record()` in the two regimes that
//! matter:
//!
//! - **single writer**: the uncontended fast path (one fetch_add, one CAS,
//!   a fixed-size copy, one release store),
//! - **N concurrent writers** on one shared ring: the worst case, where
//!   writers race for slots and collisions resolve by dropping (never
//!   blocking), plus a concurrent reader taking continuous non-destructive
//!   snapshots to price the seqlock validation traffic.
//!
//! Reports ns/record for each regime and the drop rate under contention.
//! Every line is machine-greppable (`key value` pairs) so CI and
//! EXPERIMENTS.md can quote it directly.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use granii_serve::{FlightRecorder, RecordKind, RecorderConfig};

const USAGE: &str = "usage: recorder_bench [--records N] [--threads N] [--capacity N]";

fn parse_count(args: &[String], i: usize, flag: &str) -> usize {
    match args.get(i).and_then(|s| s.parse().ok()) {
        Some(n) if n > 0 => n,
        _ => {
            eprintln!("{flag} needs a positive integer");
            std::process::exit(2);
        }
    }
}

/// The record a cache hit writes — representative of the steady-state mix.
fn payload(i: u64) -> RecordKind {
    RecordKind::Complete {
        outcome: "hit",
        latency_us: i,
        batch: 1,
        degraded: false,
    }
}

fn single_writer(records: u64, capacity: usize) -> f64 {
    let recorder = FlightRecorder::new(RecorderConfig { capacity });
    let start = Instant::now();
    for i in 0..records {
        recorder.record(i, i.wrapping_mul(0x9e37_79b9), "gcn", payload(i));
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    assert_eq!(recorder.written(), records);
    elapsed / records as f64
}

fn contended(records_per_thread: u64, threads: usize, capacity: usize) -> (f64, f64, usize) {
    let recorder = Arc::new(FlightRecorder::new(RecorderConfig { capacity }));
    let stop = Arc::new(AtomicBool::new(false));
    // A continuous snapshotter prices the reader side of the seqlock while
    // writers publish: its validation loads are the traffic record() must
    // absorb without blocking.
    let reader = {
        let recorder = recorder.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut snapshots = 0usize;
            while !stop.load(Ordering::Relaxed) {
                std::hint::black_box(recorder.snapshot());
                snapshots += 1;
            }
            snapshots
        })
    };
    let start = Instant::now();
    let writers: Vec<_> = (0..threads)
        .map(|t| {
            let recorder = recorder.clone();
            std::thread::spawn(move || {
                for i in 0..records_per_thread {
                    let probe = (t as u64) << 40 | i;
                    recorder.record(
                        probe,
                        probe.wrapping_mul(0x9e37_79b9),
                        "gcn",
                        payload(probe),
                    );
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    stop.store(true, Ordering::Relaxed);
    let snapshots = reader.join().unwrap();
    let total = records_per_thread * threads as u64;
    assert_eq!(recorder.written(), total);
    let drop_rate = recorder.dropped() as f64 / total as f64;
    (elapsed / total as f64, drop_rate, snapshots)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut records = 2_000_000u64;
    let mut threads = 8usize;
    let mut capacity = RecorderConfig::default().capacity;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--records" => {
                i += 1;
                records = parse_count(&args, i, "--records") as u64;
            }
            "--threads" => {
                i += 1;
                threads = parse_count(&args, i, "--threads");
            }
            "--capacity" => {
                i += 1;
                capacity = parse_count(&args, i, "--capacity");
            }
            other => {
                eprintln!("unexpected argument {other}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // Warm-up pass so the ring's pages are faulted in before timing.
    let _ = single_writer(records.min(100_000), capacity);

    let single_ns = single_writer(records, capacity);
    let (contended_ns, drop_rate, snapshots) =
        contended(records / threads as u64, threads, capacity);

    println!("recorder_bench: capacity {capacity}, {records} records");
    println!("  single_writer_ns_per_record {single_ns:.1}");
    println!(
        "  contended_ns_per_record {contended_ns:.1} threads {threads} \
         drop_rate {drop_rate:.4} reader_snapshots {snapshots}"
    );
}
