//! Diffs two `bench_snapshot` outputs and fails on steady-state regressions.
//!
//! ```text
//! bench_compare <baseline.json> <current.json> [--threshold PCT]
//! ```
//!
//! Exits 1 when any grid cell's steady-state ns/iter grew by more than the
//! threshold (default 25% — host timings are noisy; CI runs this as a
//! non-blocking job).

use granii_bench::snapshot::{self, BenchSnapshot};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 25.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                threshold = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(t) if t > 0.0 => t,
                    _ => {
                        eprintln!("--threshold needs a positive percentage");
                        std::process::exit(2);
                    }
                };
            }
            other => paths.push(other.to_string()),
        }
        i += 1;
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        eprintln!("usage: bench_compare <baseline.json> <current.json> [--threshold PCT]");
        std::process::exit(2);
    };

    let load = |path: &str| -> BenchSnapshot {
        let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        BenchSnapshot::from_json(&json).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = load(baseline_path);
    let current = load(current_path);
    println!(
        "baseline: {} @ {} on {} | current: {} @ {} on {}",
        baseline_path, baseline.git_sha, baseline.host, current_path, current.git_sha, current.host
    );

    let cmp = snapshot::compare(&baseline, &current, threshold);
    print!("{}", cmp.render());
    println!("{}", cmp.summary_line());
    if cmp.is_regression() {
        std::process::exit(1);
    }
}
