//! Closed-loop load test of the serving runtime (`granii-serve`).
//!
//! ```text
//! serve_bench [--clients N] [--requests N] [--workers N] [--queue-depth N]
//!             [--cache N] [--device cpu|a100|h100]
//! ```
//!
//! Trains a fast cost-model set offline, starts one shared [`Server`], and
//! hammers it with `--clients` closed-loop clients, each issuing
//! `--requests` requests round-robin over a 12-signature mixed workload
//! (3 models x 2 datasets x 2 embedding pairs). Reports sustained
//! throughput, p50/p95/p99/max end-to-end latency (exact, from the client
//! samples), the deep tail (p99/p999) from the server's per-outcome latency
//! sketches merged into one distribution, and the server's cache / shed /
//! degradation counters.
//!
//! [`Server`]: granii_serve::Server

use std::sync::Arc;

use granii_bench::serve_load::{self, LoadConfig};
use granii_core::{Granii, GraniiOptions};
use granii_gnn::spec::ModelKind;
use granii_graph::datasets::{Dataset, Scale};
use granii_matrix::device::DeviceKind;
use granii_serve::ServeRequest;

const USAGE: &str = "usage: serve_bench [--clients N] [--requests N] [--workers N] \
                     [--queue-depth N] [--cache N] [--device cpu|a100|h100]";

fn parse_count(args: &[String], i: usize, flag: &str) -> usize {
    match args.get(i).and_then(|s| s.parse().ok()) {
        Some(n) if n > 0 => n,
        _ => {
            eprintln!("{flag} needs a positive integer");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = LoadConfig::default();
    let mut device = DeviceKind::H100;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--clients" => {
                i += 1;
                cfg.clients = parse_count(&args, i, "--clients");
            }
            "--requests" => {
                i += 1;
                cfg.requests_per_client = parse_count(&args, i, "--requests");
            }
            "--workers" => {
                i += 1;
                cfg.serve.workers = parse_count(&args, i, "--workers");
            }
            "--queue-depth" => {
                i += 1;
                cfg.serve.queue_depth = parse_count(&args, i, "--queue-depth");
            }
            "--cache" => {
                i += 1;
                cfg.serve.cache_capacity = parse_count(&args, i, "--cache");
            }
            "--device" => {
                i += 1;
                device = match args.get(i).map(String::as_str) {
                    Some("cpu") => DeviceKind::Cpu,
                    Some("a100") => DeviceKind::A100,
                    Some("h100") => DeviceKind::H100,
                    other => {
                        eprintln!("unknown device {other:?} (expected cpu|a100|h100)");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("unexpected argument {other}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!("[offline] training cost models for {device}...");
    let granii = Arc::new(
        Granii::train_for_device(device, GraniiOptions::fast()).expect("cost-model training"),
    );

    // A mixed 12-signature workload: every (model, dataset, embed) pair the
    // cache must distinguish.
    let models = [ModelKind::Gcn, ModelKind::Gin, ModelKind::Sgc];
    let datasets = [Dataset::CoAuthorsCiteseer, Dataset::Mycielskian17];
    let embeds = [(64usize, 128usize), (128, 64)];
    let mut workload = Vec::new();
    for dataset in datasets {
        let graph = Arc::new(dataset.load(Scale::Tiny).expect("tiny dataset"));
        for model in models {
            for (k1, k2) in embeds {
                workload.push(ServeRequest::new(model, graph.clone(), k1, k2));
            }
        }
    }

    eprintln!(
        "[load] {} clients x {} requests over {} signatures ({} workers, queue depth {}, cache {})...",
        cfg.clients,
        cfg.requests_per_client,
        workload.len(),
        cfg.serve.workers,
        cfg.serve.queue_depth,
        cfg.serve.cache_capacity
    );
    let report = serve_load::run_load(granii, &workload, &cfg);

    let total = cfg.clients * cfg.requests_per_client;
    println!(
        "serve_bench: {} requests in {:.2}s on {device}",
        total, report.wall_seconds
    );
    println!("  throughput      {:>10.1} req/s", report.throughput_rps);
    println!(
        "  latency (ms)    p50 {:.3}  p95 {:.3}  p99 {:.3}  max {:.3}  mean {:.3}",
        report.latency.p50_ms,
        report.latency.p95_ms,
        report.latency.p99_ms,
        report.latency.max_ms,
        report.latency.mean_ms
    );
    // The client-side sample above is exact but shallow: at a few hundred
    // requests its "p99" is one observation. The server's sketches see
    // every request at bounded relative error — merge the per-outcome
    // distributions for the whole-server deep tail.
    if let Some(merged) = serve_load::merged_latency_sketch(&report.latency_sketches) {
        println!(
            "  sketch (ms)     p50 {:.3}  p95 {:.3}  p99 {:.3}  p999 {:.3}  (α={:.0}%, merged over outcomes)",
            merged.p50_ns() / 1e6,
            merged.p95_ns() / 1e6,
            merged.p99_ns() / 1e6,
            merged.p999_ns() / 1e6,
            merged.alpha * 100.0
        );
        for snap in &report.latency_sketches {
            if snap.count == 0 {
                continue;
            }
            let outcome = snap.name.rsplit('.').next().unwrap_or(&snap.name);
            println!(
                "    {outcome:<10}    {:>6} reqs  p50 {:.3}  p99 {:.3}  p999 {:.3}",
                snap.count,
                snap.p50_ns() / 1e6,
                snap.p99_ns() / 1e6,
                snap.p999_ns() / 1e6
            );
        }
    }
    println!(
        "  outcomes        completed {}  shed {}  failed {}  degraded {}",
        report.completed, report.shed, report.failed, report.degraded
    );
    println!(
        "  cache           hits {}  misses {}  evictions {}  hit rate {:.1}%",
        report.stats.cache_hits,
        report.stats.cache_misses,
        report.stats.cache_evictions,
        report.stats.cache_hit_rate * 100.0
    );
    if report.failed > 0 {
        eprintln!("serve_bench: FAILED — {} requests errored", report.failed);
        std::process::exit(1);
    }
}
