//! Load test of the serving runtime (`granii-serve`).
//!
//! ```text
//! serve_bench [--clients N] [--requests N] [--workers N] [--queue-depth N]
//!             [--cache N] [--max-batch N] [--fairness-share F]
//!             [--device cpu|a100|h100]
//!             [--open-loop] [--rps F] [--duration-secs F] [--skew F]
//!             [--same-signature] [--seed N]
//! ```
//!
//! Trains a fast cost-model set offline, starts one shared [`Server`], and
//! drives it under one of two load models:
//!
//! - **Closed loop** (default): `--clients` clients issue `--requests`
//!   requests back-to-back, round-robin over a 12-signature mixed workload
//!   (3 models x 2 datasets x 2 embedding pairs). Offered load adapts to
//!   service rate — sustainable-throughput numbers.
//! - **Open loop** (`--open-loop`): Poisson arrivals at `--rps` for
//!   `--duration-secs`, zipf-skewed over the signatures by `--skew` — the
//!   regime that exercises continuous batching. `--same-signature` collapses
//!   the workload to one signature (the pure signature-coalescing ceiling).
//!
//! Reports sustained throughput, p50/p95/p99/max end-to-end latency (exact,
//! from the client samples), the deep tail (p99/p999) from the server's
//! per-outcome latency sketches merged into one distribution, the server's
//! cache / shed / degradation counters, and (open loop) the batch-size
//! distribution plus the per-tenant metering table (who consumed what under
//! the skewed tenant mix, ranked by charged engine time).
//!
//! [`Server`]: granii_serve::Server

use std::sync::Arc;

use granii_bench::serve_load::{self, LoadConfig, OpenLoopConfig};
use granii_core::{Granii, GraniiOptions};
use granii_gnn::spec::ModelKind;
use granii_graph::datasets::{Dataset, Scale};
use granii_matrix::device::DeviceKind;
use granii_serve::{ServeConfig, ServeRequest, ServeStats};

const USAGE: &str = "usage: serve_bench [--clients N] [--requests N] [--workers N] \
                     [--queue-depth N] [--cache N] [--max-batch N] [--fairness-share F] \
                     [--device cpu|a100|h100] \
                     [--open-loop] [--rps F] [--duration-secs F] [--skew F] \
                     [--same-signature] [--seed N]";

fn parse_count(args: &[String], i: usize, flag: &str) -> usize {
    match args.get(i).and_then(|s| s.parse().ok()) {
        Some(n) if n > 0 => n,
        _ => {
            eprintln!("{flag} needs a positive integer");
            std::process::exit(2);
        }
    }
}

fn parse_f64(args: &[String], i: usize, flag: &str) -> f64 {
    match args.get(i).and_then(|s| s.parse::<f64>().ok()) {
        Some(v) if v.is_finite() && v >= 0.0 => v,
        _ => {
            eprintln!("{flag} needs a non-negative number");
            std::process::exit(2);
        }
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut serve = ServeConfig::default();
    let mut clients = 8usize;
    let mut requests_per_client = 50usize;
    let mut device = DeviceKind::H100;
    let mut open_loop = false;
    let mut rps = 800.0f64;
    let mut duration_secs = 4.0f64;
    let mut skew = 1.0f64;
    let mut same_signature = false;
    let mut seed = 7u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--clients" => {
                i += 1;
                clients = parse_count(&args, i, "--clients");
            }
            "--requests" => {
                i += 1;
                requests_per_client = parse_count(&args, i, "--requests");
            }
            "--workers" => {
                i += 1;
                serve.workers = parse_count(&args, i, "--workers");
            }
            "--queue-depth" => {
                i += 1;
                serve.queue_depth = parse_count(&args, i, "--queue-depth");
            }
            "--cache" => {
                i += 1;
                serve.cache_capacity = parse_count(&args, i, "--cache");
            }
            "--max-batch" => {
                i += 1;
                serve.max_batch = parse_count(&args, i, "--max-batch");
            }
            "--fairness-share" => {
                i += 1;
                serve.fairness_share = parse_f64(&args, i, "--fairness-share");
            }
            "--open-loop" => open_loop = true,
            "--rps" => {
                i += 1;
                rps = parse_f64(&args, i, "--rps");
            }
            "--duration-secs" => {
                i += 1;
                duration_secs = parse_f64(&args, i, "--duration-secs");
            }
            "--skew" => {
                i += 1;
                skew = parse_f64(&args, i, "--skew");
            }
            "--same-signature" => same_signature = true,
            "--seed" => {
                i += 1;
                seed = parse_count(&args, i, "--seed") as u64;
            }
            "--device" => {
                i += 1;
                device = match args.get(i).map(String::as_str) {
                    Some("cpu") => DeviceKind::Cpu,
                    Some("a100") => DeviceKind::A100,
                    Some("h100") => DeviceKind::H100,
                    other => {
                        eprintln!("unknown device {other:?} (expected cpu|a100|h100)");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("unexpected argument {other}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!("[offline] training cost models for {device}...");
    let granii = Arc::new(
        Granii::train_for_device(device, GraniiOptions::fast()).expect("cost-model training"),
    );

    // A mixed 12-signature workload: every (model, dataset, embed) pair the
    // cache must distinguish. `--same-signature` keeps just the first — the
    // pure signature-coalescing regime.
    let models = [ModelKind::Gcn, ModelKind::Gin, ModelKind::Sgc];
    let datasets = [Dataset::CoAuthorsCiteseer, Dataset::Mycielskian17];
    let embeds = [(64usize, 128usize), (128, 64)];
    let mut workload = Vec::new();
    for dataset in datasets {
        let graph = Arc::new(dataset.load(Scale::Tiny).expect("tiny dataset"));
        for model in models {
            for (k1, k2) in embeds {
                workload.push(ServeRequest::new(model, graph.clone(), k1, k2));
            }
        }
    }
    if same_signature {
        workload.truncate(1);
        // One tenant on purpose: the fairness bound must not throttle it.
        serve.fairness_share = 1.0;
    }

    if open_loop {
        let cfg = OpenLoopConfig {
            rps,
            duration_secs,
            skew,
            seed,
            serve,
            ..OpenLoopConfig::default()
        };
        eprintln!(
            "[load] open loop: {rps} req/s offered for {duration_secs}s over {} signatures \
             (skew {skew}, {} workers, queue depth {}, max batch {})...",
            workload.len(),
            cfg.serve.workers,
            cfg.serve.queue_depth,
            cfg.serve.max_batch
        );
        let report = serve_load::run_open_loop(granii, &workload, &cfg);
        println!(
            "serve_bench: open loop, {} offered ({:.1} req/s realized) in {:.2}s on {device}",
            report.offered, report.offered_rps, report.wall_seconds
        );
        println!("  throughput      {:>10.1} req/s", report.throughput_rps);
        println!(
            "  latency (ms)    p50 {:.3}  p95 {:.3}  p99 {:.3}  max {:.3}  mean {:.3}",
            report.latency.p50_ms,
            report.latency.p95_ms,
            report.latency.p99_ms,
            report.latency.max_ms,
            report.latency.mean_ms
        );
        println!(
            "  batch           groups {}  batches {}  batched reqs {}  size mean {:.2} p50 {:.0} p95 {:.0}",
            report.batch.count,
            report.stats.batches,
            report.stats.batched_requests,
            report.batch.mean_ns(),
            report.batch.p50_ns(),
            report.batch.p95_ns()
        );
        println!(
            "  outcomes        completed {}  shed {} (tenant {})  failed {}  degraded {}",
            report.completed, report.shed, report.stats.tenant_shed, report.failed, report.degraded
        );
        print_sketches(&report.latency_sketches);
        print_cache(&report.stats);
        print_metering(&report.status.metering);
        if report.failed > 0 {
            eprintln!("serve_bench: FAILED — {} requests errored", report.failed);
            std::process::exit(1);
        }
        return;
    }

    let cfg = LoadConfig {
        clients,
        requests_per_client,
        serve,
    };
    eprintln!(
        "[load] {} clients x {} requests over {} signatures ({} workers, queue depth {}, cache {})...",
        cfg.clients,
        cfg.requests_per_client,
        workload.len(),
        cfg.serve.workers,
        cfg.serve.queue_depth,
        cfg.serve.cache_capacity
    );
    let report = serve_load::run_load(granii, &workload, &cfg);

    let total = cfg.clients * cfg.requests_per_client;
    println!(
        "serve_bench: {} requests in {:.2}s on {device}",
        total, report.wall_seconds
    );
    println!("  throughput      {:>10.1} req/s", report.throughput_rps);
    println!(
        "  latency (ms)    p50 {:.3}  p95 {:.3}  p99 {:.3}  max {:.3}  mean {:.3}",
        report.latency.p50_ms,
        report.latency.p95_ms,
        report.latency.p99_ms,
        report.latency.max_ms,
        report.latency.mean_ms
    );
    print_sketches(&report.latency_sketches);
    println!(
        "  outcomes        completed {}  shed {}  failed {}  degraded {}",
        report.completed, report.shed, report.failed, report.degraded
    );
    print_cache(&report.stats);
    if report.failed > 0 {
        eprintln!("serve_bench: FAILED — {} requests errored", report.failed);
        std::process::exit(1);
    }
}

/// The client-side sample is exact but shallow: at a few hundred requests
/// its "p99" is one observation. The server's sketches see every request at
/// bounded relative error — merge the per-outcome distributions for the
/// whole-server deep tail.
fn print_sketches(sketches: &[granii_telemetry::SketchSnapshot]) {
    if let Some(merged) = serve_load::merged_latency_sketch(sketches) {
        println!(
            "  sketch (ms)     p50 {:.3}  p95 {:.3}  p99 {:.3}  p999 {:.3}  (α={:.0}%, merged over outcomes)",
            merged.p50_ns() / 1e6,
            merged.p95_ns() / 1e6,
            merged.p99_ns() / 1e6,
            merged.p999_ns() / 1e6,
            merged.alpha * 100.0
        );
        for snap in sketches {
            if snap.count == 0 {
                continue;
            }
            let outcome = snap.name.rsplit('.').next().unwrap_or(&snap.name);
            println!(
                "    {outcome:<10}    {:>6} reqs  p50 {:.3}  p99 {:.3}  p999 {:.3}",
                snap.count,
                snap.p50_ns() / 1e6,
                snap.p99_ns() / 1e6,
                snap.p999_ns() / 1e6
            );
        }
    }
}

fn print_cache(stats: &ServeStats) {
    println!(
        "  cache           hits {}  misses {}  evictions {}  hit rate {:.1}%",
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.cache_hit_rate * 100.0
    );
}

/// The per-tenant metering ledger under the zipf-skewed open-loop mix: who
/// actually consumed the engine, ranked by charged time.
fn print_metering(metering: &granii_serve::MeteringStatus) {
    println!(
        "  metering        {} requests  charged {:.2} ms  sheds {}  slo violations {}",
        metering.total_requests,
        metering.total_charged_ms,
        metering.total_sheds,
        metering.total_slo_violations
    );
    println!(
        "    {:<16} {:>7} {:>8} {:>12} {:>10} {:>6} {:>6} {:>6}",
        "tenant", "reqs", "batched", "charged-ms", "wait-ms", "share", "hit%", "shed"
    );
    for t in &metering.tenants {
        println!(
            "    {:<16} {:>7} {:>8} {:>12.3} {:>10.3} {:>6.2} {:>6.1} {:>6}",
            t.fingerprint,
            t.requests,
            t.batched_requests,
            t.charged_ms,
            t.mean_queue_wait_ms,
            t.mean_batch_share,
            t.hit_rate * 100.0,
            t.sheds
        );
    }
}
