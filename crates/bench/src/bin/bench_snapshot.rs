//! Takes a steady-state performance snapshot of the fixed bench grid.
//!
//! ```text
//! bench_snapshot [--out FILE] [--iterations N] [--device cpu|a100|h100]
//! ```
//!
//! Writes `BENCH_<host>.json` (or `--out`) with per-cell steady-state
//! ns/iter, selection regret, allocation counters, the git SHA, and the host
//! name. Diff two snapshots with `bench_compare`.

use granii_bench::snapshot;
use granii_core::{Granii, GraniiOptions};
use granii_matrix::device::DeviceKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut iterations = 100usize;
    let mut device = DeviceKind::H100;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args.get(i).cloned();
                if out.is_none() {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }
            }
            "--iterations" => {
                i += 1;
                iterations = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0 => n,
                    _ => {
                        eprintln!("--iterations needs a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--device" => {
                i += 1;
                device = match args.get(i).map(String::as_str) {
                    Some("cpu") => DeviceKind::Cpu,
                    Some("a100") => DeviceKind::A100,
                    Some("h100") => DeviceKind::H100,
                    other => {
                        eprintln!("unknown device {other:?} (expected cpu|a100|h100)");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("unexpected argument {other}");
                eprintln!(
                    "usage: bench_snapshot [--out FILE] [--iterations N] [--device cpu|a100|h100]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let out = out.unwrap_or_else(|| format!("BENCH_{}.json", snapshot::host_name()));

    // Allocation counters come from the telemetry layer; keep it on for the
    // whole run so steady-state allocations are observable.
    granii_telemetry::enable();
    eprintln!("[offline] training cost models for {device}...");
    let granii = std::sync::Arc::new(
        Granii::train_for_device(device, GraniiOptions::fast()).expect("cost-model training"),
    );
    eprintln!(
        "[snapshot] measuring {} cells x {iterations} iterations...",
        snapshot::MODELS.len() * snapshot::DATASETS.len() * snapshot::EMBEDS.len()
    );
    let mut snap = snapshot::collect(&granii, iterations).expect("snapshot collection");
    eprintln!("[snapshot] measuring the serving-path cell...");
    snapshot::append_serving_cell(&mut snap, granii.clone(), 32).expect("serving cell");

    println!(
        "{:<40} {:>14} {:>9} {:>7}",
        "cell", "steady ns/it", "regret", "allocs"
    );
    for e in &snap.entries {
        println!(
            "{:<40} {:>14.0} {:>8.1}% {:>7}",
            e.key(),
            e.steady_ns_per_iter,
            e.relative_regret * 100.0,
            e.steady_allocations
        );
    }
    let json = snap.to_json().expect("serialize snapshot");
    std::fs::write(&out, json).expect("write snapshot");
    println!(
        "bench_snapshot: {} cells @ {} on {} ({}) -> {out}",
        snap.entries.len(),
        snap.git_sha,
        snap.host,
        snap.device
    );
}
