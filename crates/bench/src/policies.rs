//! Selection policies and oracles (paper Fig 1 and Table VI).
//!
//! Each oracle fixes its composition decision using only one factor: the
//! model configuration (`Config.`), the hardware (`HW`), the input graph
//! (`Graph`), or the baseline system (`Sys.`) — "the *Graph* oracle selects
//! *recompute* as the best for GAT on a given graph if *recompute* is
//! beneficial for a majority of the evaluated settings" (§VI-G). `Static`
//! fixes one composition per model globally; `Granii` uses the recorded
//! online decisions; `Optimal` takes the per-record best.

use std::collections::BTreeMap;

use granii_gnn::spec::Composition;
use serde::{Deserialize, Serialize};

use crate::grid::Record;
use crate::report::geomean;

/// A composition-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// One composition per model, fixed across all settings.
    Static,
    /// Per (model, embedding sizes) — the strategy of ref.\[17\].
    Config,
    /// Per (model, device).
    Hw,
    /// Per (model, graph).
    Graph,
    /// Per (model, system).
    Sys,
    /// GRANII's cost-model decision (includes its selection overhead).
    Granii,
    /// The per-record best composition.
    Optimal,
}

impl Policy {
    /// The Table VI column order.
    pub const TABLE6: [Policy; 6] = [
        Policy::Optimal,
        Policy::Granii,
        Policy::Config,
        Policy::Hw,
        Policy::Graph,
        Policy::Sys,
    ];

    /// Display name as in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Static => "Static",
            Policy::Config => "Config.",
            Policy::Hw => "HW",
            Policy::Graph => "Graph",
            Policy::Sys => "Sys.",
            Policy::Granii => "GRANII",
            Policy::Optimal => "Optimal",
        }
    }
}

/// The grouping key an oracle conditions its decision on.
fn group_key(policy: Policy, r: &Record) -> String {
    let m = r.config.model;
    match policy {
        Policy::Static => format!("{m}"),
        Policy::Config => format!("{m}/{}x{}", r.config.k1, r.config.k2),
        Policy::Hw => format!("{m}/{}", r.config.device),
        Policy::Graph => format!("{m}/{}", r.config.dataset),
        Policy::Sys => format!("{m}/{}", r.config.system),
        Policy::Granii | Policy::Optimal => unreachable!("not oracle policies"),
    }
}

/// The composition each group's oracle picks: the one that is fastest in the
/// majority of the group's records (ties broken by lower total time).
fn oracle_choices(policy: Policy, records: &[Record]) -> BTreeMap<String, Composition> {
    let mut wins: BTreeMap<String, BTreeMap<String, (Composition, usize, f64)>> = BTreeMap::new();
    for r in records {
        let key = group_key(policy, r);
        let best = r.composition_seconds.first().expect("nonempty");
        let group = wins.entry(key).or_default();
        for (comp, secs) in &r.composition_seconds {
            let e = group.entry(comp.name()).or_insert((*comp, 0, 0.0));
            if comp == &best.0 {
                e.1 += 1;
            }
            e.2 += secs;
        }
    }
    wins.into_iter()
        .map(|(key, comps)| {
            let (_, &(comp, _, _)) = comps
                .iter()
                .max_by(|(_, a), (_, b)| a.1.cmp(&b.1).then(b.2.partial_cmp(&a.2).expect("finite")))
                .expect("nonempty group");
            (key, comp)
        })
        .collect()
}

/// Per-record speedups over the baseline under a policy.
pub fn speedups(policy: Policy, records: &[Record]) -> Vec<f64> {
    match policy {
        Policy::Granii => records.iter().map(Record::speedup).collect(),
        Policy::Optimal => records.iter().map(Record::optimal_speedup).collect(),
        _ => {
            let choices = oracle_choices(policy, records);
            records
                .iter()
                .map(|r| {
                    let comp = choices[&group_key(policy, r)];
                    let secs = r
                        .seconds_of(comp)
                        .expect("oracle only picks compositions of the model");
                    r.baseline_seconds / secs
                })
                .collect()
        }
    }
}

/// Geometric-mean speedup under a policy.
pub fn geomean_speedup(policy: Policy, records: &[Record]) -> f64 {
    geomean(&speedups(policy, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{EvalConfig, Mode};
    use granii_gnn::spec::{GatStrategy, ModelKind};
    use granii_gnn::system::System;
    use granii_graph::datasets::Dataset;
    use granii_matrix::device::DeviceKind;

    fn record(dataset: Dataset, fast: Composition, slow: Composition) -> Record {
        Record {
            config: EvalConfig {
                system: System::Dgl,
                device: DeviceKind::H100,
                model: fast.model(),
                dataset,
                k1: 32,
                k2: 256,
                mode: Mode::Inference,
            },
            baseline_composition: slow,
            baseline_seconds: 2.0,
            composition_seconds: vec![(fast, 1.0), (slow, 2.0)],
            granii_composition: fast,
            granii_seconds: 1.0,
            overhead_seconds: 0.0,
            used_cost_models: true,
        }
    }

    #[test]
    fn optimal_and_granii_agree_when_granii_is_right() {
        let reuse = Composition::Gat(GatStrategy::Reuse);
        let recompute = Composition::Gat(GatStrategy::Recompute);
        let records = vec![
            record(Dataset::Reddit, reuse, recompute),
            record(Dataset::BelgiumOsm, recompute, reuse),
        ];
        assert_eq!(geomean_speedup(Policy::Optimal, &records), 2.0);
        assert_eq!(geomean_speedup(Policy::Granii, &records), 2.0);
        // The graph oracle can match here (one record per graph).
        assert_eq!(geomean_speedup(Policy::Graph, &records), 2.0);
        // A static policy must pick one composition and lose on one record:
        // geomean(2.0, 1.0) = sqrt(2).
        let s = geomean_speedup(Policy::Static, &records);
        assert!((s - 2.0f64.sqrt()).abs() < 1e-9, "{s}");
    }

    #[test]
    fn oracle_majority_wins() {
        let reuse = Composition::Gat(GatStrategy::Reuse);
        let recompute = Composition::Gat(GatStrategy::Recompute);
        // Two records favor reuse, one favors recompute; static picks reuse.
        let records = vec![
            record(Dataset::Reddit, reuse, recompute),
            record(Dataset::ComAmazon, reuse, recompute),
            record(Dataset::BelgiumOsm, recompute, reuse),
        ];
        let static_speedups = speedups(Policy::Static, &records);
        assert_eq!(static_speedups, vec![2.0, 2.0, 1.0]);
        let _ = ModelKind::Gat; // silence unused import in some cfgs
    }
}
