//! Baseline/regression harness: steady-state performance snapshots and
//! snapshot diffing (ISSUE 3's `bench_snapshot` / `bench_compare` pair).
//!
//! A [`BenchSnapshot`] captures, for a fixed (model × graph × embedding-size)
//! grid, the host-measured steady-state ns/iter of the GRANII-selected
//! composition through the compile-once engine, the selection's regret
//! against the measured oracle (via [`granii_core::audit::verify`]), and the
//! steady-state allocation counters — stamped with the git SHA and host name
//! so regressions can be traced to a commit and a machine.
//!
//! [`compare`] diffs two snapshots cell by cell and flags any cell whose
//! steady-state ns/iter regressed by more than a threshold. Host timings are
//! noisy — CI treats the comparison as a *soft* gate (a non-blocking job),
//! while the committed `BENCH_baseline.json` documents the expected shape.

use granii_core::runtime::run_steady_state;
use granii_core::{CoreError, Granii};
use granii_gnn::spec::{LayerConfig, ModelKind};
use granii_gnn::Exec;
use granii_graph::datasets::{Dataset, Scale};
use granii_matrix::device::Engine;
use granii_matrix::DenseMatrix;
use serde::{Deserialize, Serialize};

/// The fixed snapshot grid: small enough for CI, wide enough to cover dense
/// and sparse graphs and both GNN families the selector distinguishes.
pub const MODELS: [ModelKind; 3] = [ModelKind::Gcn, ModelKind::Gin, ModelKind::Gat];
/// Datasets of the grid (Tiny stand-ins; see [`MODELS`]).
pub const DATASETS: [Dataset; 3] = [Dataset::Reddit, Dataset::Mycielskian17, Dataset::BelgiumOsm];
/// Embedding-size pairs of the grid.
pub const EMBEDS: [(usize, usize); 2] = [(32, 32), (256, 64)];

/// Deterministic seed for the feature matrices each cell binds.
const SEED: u64 = 23;

/// One grid cell's measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotEntry {
    /// GNN model name.
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// Input embedding width.
    pub k1: usize,
    /// Output embedding width.
    pub k2: usize,
    /// The composition GRANII selected for the cell.
    pub composition: String,
    /// Host-measured steady-state nanoseconds per iteration of the selected
    /// composition through the compile-once engine.
    pub steady_ns_per_iter: f64,
    /// One-time build + bind + warm-up cost, nanoseconds.
    pub setup_ns: f64,
    /// Selection regret vs. the measured oracle (seconds per amortized
    /// iteration on the modeled device; 0 = the selector picked the best).
    pub regret_seconds: f64,
    /// Regret as a fraction of the oracle latency.
    pub relative_regret: f64,
    /// Heap allocations observed across the steady-state iterations (the
    /// compile-once contract keeps this at 0).
    pub steady_allocations: u64,
}

impl SnapshotEntry {
    /// Stable identity of the cell across snapshots.
    pub fn key(&self) -> String {
        format!("{}/{}/{}x{}", self.model, self.dataset, self.k1, self.k2)
    }
}

/// A full performance snapshot: the grid plus provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSnapshot {
    /// Commit the snapshot was taken at (`unknown` outside a git checkout).
    pub git_sha: String,
    /// Host the snapshot was taken on.
    pub host: String,
    /// Device model the cells ran against.
    pub device: String,
    /// Iteration count per cell.
    pub iterations: usize,
    /// One entry per grid cell.
    pub entries: Vec<SnapshotEntry>,
}

impl BenchSnapshot {
    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Serde`] on serialization failure.
    pub fn to_json(&self) -> Result<String, CoreError> {
        serde_json::to_string(self).map_err(|e| CoreError::Serde(e.to_string()))
    }

    /// Parses a snapshot from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Serde`] on parse failure.
    pub fn from_json(json: &str) -> Result<Self, CoreError> {
        serde_json::from_str(json).map_err(|e| CoreError::Serde(e.to_string()))
    }
}

/// Host name: `$HOSTNAME`, then `/etc/hostname`, then `unknown`.
pub fn host_name() -> String {
    if let Ok(h) = std::env::var("HOSTNAME") {
        if !h.trim().is_empty() {
            return h.trim().to_string();
        }
    }
    if let Ok(h) = std::fs::read_to_string("/etc/hostname") {
        if !h.trim().is_empty() {
            return h.trim().to_string();
        }
    }
    "unknown".to_string()
}

/// Current commit SHA (short), or `unknown` outside a git checkout.
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Measures the full snapshot grid. `granii` must be trained for the device
/// the snapshot should represent. Telemetry should be enabled by the caller
/// if allocation counters are wanted (they read the telemetry counters and
/// report 0 otherwise).
///
/// # Errors
///
/// Propagates selection, verification, and kernel errors.
pub fn collect(granii: &Granii, iterations: usize) -> Result<BenchSnapshot, CoreError> {
    let mut entries = Vec::new();
    for model in MODELS {
        for dataset in DATASETS {
            let graph = dataset.load(Scale::Tiny)?;
            for (k1, k2) in EMBEDS {
                let cfg = LayerConfig::new(k1, k2);
                let report = granii.verify(model, &graph, cfg, iterations)?;
                let plan = granii.compiled(model, cfg)?;
                let ctx = granii_gnn::GraphCtx::new(&graph)?;
                let h = DenseMatrix::random(ctx.num_nodes(), k1, 1.0, SEED);
                let inputs =
                    granii_core::execplan::PlanInputs::for_model(model, cfg, &ctx, h, SEED);
                let engine = Engine::modeled(granii.device());
                let exec = Exec::real(&engine);
                let steady = run_steady_state(&exec, &plan, report.chosen, &inputs, iterations)?;
                entries.push(SnapshotEntry {
                    model: model.name().to_string(),
                    dataset: dataset.to_string(),
                    k1,
                    k2,
                    composition: report.chosen.to_string(),
                    steady_ns_per_iter: steady.seconds_per_iteration() * 1e9,
                    setup_ns: steady.setup_seconds() * 1e9,
                    regret_seconds: report.regret_seconds(),
                    relative_regret: report.relative_regret(),
                    steady_allocations: steady.steady_allocations,
                });
            }
        }
    }
    Ok(BenchSnapshot {
        git_sha: git_sha(),
        host: host_name(),
        device: granii.device().to_string(),
        iterations,
        entries,
    })
}

/// Dataset of the serving-path snapshot cell.
pub const SERVE_DATASET: Dataset = Dataset::Mycielskian17;
/// Embedding pair of the serving-path snapshot cell.
pub const SERVE_EMBED: (usize, usize) = (32, 32);

/// Appends a serving-path cell (`serve/<dataset>/<k1>x<k2>`) to `snap`:
/// end-to-end request latency through the `granii-serve` runtime, with the
/// cache-cold first request recorded as `setup_ns` and the median cache-hot
/// request latency as `steady_ns_per_iter` (for this cell: ns per *request*,
/// a full selection-cached execution). The cell rides the same
/// `bench_compare` gate as the kernel grid; against an older baseline it
/// shows up as coverage growth (`added`), which the gate reports without
/// failing.
///
/// # Errors
///
/// Propagates dataset-loading and serving errors.
pub fn append_serving_cell(
    snap: &mut BenchSnapshot,
    granii: std::sync::Arc<Granii>,
    requests: usize,
) -> Result<(), granii_serve::ServeError> {
    use granii_serve::{ServeConfig, ServeRequest, Server};

    let (k1, k2) = SERVE_EMBED;
    let model = ModelKind::Gcn;
    let graph = std::sync::Arc::new(SERVE_DATASET.load(Scale::Tiny).map_err(CoreError::from)?);
    let server = Server::start(
        granii,
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let cold = server.process(ServeRequest::new(model, graph.clone(), k1, k2))?;
    let mut hot = Vec::with_capacity(requests.max(1));
    for _ in 0..requests.max(1) {
        let response = server.process(ServeRequest::new(model, graph.clone(), k1, k2))?;
        hot.push(response.timing.total_seconds);
    }
    server.shutdown();
    hot.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p50_seconds = crate::serve_load::percentile(&hot, 0.50);
    snap.entries.push(SnapshotEntry {
        model: "serve".to_string(),
        dataset: SERVE_DATASET.to_string(),
        k1,
        k2,
        composition: cold.composition.to_string(),
        steady_ns_per_iter: p50_seconds * 1e9,
        setup_ns: cold.timing.total_seconds * 1e9,
        regret_seconds: 0.0,
        relative_regret: 0.0,
        steady_allocations: 0,
    });
    Ok(())
}

/// One cell's baseline-vs-current delta.
#[derive(Debug, Clone, PartialEq)]
pub struct EntryDelta {
    /// Cell identity ([`SnapshotEntry::key`]).
    pub key: String,
    /// Baseline steady-state ns/iter.
    pub baseline_ns: f64,
    /// Current steady-state ns/iter.
    pub current_ns: f64,
    /// Relative change in percent (positive = slower).
    pub delta_pct: f64,
    /// Whether the cell exceeded the regression threshold.
    pub regression: bool,
}

/// The outcome of diffing two snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Regression threshold, percent.
    pub threshold_pct: f64,
    /// Per-cell deltas for cells present in both snapshots.
    pub deltas: Vec<EntryDelta>,
    /// Cells only in the baseline (coverage shrank).
    pub missing: Vec<String>,
    /// Cells only in the current snapshot (coverage grew).
    pub added: Vec<String>,
}

impl Comparison {
    /// Cells that regressed beyond the threshold.
    pub fn regressions(&self) -> Vec<&EntryDelta> {
        self.deltas.iter().filter(|d| d.regression).collect()
    }

    /// Whether any cell regressed beyond the threshold.
    pub fn is_regression(&self) -> bool {
        self.deltas.iter().any(|d| d.regression)
    }

    /// The worst (most positive) delta, if any cells matched.
    pub fn worst(&self) -> Option<&EntryDelta> {
        self.deltas
            .iter()
            .max_by(|a, b| a.delta_pct.partial_cmp(&b.delta_pct).expect("finite"))
    }

    /// One-line verdict for CI logs.
    pub fn summary_line(&self) -> String {
        let worst = self
            .worst()
            .map(|d| format!("worst {:+.1}% ({})", d.delta_pct, d.key))
            .unwrap_or_else(|| "no matching cells".to_string());
        if self.is_regression() {
            format!(
                "bench_compare: REGRESSION — {}/{} cells exceed +{:.0}%: {}",
                self.regressions().len(),
                self.deltas.len(),
                self.threshold_pct,
                worst
            )
        } else {
            format!(
                "bench_compare: OK — {} cells within +{:.0}%, {}",
                self.deltas.len(),
                self.threshold_pct,
                worst
            )
        }
    }

    /// Full per-cell table for human inspection.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<40} {:>14} {:>14} {:>9}\n",
            "cell", "baseline ns/it", "current ns/it", "delta"
        );
        for d in &self.deltas {
            let mark = if d.regression { "  << REGRESSION" } else { "" };
            out.push_str(&format!(
                "{:<40} {:>14.0} {:>14.0} {:>8.1}%{mark}\n",
                d.key, d.baseline_ns, d.current_ns, d.delta_pct
            ));
        }
        for key in &self.missing {
            out.push_str(&format!("{key:<40} (missing from current snapshot)\n"));
        }
        for key in &self.added {
            out.push_str(&format!("{key:<40} (new in current snapshot)\n"));
        }
        out
    }
}

/// Diffs `current` against `baseline`: a cell regresses when its
/// steady-state ns/iter grew by more than `threshold_pct` percent.
pub fn compare(
    baseline: &BenchSnapshot,
    current: &BenchSnapshot,
    threshold_pct: f64,
) -> Comparison {
    let mut deltas = Vec::new();
    let mut missing = Vec::new();
    for base in &baseline.entries {
        let key = base.key();
        match current.entries.iter().find(|e| e.key() == key) {
            Some(cur) => {
                let delta_pct = if base.steady_ns_per_iter > 0.0 {
                    (cur.steady_ns_per_iter / base.steady_ns_per_iter - 1.0) * 100.0
                } else {
                    0.0
                };
                deltas.push(EntryDelta {
                    key,
                    baseline_ns: base.steady_ns_per_iter,
                    current_ns: cur.steady_ns_per_iter,
                    delta_pct,
                    regression: delta_pct > threshold_pct,
                });
            }
            None => missing.push(key),
        }
    }
    let added = current
        .entries
        .iter()
        .map(SnapshotEntry::key)
        .filter(|k| !baseline.entries.iter().any(|b| &b.key() == k))
        .collect();
    Comparison {
        threshold_pct,
        deltas,
        missing,
        added,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(model: &str, ns: f64) -> SnapshotEntry {
        SnapshotEntry {
            model: model.to_string(),
            dataset: "reddit".into(),
            k1: 32,
            k2: 32,
            composition: "gcn-precompute-update-first".into(),
            steady_ns_per_iter: ns,
            setup_ns: 10.0 * ns,
            regret_seconds: 0.0,
            relative_regret: 0.0,
            steady_allocations: 0,
        }
    }

    fn snapshot(entries: Vec<SnapshotEntry>) -> BenchSnapshot {
        BenchSnapshot {
            git_sha: "deadbeef".into(),
            host: "test".into(),
            device: "h100".into(),
            iterations: 100,
            entries,
        }
    }

    #[test]
    fn identical_snapshots_pass() {
        let base = snapshot(vec![entry("gcn", 1000.0), entry("gin", 2000.0)]);
        let cmp = compare(&base, &base.clone(), 10.0);
        assert!(!cmp.is_regression(), "{}", cmp.summary_line());
        assert_eq!(cmp.deltas.len(), 2);
        assert!(cmp.missing.is_empty() && cmp.added.is_empty());
        assert!(cmp.summary_line().starts_with("bench_compare: OK"));
    }

    #[test]
    fn injected_two_x_slowdown_is_detected() {
        let base = snapshot(vec![entry("gcn", 1000.0), entry("gin", 2000.0)]);
        let mut cur = base.clone();
        cur.entries[0].steady_ns_per_iter *= 2.0; // the injected regression
        let cmp = compare(&base, &cur, 10.0);
        assert!(cmp.is_regression());
        let regs = cmp.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "gcn/reddit/32x32");
        assert!((regs[0].delta_pct - 100.0).abs() < 1e-9);
        assert!(cmp.summary_line().contains("REGRESSION"));
        assert!(cmp.render().contains("<< REGRESSION"));
    }

    #[test]
    fn speedups_and_small_noise_do_not_trip_the_gate() {
        let base = snapshot(vec![entry("gcn", 1000.0), entry("gin", 2000.0)]);
        let mut cur = base.clone();
        cur.entries[0].steady_ns_per_iter *= 0.5; // got faster
        cur.entries[1].steady_ns_per_iter *= 1.05; // within noise
        assert!(!compare(&base, &cur, 10.0).is_regression());
        // ...but a tighter threshold flags the noise.
        assert!(compare(&base, &cur, 3.0).is_regression());
    }

    #[test]
    fn coverage_changes_are_reported_not_failed() {
        let base = snapshot(vec![entry("gcn", 1000.0), entry("gin", 2000.0)]);
        let cur = snapshot(vec![entry("gcn", 1000.0), entry("gat", 3000.0)]);
        let cmp = compare(&base, &cur, 10.0);
        assert!(!cmp.is_regression());
        assert_eq!(cmp.missing, vec!["gin/reddit/32x32".to_string()]);
        assert_eq!(cmp.added, vec!["gat/reddit/32x32".to_string()]);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let base = snapshot(vec![entry("gcn", 1234.5)]);
        let json = base.to_json().unwrap();
        assert_eq!(BenchSnapshot::from_json(&json).unwrap(), base);
    }
}
