//! Small reporting helpers: geometric means and aligned text tables.

/// Geometric mean of positive values.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let sum: f64 = values.iter().map(|v| v.ln()).sum();
    (sum / values.len() as f64).exp()
}

/// Formats a speedup as the paper prints them (e.g. `1.56x`).
pub fn speedup(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}x")
    } else {
        format!("{v:.2}x")
    }
}

/// Formats seconds with a sensible unit.
pub fn seconds(v: f64) -> String {
    if v >= 1.0 {
        format!("{v:.2}s")
    } else if v >= 1e-3 {
        format!("{:.2}ms", v * 1e3)
    } else {
        format!("{:.1}us", v * 1e6)
    }
}

/// Renders rows as an aligned text table. The first row is the header.
pub fn table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(cell);
            if i + 1 < row.len() {
                for _ in 0..widths[i].saturating_sub(cell.chars().count()) + 2 {
                    out.push(' ');
                }
            }
        }
        out.push('\n');
        if ri == 0 {
            for (i, w) in widths.iter().enumerate() {
                out.push_str(&"-".repeat(*w));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_known_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(speedup(1.556), "1.56x");
        assert_eq!(speedup(123.4), "123x");
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(seconds(2.5), "2.50s");
        assert_eq!(seconds(0.0025), "2.50ms");
        assert_eq!(seconds(2.5e-6), "2.5us");
    }

    #[test]
    fn table_aligns_columns() {
        let rows = vec![
            vec!["name".to_string(), "value".to_string()],
            vec!["x".to_string(), "1".to_string()],
        ];
        let t = table(&rows);
        assert!(t.contains("name  value"));
        assert!(t.contains("----  -----"));
    }
}
