//! The evaluation grid (paper §VI-B) and the per-configuration record.

use granii_gnn::spec::{Composition, ModelKind};
use granii_gnn::system::System;
use granii_graph::datasets::Dataset;
use granii_matrix::device::DeviceKind;
use serde::{Deserialize, Serialize};

/// Inference (forward only) or training (forward + backward + update).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Forward pass only.
    Inference,
    /// Full training iteration via the autodiff tape.
    Training,
}

impl Mode {
    /// Both modes, inference first (Table III order).
    pub const ALL: [Mode; 2] = [Mode::Inference, Mode::Training];

    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Inference => "I",
            Mode::Training => "T",
        }
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One cell of the evaluation grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Baseline system.
    pub system: System,
    /// Target hardware.
    pub device: DeviceKind,
    /// GNN model.
    pub model: ModelKind,
    /// Input graph.
    pub dataset: Dataset,
    /// Input embedding size.
    pub k1: usize,
    /// Output embedding size.
    pub k2: usize,
    /// Inference or training.
    pub mode: Mode,
}

/// The embedding-size combinations of the main evaluation. GAT uses only the
/// increasing combinations (§VI-B: "we only evaluate increasing embedding
/// sizes for GAT, as this is the scenario in which the primitive composition
/// choice is non-trivial").
pub fn embed_combos(model: ModelKind) -> Vec<(usize, usize)> {
    match model {
        ModelKind::Gat => vec![(32, 256), (128, 1024), (1024, 2048)],
        _ => vec![(32, 32), (256, 64), (64, 512), (1024, 1024), (2048, 256)],
    }
}

/// System × device combinations evaluated in Table III (WiseGraph is
/// GPU-only; DGL additionally runs on CPU).
pub fn system_devices() -> Vec<(System, DeviceKind)> {
    vec![
        (System::WiseGraph, DeviceKind::H100),
        (System::WiseGraph, DeviceKind::A100),
        (System::Dgl, DeviceKind::H100),
        (System::Dgl, DeviceKind::A100),
        (System::Dgl, DeviceKind::Cpu),
    ]
}

/// The full Table III grid over the given datasets.
pub fn full_grid(datasets: &[Dataset]) -> Vec<EvalConfig> {
    let mut out = Vec::new();
    for (system, device) in system_devices() {
        for model in ModelKind::EVAL {
            for &dataset in datasets {
                for (k1, k2) in embed_combos(model) {
                    for mode in Mode::ALL {
                        out.push(EvalConfig {
                            system,
                            device,
                            model,
                            dataset,
                            k1,
                            k2,
                            mode,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Measured outcome for one grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// The configuration measured.
    pub config: EvalConfig,
    /// The system's default composition.
    pub baseline_composition: Composition,
    /// Baseline latency for the full run (default composition + the system's
    /// per-iteration normalization path), in seconds.
    pub baseline_seconds: f64,
    /// Ground-truth latency per composition when run under GRANII's generated
    /// code (normalization hoisted), cheapest first.
    pub composition_seconds: Vec<(Composition, f64)>,
    /// GRANII's online choice.
    pub granii_composition: Composition,
    /// Latency of the GRANII run: selection overhead + chosen composition.
    pub granii_seconds: f64,
    /// One-time selection overhead (featurization + cost-model evaluation).
    pub overhead_seconds: f64,
    /// Whether the decision used the cost models (vs a pure embedding-size
    /// condition).
    pub used_cost_models: bool,
}

impl Record {
    /// GRANII's speedup over the baseline.
    pub fn speedup(&self) -> f64 {
        self.baseline_seconds / self.granii_seconds
    }

    /// Speedup of the best composition (the `Optimal` oracle).
    pub fn optimal_speedup(&self) -> f64 {
        let best = self.composition_seconds.first().expect("nonempty").1;
        self.baseline_seconds / (best + self.overhead_seconds)
    }

    /// Ground-truth latency of a specific composition, if recorded.
    pub fn seconds_of(&self, comp: Composition) -> Option<f64> {
        self.composition_seconds
            .iter()
            .find(|(c, _)| *c == comp)
            .map(|(_, s)| *s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gat_only_evaluates_increasing_sizes() {
        for (k1, k2) in embed_combos(ModelKind::Gat) {
            assert!(k1 < k2);
        }
        assert!(embed_combos(ModelKind::Gcn).len() >= 5);
    }

    #[test]
    fn grid_covers_expected_cell_count() {
        let grid = full_grid(&[Dataset::Reddit, Dataset::BelgiumOsm]);
        // 5 system-device combos × (4 models × 5 sizes + GAT × 3 sizes) × 2
        // graphs × 2 modes.
        assert_eq!(grid.len(), 5 * (4 * 5 + 3) * 2 * 2);
    }

    #[test]
    fn wisegraph_is_gpu_only() {
        assert!(!system_devices().contains(&(System::WiseGraph, DeviceKind::Cpu)));
    }
}
