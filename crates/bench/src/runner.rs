//! Measurement core: baseline runs, per-composition ground truth, and GRANII
//! runs for one grid cell.

use granii_core::execplan::PlanInputs;
use granii_core::plan::CompiledModel;
use granii_core::runtime::{run_steady_state, SteadyStateReport};
use granii_core::{CoreError, Granii};
use granii_gnn::models::GnnLayer;
use granii_gnn::spec::{Composition, LayerConfig, ModelKind};
use granii_gnn::system::BaselineRunner;
use granii_gnn::train::Trainer;
use granii_gnn::{Exec, GraphCtx};
use granii_graph::Graph;
use granii_matrix::device::{DeviceKind, Engine, Profile};
use granii_matrix::DenseMatrix;

use crate::grid::{EvalConfig, Mode, Record};

/// Run length of the paper's main evaluation (§VI-C: 100 iterations).
pub const ITERATIONS: usize = 100;

/// Deterministic seed for layer parameters across all runs.
const SEED: u64 = 7;

/// Measures one grid cell. `graph` must be the dataset of `cfg` (the caller
/// caches loaded graphs), and `granii` must be trained for `cfg.device`.
///
/// # Errors
///
/// Propagates layer, selection, and kernel errors.
pub fn evaluate_config(
    cfg: &EvalConfig,
    graph: &Graph,
    granii: &Granii,
) -> Result<Record, CoreError> {
    assert_eq!(
        granii.device(),
        cfg.device,
        "cost models must match the device"
    );
    let _span = granii_telemetry::span!(
        "bench.evaluate_config",
        system = cfg.system.name(),
        model = cfg.model.name(),
        device = cfg.device.name(),
        k1 = cfg.k1,
        k2 = cfg.k2,
    );
    let ctx = GraphCtx::new(graph)?;
    let layer_cfg = LayerConfig::new(cfg.k1, cfg.k2);
    let engine = Engine::modeled(cfg.device);
    let exec = Exec::virtual_only(&engine);
    let h = DenseMatrix::zeros(ctx.num_nodes(), cfg.k1)?;
    let target = DenseMatrix::zeros(ctx.num_nodes(), cfg.k2)?;

    // Baseline: the system's default composition plus its per-iteration
    // normalization path.
    let baseline = BaselineRunner::new(cfg.system, cfg.model, layer_cfg, SEED, &exec, &ctx)?;
    let baseline_prepare = engine.take_profile().total_seconds();
    let per_iter = match cfg.mode {
        Mode::Inference => {
            baseline.iterate(&exec, &ctx, &h)?;
            engine.take_profile().total_seconds()
        }
        Mode::Training => {
            let mut trainer = Trainer::new(cfg.model, layer_cfg, SEED, 0.01)?;
            baseline.charge_normalization(&exec, &ctx);
            trainer.step(&exec, &ctx, &h, &target, baseline.composition())?;
            engine.take_profile().total_seconds()
        }
    };
    let baseline_seconds = baseline_prepare + ITERATIONS as f64 * per_iter;

    // Ground truth per composition, under GRANII's generated code (degree
    // normalization hoisted, preparation charged once).
    let mut composition_seconds = Vec::new();
    for comp in Composition::all_for(cfg.model) {
        let seconds = time_composition(cfg, &ctx, &engine, comp, &h, &target)?;
        composition_seconds.push((comp, seconds));
    }
    composition_seconds.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));

    // GRANII: one online selection, then the chosen composition.
    let selection = granii.select_with_config(cfg.model, graph, layer_cfg, ITERATIONS)?;
    let chosen_seconds = composition_seconds
        .iter()
        .find(|(c, _)| *c == selection.composition)
        .map(|(_, s)| *s)
        .expect("selected composition was timed");
    let overhead_seconds = selection.overhead_seconds();

    Ok(Record {
        config: *cfg,
        baseline_composition: baseline.composition(),
        baseline_seconds,
        composition_seconds,
        granii_composition: selection.composition,
        granii_seconds: chosen_seconds + overhead_seconds,
        overhead_seconds,
        used_cost_models: selection.used_cost_models,
    })
}

/// Times one composition for a full run (preparation once + scaled
/// iterations).
fn time_composition(
    cfg: &EvalConfig,
    ctx: &GraphCtx,
    engine: &Engine,
    comp: Composition,
    h: &DenseMatrix,
    target: &DenseMatrix,
) -> Result<f64, CoreError> {
    let exec = Exec::virtual_only(engine);
    let layer_cfg = LayerConfig::new(cfg.k1, cfg.k2);
    engine.take_profile();
    match cfg.mode {
        Mode::Inference => {
            let layer = GnnLayer::new(cfg.model, layer_cfg, SEED)?;
            let prepared = layer.prepare(&exec, ctx, comp)?;
            let prep = engine.take_profile().total_seconds();
            layer.forward(&exec, ctx, &prepared, h, comp)?;
            let per_iter = engine.take_profile().total_seconds();
            Ok(prep + ITERATIONS as f64 * per_iter)
        }
        Mode::Training => {
            let mut trainer = Trainer::new(cfg.model, layer_cfg, SEED, 0.01)?;
            trainer.step(&exec, ctx, h, target, comp)?;
            let per_iter = engine.take_profile().total_seconds();
            Ok(ITERATIONS as f64 * per_iter)
        }
    }
}

/// Runs `composition` for one grid cell through the compile-once engine and
/// reports the plan-build / bind / warm-up / steady-state phase split
/// (real-arithmetic kernels on the modeled device; wall times are host
/// times, charges follow the device model).
///
/// # Errors
///
/// Propagates compile, plan-build, and kernel errors.
pub fn steady_state_report(
    cfg: &EvalConfig,
    graph: &Graph,
    composition: Composition,
) -> Result<SteadyStateReport, CoreError> {
    let ctx = GraphCtx::new(graph)?;
    let layer_cfg = LayerConfig::new(cfg.k1, cfg.k2);
    let plan = CompiledModel::compile(cfg.model, layer_cfg)?;
    let h = DenseMatrix::random(ctx.num_nodes(), cfg.k1, 1.0, SEED);
    let inputs = PlanInputs::for_model(cfg.model, layer_cfg, &ctx, h, SEED);
    let engine = Engine::modeled(cfg.device);
    let exec = Exec::real(&engine);
    run_steady_state(&exec, &plan, composition, &inputs, ITERATIONS)
}

/// Profiles one baseline GCN iteration and returns the sparse/dense runtime
/// split (Figure 2's breakdown).
///
/// # Errors
///
/// Propagates layer errors.
pub fn sparse_dense_breakdown(
    graph: &Graph,
    k1: usize,
    k2: usize,
    device: DeviceKind,
) -> Result<Profile, CoreError> {
    let ctx = GraphCtx::new(graph)?;
    let engine = Engine::modeled(device);
    let exec = Exec::virtual_only(&engine);
    let runner = BaselineRunner::new(
        granii_gnn::system::System::Dgl,
        ModelKind::Gcn,
        LayerConfig::new(k1, k2),
        SEED,
        &exec,
        &ctx,
    )?;
    engine.take_profile();
    let h = DenseMatrix::zeros(ctx.num_nodes(), k1)?;
    runner.iterate(&exec, &ctx, &h)?;
    Ok(engine.take_profile())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Mode;
    use granii_core::GraniiOptions;
    use granii_gnn::system::System;
    use granii_graph::datasets::{Dataset, Scale};

    fn granii(device: DeviceKind) -> Granii {
        Granii::train_for_device(device, GraniiOptions::fast()).unwrap()
    }

    #[test]
    fn record_is_internally_consistent() {
        let g = granii(DeviceKind::H100);
        let graph = Dataset::Reddit.load(Scale::Tiny).unwrap();
        let cfg = EvalConfig {
            system: System::WiseGraph,
            device: DeviceKind::H100,
            model: ModelKind::Gcn,
            dataset: Dataset::Reddit,
            k1: 64,
            k2: 64,
            mode: Mode::Inference,
        };
        let rec = evaluate_config(&cfg, &graph, &g).unwrap();
        assert_eq!(rec.composition_seconds.len(), 4);
        assert!(rec.baseline_seconds > 0.0);
        assert!(rec.granii_seconds > 0.0);
        // The chosen composition's time is among the recorded ones.
        assert!(rec.seconds_of(rec.granii_composition).is_some());
        // Optimal is at least as good as GRANII.
        assert!(rec.optimal_speedup() >= rec.speedup() * 0.999);
    }

    #[test]
    fn training_costs_more_than_inference() {
        let g = granii(DeviceKind::H100);
        let graph = Dataset::ComAmazon.load(Scale::Tiny).unwrap();
        let base = EvalConfig {
            system: System::Dgl,
            device: DeviceKind::H100,
            model: ModelKind::Gcn,
            dataset: Dataset::ComAmazon,
            k1: 32,
            k2: 32,
            mode: Mode::Inference,
        };
        let inf = evaluate_config(&base, &graph, &g).unwrap();
        let tr = evaluate_config(
            &EvalConfig {
                mode: Mode::Training,
                ..base
            },
            &graph,
            &g,
        )
        .unwrap();
        assert!(tr.baseline_seconds > inf.baseline_seconds);
        assert!(tr.granii_seconds > inf.granii_seconds);
    }

    #[test]
    fn wisegraph_dense_graph_gets_large_speedup_on_a100() {
        // The §VI-C1 headline: avoiding the binning normalization on dense
        // graphs yields large A100 speedups.
        let g = granii(DeviceKind::A100);
        let graph = Dataset::Mycielskian17.load(Scale::Tiny).unwrap();
        let cfg = EvalConfig {
            system: System::WiseGraph,
            device: DeviceKind::A100,
            model: ModelKind::Gcn,
            dataset: Dataset::Mycielskian17,
            k1: 32,
            k2: 32,
            mode: Mode::Inference,
        };
        let rec = evaluate_config(&cfg, &graph, &g).unwrap();
        assert!(rec.speedup() > 3.0, "speedup {}", rec.speedup());
    }

    #[test]
    fn steady_state_report_covers_all_compositions() {
        let graph = Dataset::Reddit.load(Scale::Tiny).unwrap();
        let cfg = EvalConfig {
            system: System::Dgl,
            device: DeviceKind::Cpu,
            model: ModelKind::Gcn,
            dataset: Dataset::Reddit,
            k1: 16,
            k2: 8,
            mode: Mode::Inference,
        };
        for comp in Composition::all_for(ModelKind::Gcn) {
            let report = steady_state_report(&cfg, &graph, comp).unwrap();
            assert_eq!(report.composition, comp);
            assert_eq!(report.steady_iterations, ITERATIONS - 1);
            assert!(report.setup_seconds() > 0.0, "{report:?}");
            assert!(report.steady_seconds > 0.0, "{report:?}");
        }
    }

    #[test]
    fn breakdown_has_sparse_and_dense_time() {
        let graph = Dataset::Reddit.load(Scale::Tiny).unwrap();
        let p = sparse_dense_breakdown(&graph, 32, 32, DeviceKind::H100).unwrap();
        let f = p.sparse_fraction();
        assert!(f > 0.0 && f < 1.0, "sparse fraction {f}");
    }
}
