//! Deterministic graph generators.
//!
//! These cover the structural classes of the paper's evaluation suite
//! (Table II): power-law social graphs (Reddit, ogbn-products), road networks
//! (belgium_osm), extremely dense Mycielskian graphs (mycielskian17),
//! community graphs (com-Amazon, coAuthorsCiteseer), plus the uniform and
//! synthetic shapes used to train GRANII's cost models (§V sources its
//! training corpus from SuiteSparse with varied sampling; here the corpus is
//! generated with varied parameters instead).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Graph, GraphError, Result};

/// Erdős–Rényi `G(n, p)` with expected average out-degree `avg_degree`
/// (undirected: both orientations stored).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0` or the requested
/// degree is not achievable (`avg_degree >= n`).
pub fn erdos_renyi(n: usize, avg_degree: f64, seed: u64) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::InvalidParameter(
            "erdos_renyi: n must be > 0".into(),
        ));
    }
    if avg_degree < 0.0 || avg_degree >= n as f64 {
        return Err(GraphError::InvalidParameter(format!(
            "erdos_renyi: avg_degree {avg_degree} must be in [0, n)"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Expected undirected edges: n * avg_degree / 2. Sample by geometric
    // skipping over the upper triangle for O(m) generation.
    let p = avg_degree / (n as f64 - 1.0).max(1.0);
    let mut edges = Vec::new();
    if p > 0.0 {
        let mut u = 0usize;
        let mut v = 0usize;
        loop {
            // Skip ~Geometric(p) positions in the strict upper triangle.
            let r: f64 = rng.gen_range(f64::EPSILON..1.0);
            let skip = (r.ln() / (1.0 - p).ln()).floor() as usize + 1;
            let mut rem = skip;
            while rem > 0 {
                let row_left = n - 1 - v;
                if rem <= row_left {
                    v += rem;
                    rem = 0;
                } else {
                    rem -= row_left;
                    u += 1;
                    v = u;
                    if u >= n - 1 {
                        return finish_undirected(n, edges, "erdos_renyi", seed);
                    }
                }
            }
            edges.push((u, v));
        }
    }
    finish_undirected(n, edges, "erdos_renyi", seed)
}

fn finish_undirected(n: usize, edges: Vec<(usize, usize)>, name: &str, seed: u64) -> Result<Graph> {
    Ok(Graph::undirected_from_edges(n, &edges)?.with_name(format!("{name}(n={n},seed={seed})")))
}

/// Preferential-attachment (Barabási–Albert style) power-law graph: each new
/// node attaches to `m` existing nodes with probability proportional to
/// degree. Produces the skewed degree distributions of social graphs.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 2` or `m == 0`.
pub fn power_law(n: usize, m: usize, seed: u64) -> Result<Graph> {
    if n < 2 || m == 0 {
        return Err(GraphError::InvalidParameter(format!(
            "power_law: need n >= 2 (got {n}) and m >= 1 (got {m})"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // `targets` holds one entry per half-edge; uniform sampling from it is
    // degree-proportional sampling.
    let mut targets: Vec<usize> = vec![0, 1];
    let mut edges: Vec<(usize, usize)> = vec![(0, 1)];
    for u in 2..n {
        let attach = m.min(u);
        let mut chosen = Vec::with_capacity(attach);
        while chosen.len() < attach {
            let t = targets[rng.gen_range(0..targets.len())];
            if t != u && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &v in &chosen {
            edges.push((u, v));
            targets.push(u);
            targets.push(v);
        }
    }
    finish_undirected(n, edges, "power_law", seed)
}

/// RMAT-style recursive matrix generator with partition probabilities
/// `(a, b, c)` (and `d = 1 - a - b - c`). Skewed, clustered non-zero
/// distributions; used for cost-model training diversity.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for invalid probabilities or a
/// zero scale.
pub fn rmat(scale: u32, edges_per_node: usize, a: f64, b: f64, c: f64, seed: u64) -> Result<Graph> {
    if scale == 0 || scale > 24 {
        return Err(GraphError::InvalidParameter(
            "rmat: scale must be in 1..=24".into(),
        ));
    }
    let d = 1.0 - a - b - c;
    if a < 0.0 || b < 0.0 || c < 0.0 || d < 0.0 {
        return Err(GraphError::InvalidParameter(
            "rmat: probabilities must be nonnegative and sum <= 1".into(),
        ));
    }
    let n = 1usize << scale;
    let m = n * edges_per_node;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for level in (0..scale).rev() {
            let r: f64 = rng.gen();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u |= du << level;
            v |= dv << level;
        }
        if u != v {
            edges.push((u, v));
        }
    }
    finish_undirected(n, edges, "rmat", seed)
}

/// A `w x h` 2-D grid with 4-neighbor connectivity: the road-network stand-in
/// (max degree 4, no skew, huge diameter — the belgium_osm class).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if either dimension is zero.
pub fn grid_2d(w: usize, h: usize) -> Result<Graph> {
    if w == 0 || h == 0 {
        return Err(GraphError::InvalidParameter(
            "grid_2d: dimensions must be > 0".into(),
        ));
    }
    let idx = |x: usize, y: usize| y * w + x;
    let mut edges = Vec::with_capacity(2 * w * h);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((idx(x, y), idx(x + 1, y)));
            }
            if y + 1 < h {
                edges.push((idx(x, y), idx(x, y + 1)));
            }
        }
    }
    Ok(Graph::undirected_from_edges(w * h, &edges)?.with_name(format!("grid_2d({w}x{h})")))
}

/// The Mycielskian construction iterated to `order` (`order = 2` is `K_2`).
///
/// `mycielskian(k)` is exactly the SuiteSparse `mycielskianK` graph family the
/// paper's densest evaluation graph comes from: triangle-free but with
/// quadratically growing edge density.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `order < 2` or `order > 16`
/// (node count doubles per step).
pub fn mycielskian(order: u32) -> Result<Graph> {
    if !(2..=16).contains(&order) {
        return Err(GraphError::InvalidParameter(
            "mycielskian: order must be in 2..=16".into(),
        ));
    }
    // Start from K2.
    let mut n = 2usize;
    let mut edges: Vec<(usize, usize)> = vec![(0, 1)];
    for _ in 2..order {
        // Mycielskian step: nodes v_i (0..n), shadows u_i (n..2n), apex z (2n).
        let mut next = Vec::with_capacity(edges.len() * 3 + n);
        for &(a, b) in &edges {
            next.push((a, b)); // original
            next.push((n + a, b)); // shadow-original
            next.push((a, n + b)); // original-shadow
        }
        for i in 0..n {
            next.push((n + i, 2 * n)); // shadow-apex
        }
        edges = next;
        n = 2 * n + 1;
    }
    Ok(Graph::undirected_from_edges(n, &edges)?.with_name(format!("mycielskian({order})")))
}

/// Community graph: `communities` dense Erdős–Rényi cliques of size
/// `community_size` with sparse random inter-community bridges. The
/// com-Amazon / coAuthorsCiteseer stand-in.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for zero sizes or an
/// unsatisfiable intra-community probability.
pub fn community(
    communities: usize,
    community_size: usize,
    intra_p: f64,
    bridges_per_community: usize,
    seed: u64,
) -> Result<Graph> {
    if communities == 0 || community_size == 0 {
        return Err(GraphError::InvalidParameter(
            "community: sizes must be > 0".into(),
        ));
    }
    if !(0.0..=1.0).contains(&intra_p) {
        return Err(GraphError::InvalidParameter(
            "community: intra_p must be in [0, 1]".into(),
        ));
    }
    let n = communities * community_size;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for comm in 0..communities {
        let base = comm * community_size;
        for i in 0..community_size {
            for j in (i + 1)..community_size {
                if rng.gen::<f64>() < intra_p {
                    edges.push((base + i, base + j));
                }
            }
        }
        for _ in 0..bridges_per_community {
            let u = base + rng.gen_range(0..community_size);
            let v = rng.gen_range(0..n);
            if u != v {
                edges.push((u, v));
            }
        }
    }
    finish_undirected(n, edges, "community", seed)
}

/// The complete graph `K_n` (without self-loops).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0` or `n > 4096` (the
/// edge count is quadratic).
pub fn complete(n: usize) -> Result<Graph> {
    if n == 0 || n > 4096 {
        return Err(GraphError::InvalidParameter(
            "complete: n must be in 1..=4096".into(),
        ));
    }
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            edges.push((i, j));
        }
    }
    Ok(Graph::undirected_from_edges(n, &edges)?.with_name(format!("complete({n})")))
}

/// A star: node 0 connected to all others (maximum degree skew).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 2`.
pub fn star(n: usize) -> Result<Graph> {
    if n < 2 {
        return Err(GraphError::InvalidParameter("star: n must be >= 2".into()));
    }
    let edges: Vec<_> = (1..n).map(|i| (0, i)).collect();
    Ok(Graph::undirected_from_edges(n, &edges)?.with_name(format!("star({n})")))
}

/// A cycle of `n` nodes (uniform degree 2).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 3`.
pub fn ring(n: usize) -> Result<Graph> {
    if n < 3 {
        return Err(GraphError::InvalidParameter("ring: n must be >= 3".into()));
    }
    let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Ok(Graph::undirected_from_edges(n, &edges)?.with_name(format!("ring({n})")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_hits_target_degree() {
        let g = erdos_renyi(2000, 10.0, 7).unwrap();
        let avg = g.avg_degree();
        assert!((avg - 10.0).abs() < 1.5, "avg degree {avg} too far from 10");
        assert!(g.adj().is_pattern_symmetric());
    }

    #[test]
    fn erdos_renyi_zero_degree_is_empty() {
        let g = erdos_renyi(50, 0.0, 1).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn erdos_renyi_is_deterministic() {
        let a = erdos_renyi(200, 5.0, 9).unwrap();
        let b = erdos_renyi(200, 5.0, 9).unwrap();
        assert_eq!(a.adj(), b.adj());
    }

    #[test]
    fn power_law_has_skewed_degrees() {
        let g = power_law(2000, 4, 3).unwrap();
        let stats = g.row_stats();
        // Power-law graphs have CV well above an ER graph of the same density.
        assert!(stats.cv > 0.8, "cv = {}", stats.cv);
        assert!(stats.max as f64 > 8.0 * stats.mean);
    }

    #[test]
    fn grid_degrees_bounded_by_four() {
        let g = grid_2d(10, 7).unwrap();
        assert_eq!(g.num_nodes(), 70);
        assert_eq!(g.row_stats().max, 4);
        assert!(g.adj().is_pattern_symmetric());
    }

    #[test]
    fn mycielskian_counts_follow_recurrence() {
        // n_{k+1} = 2 n_k + 1, m_{k+1} = 3 m_k + n_k (undirected edges).
        let (mut n, mut m) = (2usize, 1usize);
        for order in 3..=8u32 {
            let g = mycielskian(order).unwrap();
            m = 3 * m + n;
            n = 2 * n + 1;
            assert_eq!(g.num_nodes(), n, "nodes at order {order}");
            assert_eq!(g.num_edges(), 2 * m, "directed edges at order {order}");
        }
    }

    #[test]
    fn mycielskian_is_dense_relative_to_suite() {
        let mc = mycielskian(10).unwrap();
        let road = grid_2d(28, 28).unwrap(); // similar node count
        assert!(mc.avg_degree() > 10.0 * road.avg_degree());
    }

    #[test]
    fn complete_graph_edges() {
        let g = complete(5).unwrap();
        assert_eq!(g.num_edges(), 20); // 2 * C(5,2)
        assert_eq!(g.row_stats().max, 4);
    }

    #[test]
    fn star_is_maximally_skewed() {
        let g = star(100).unwrap();
        let s = g.row_stats();
        assert_eq!(s.max, 99);
        assert!(s.cv > 4.0);
    }

    #[test]
    fn ring_is_uniform() {
        let g = ring(10).unwrap();
        let s = g.row_stats();
        assert_eq!(s.max, 2);
        assert_eq!(s.min, 2);
        assert_eq!(s.cv, 0.0);
    }

    #[test]
    fn rmat_generates_within_bounds() {
        let g = rmat(8, 8, 0.55, 0.2, 0.2, 11).unwrap();
        assert_eq!(g.num_nodes(), 256);
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn community_builds_requested_shape() {
        let g = community(10, 20, 0.4, 2, 5).unwrap();
        assert_eq!(g.num_nodes(), 200);
        assert!(g.avg_degree() > 3.0);
    }

    #[test]
    fn parameter_validation() {
        assert!(erdos_renyi(0, 1.0, 0).is_err());
        assert!(erdos_renyi(10, 20.0, 0).is_err());
        assert!(power_law(1, 2, 0).is_err());
        assert!(power_law(10, 0, 0).is_err());
        assert!(grid_2d(0, 5).is_err());
        assert!(mycielskian(1).is_err());
        assert!(mycielskian(17).is_err());
        assert!(complete(0).is_err());
        assert!(star(1).is_err());
        assert!(ring(2).is_err());
        assert!(rmat(0, 1, 0.25, 0.25, 0.25, 0).is_err());
        assert!(rmat(4, 1, 0.6, 0.3, 0.3, 0).is_err());
        assert!(community(0, 1, 0.5, 0, 0).is_err());
        assert!(community(1, 1, 1.5, 0, 0).is_err());
    }
}
