//! Graph IO: a text edge-list format and a compact binary format.
//!
//! The text format matches the common SNAP/SuiteSparse export shape (one
//! `src dst` pair per line, `#` comments), so real datasets can be dropped in
//! when available. The binary format is a length-prefixed `u32` pair stream
//! used to cache generated stand-ins between benchmark runs.

use std::io::{BufRead, BufReader, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{Graph, GraphError, Result};

/// Magic bytes of the binary graph format.
const MAGIC: &[u8; 4] = b"GRN1";

/// Writes a graph as a text edge list (`src dst` per line, with a header
/// comment carrying the node count).
///
/// # Errors
///
/// Propagates IO errors from the writer.
pub fn write_edge_list<W: Write>(graph: &Graph, mut w: W) -> Result<()> {
    writeln!(w, "# granii edge list")?;
    writeln!(w, "# nodes {}", graph.num_nodes())?;
    for u in 0..graph.num_nodes() {
        for &v in graph.adj().row_indices(u) {
            writeln!(w, "{u} {v}")?;
        }
    }
    Ok(())
}

/// Reads a text edge list produced by [`write_edge_list`] (or any `src dst`
/// file; node count defaults to `1 + max id` when no header is present).
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed lines and propagates IO errors.
pub fn read_edge_list<R: Read>(r: R) -> Result<Graph> {
    let reader = BufReader::new(r);
    let mut nodes: Option<usize> = None;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut max_id = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut it = rest.split_whitespace();
            if it.next() == Some("nodes") {
                if let Some(n) = it.next().and_then(|s| s.parse().ok()) {
                    nodes = Some(n);
                }
            }
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<usize> {
            tok.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: "expected two node ids".into(),
            })?
            .parse()
            .map_err(|_| GraphError::Parse {
                line: lineno + 1,
                message: "invalid node id".into(),
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let n = nodes.unwrap_or(if edges.is_empty() { 0 } else { max_id + 1 });
    Graph::from_edges(n, &edges)
}

/// Reads a MatrixMarket `coordinate` file (the SuiteSparse exchange format,
/// the source of the paper's training and evaluation graphs). Supports
/// `general` and `symmetric` pattern/real/integer matrices; `symmetric`
/// entries are mirrored. Values are kept (a weighted graph) for `real` /
/// `integer` fields and dropped for `pattern`.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] for malformed headers/entries and
/// [`GraphError::NotSquare`] for rectangular matrices.
pub fn read_matrix_market<R: Read>(r: R) -> Result<Graph> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines().enumerate();

    let (first_no, first) = lines.next().ok_or(GraphError::Parse {
        line: 1,
        message: "empty file".into(),
    })?;
    let first = first?;
    let header: Vec<String> = first
        .trim()
        .to_ascii_lowercase()
        .split_whitespace()
        .map(String::from)
        .collect();
    let bad = |line: usize, message: &str| GraphError::Parse {
        line,
        message: message.into(),
    };
    if header.len() < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
        return Err(bad(first_no + 1, "expected a %%MatrixMarket matrix header"));
    }
    if header[2] != "coordinate" {
        return Err(bad(
            first_no + 1,
            "only coordinate (sparse) matrices are supported",
        ));
    }
    let pattern = match header[3].as_str() {
        "pattern" => true,
        "real" | "integer" => false,
        other => {
            return Err(GraphError::Parse {
                line: first_no + 1,
                message: format!("unsupported field type {other}"),
            })
        }
    };
    let symmetric = match header[4].as_str() {
        "general" => false,
        "symmetric" => true,
        other => {
            return Err(GraphError::Parse {
                line: first_no + 1,
                message: format!("unsupported symmetry {other}"),
            })
        }
    };

    let mut size: Option<(usize, usize, usize)> = None;
    let mut coo: Option<CooForMm> = None;
    for (lineno, line) in lines {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse_usize = |tok: Option<&str>, lineno: usize| -> Result<usize> {
            tok.ok_or(bad(lineno + 1, "missing field"))?
                .parse()
                .map_err(|_| bad(lineno + 1, "invalid integer"))
        };
        match (&size, &mut coo) {
            (None, _) => {
                let rows = parse_usize(it.next(), lineno)?;
                let cols = parse_usize(it.next(), lineno)?;
                let nnz = parse_usize(it.next(), lineno)?;
                if rows != cols {
                    return Err(GraphError::NotSquare {
                        shape: (rows, cols),
                    });
                }
                size = Some((rows, cols, nnz));
                coo = Some(CooForMm::new(rows, pattern));
            }
            (Some(_), Some(builder)) => {
                let i = parse_usize(it.next(), lineno)?;
                let j = parse_usize(it.next(), lineno)?;
                if i == 0 || j == 0 {
                    return Err(bad(lineno + 1, "MatrixMarket indices are 1-based"));
                }
                let v = if pattern {
                    1.0
                } else {
                    it.next()
                        .ok_or(bad(lineno + 1, "missing value"))?
                        .parse::<f32>()
                        .map_err(|_| bad(lineno + 1, "invalid value"))?
                };
                builder.push(i - 1, j - 1, v, lineno + 1)?;
                if symmetric && i != j {
                    builder.push(j - 1, i - 1, v, lineno + 1)?;
                }
            }
            _ => unreachable!("coo initialized with size"),
        }
    }
    let builder = coo.ok_or(bad(0, "missing size line"))?;
    builder.finish()
}

/// Internal COO accumulator for the MatrixMarket reader.
struct CooForMm {
    coo: granii_matrix::CooMatrix,
    pattern: bool,
}

impl CooForMm {
    fn new(n: usize, pattern: bool) -> Self {
        Self {
            coo: granii_matrix::CooMatrix::new(n, n),
            pattern,
        }
    }

    fn push(&mut self, i: usize, j: usize, v: f32, line: usize) -> Result<()> {
        self.coo.push(i, j, v).map_err(|_| GraphError::Parse {
            line,
            message: format!("entry ({i}, {j}) out of bounds"),
        })
    }

    fn finish(self) -> Result<Graph> {
        let csr = if self.pattern {
            self.coo.to_csr_unweighted()
        } else {
            self.coo.to_csr()
        };
        Graph::from_csr(csr)
    }
}

/// Writes a graph in MatrixMarket coordinate format (`general` symmetry;
/// `pattern` for unweighted graphs, `real` otherwise).
///
/// # Errors
///
/// Propagates IO errors from the writer.
pub fn write_matrix_market<W: Write>(graph: &Graph, mut w: W) -> Result<()> {
    let field = if graph.is_weighted() {
        "real"
    } else {
        "pattern"
    };
    writeln!(w, "%%MatrixMarket matrix coordinate {field} general")?;
    writeln!(w, "% exported by granii")?;
    writeln!(
        w,
        "{} {} {}",
        graph.num_nodes(),
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for u in 0..graph.num_nodes() {
        let row = graph.adj().row_indices(u);
        let vals = graph.adj().row_values(u);
        for (off, &v) in row.iter().enumerate() {
            match vals {
                Some(vs) => writeln!(w, "{} {} {}", u + 1, v + 1, vs[off])?,
                None => writeln!(w, "{} {}", u + 1, v + 1)?,
            }
        }
    }
    Ok(())
}

/// Serializes a graph into the compact binary format.
pub fn to_bytes(graph: &Graph) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + graph.num_edges() * 8);
    buf.put_slice(MAGIC);
    buf.put_u32_le(graph.num_nodes() as u32);
    buf.put_u32_le(graph.num_edges() as u32);
    for u in 0..graph.num_nodes() {
        for &v in graph.adj().row_indices(u) {
            buf.put_u32_le(u as u32);
            buf.put_u32_le(v);
        }
    }
    buf.freeze()
}

/// Deserializes a graph from the compact binary format.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] if the magic, length, or node ids are
/// inconsistent.
pub fn from_bytes(mut data: Bytes) -> Result<Graph> {
    let bad = |message: &str| GraphError::Parse {
        line: 0,
        message: message.into(),
    };
    if data.remaining() < 12 {
        return Err(bad("truncated header"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(bad("bad magic"));
    }
    let n = data.get_u32_le() as usize;
    let m = data.get_u32_le() as usize;
    if data.remaining() < m * 8 {
        return Err(bad("truncated edge data"));
    }
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = data.get_u32_le() as usize;
        let v = data.get_u32_le() as usize;
        edges.push((u, v));
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn text_round_trip() {
        let g = generators::power_law(50, 3, 2).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(back.adj().indices(), g.adj().indices());
        assert_eq!(back.num_nodes(), g.num_nodes());
    }

    #[test]
    fn text_without_header_infers_node_count() {
        let back = read_edge_list("0 1\n2 0\n".as_bytes()).unwrap();
        assert_eq!(back.num_nodes(), 3);
        assert_eq!(back.num_edges(), 2);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(matches!(
            read_edge_list("0 x\n".as_bytes()),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_edge_list("42\n".as_bytes()),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn binary_round_trip() {
        let g = generators::mycielskian(6).unwrap();
        let bytes = to_bytes(&g);
        let back = from_bytes(bytes).unwrap();
        assert_eq!(back.adj().indptr(), g.adj().indptr());
        assert_eq!(back.adj().indices(), g.adj().indices());
    }

    #[test]
    fn binary_rejects_corruption() {
        let g = generators::ring(5).unwrap();
        let bytes = to_bytes(&g);
        assert!(from_bytes(bytes.slice(0..4)).is_err());
        let mut corrupted = bytes.to_vec();
        corrupted[0] = b'X';
        assert!(from_bytes(Bytes::from(corrupted)).is_err());
        let truncated = bytes.slice(0..bytes.len() - 4);
        assert!(from_bytes(truncated).is_err());
    }

    #[test]
    fn matrix_market_round_trip() {
        let g = generators::power_law(30, 3, 6).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        let back = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(back.adj().indptr(), g.adj().indptr());
        assert_eq!(back.adj().indices(), g.adj().indices());
        assert!(!back.is_weighted());
    }

    #[test]
    fn matrix_market_symmetric_mirrors_entries() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 4);
        assert!(g.adj().is_pattern_symmetric());
    }

    #[test]
    fn matrix_market_reads_weighted_values() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 3.5\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.adj().get(0, 1), 3.5);
    }

    #[test]
    fn matrix_market_rejects_malformed_input() {
        assert!(read_matrix_market("no header\n".as_bytes()).is_err());
        assert!(
            read_matrix_market("%%MatrixMarket matrix array real general\n".as_bytes()).is_err()
        );
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 2 1.0\n".as_bytes()
        )
        .is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::from_edges(0, &[]).unwrap();
        let back = from_bytes(to_bytes(&g)).unwrap();
        assert_eq!(back.num_nodes(), 0);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        assert_eq!(read_edge_list(buf.as_slice()).unwrap().num_nodes(), 0);
    }
}
