//! The graph half of GRANII's input featurizer (paper §IV-E1, Appendix E).
//!
//! The featurizer inspects the input graph at runtime and produces a small,
//! hand-crafted embedding of its structure (the paper explicitly avoids
//! learned feature extractors for scalability). The cost models concatenate
//! these with the GNN embedding sizes.

use serde::{Deserialize, Serialize};

use crate::Graph;

/// Hand-crafted structural features of a graph.
///
/// # Example
///
/// ```
/// use granii_graph::{generators, GraphFeatures};
///
/// # fn main() -> Result<(), granii_graph::GraphError> {
/// let g = generators::star(50)?;
/// let f = GraphFeatures::extract(&g);
/// assert!(f.degree_cv > 1.0); // stars are maximally skewed
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphFeatures {
    /// Number of nodes.
    pub num_nodes: f64,
    /// Number of stored directed edges.
    pub num_edges: f64,
    /// `log2(1 + nodes)` — scale feature.
    pub log_nodes: f64,
    /// `log2(1 + edges)` — scale feature.
    pub log_edges: f64,
    /// Adjacency density `nnz / n^2`.
    pub density: f64,
    /// Average degree.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: f64,
    /// Degree coefficient of variation (skew proxy).
    pub degree_cv: f64,
    /// `max_degree / avg_degree` (hub dominance).
    pub hub_ratio: f64,
    /// Fraction of isolated (zero out-degree) nodes.
    pub empty_row_fraction: f64,
    /// Fraction of nodes with degree in (0, 8].
    pub frac_deg_low: f64,
    /// Fraction of nodes with degree in (8, 64].
    pub frac_deg_mid: f64,
    /// Fraction of nodes with degree in (64, 512].
    pub frac_deg_high: f64,
    /// Fraction of nodes with degree above 512 (hub bucket).
    pub frac_deg_hub: f64,
}

impl GraphFeatures {
    /// Number of features produced by [`GraphFeatures::to_vec`].
    pub const LEN: usize = 14;

    /// Feature names in `to_vec` order (for model introspection).
    pub const NAMES: [&'static str; Self::LEN] = [
        "num_nodes",
        "num_edges",
        "log_nodes",
        "log_edges",
        "density",
        "avg_degree",
        "max_degree",
        "degree_cv",
        "hub_ratio",
        "empty_row_fraction",
        "frac_deg_low",
        "frac_deg_mid",
        "frac_deg_high",
        "frac_deg_hub",
    ];

    /// Extracts features from a graph with a single O(nodes) pass over the
    /// row pointers (the "efficiently inspects the input graph at run time"
    /// requirement of §IV-E1).
    pub fn extract(graph: &Graph) -> Self {
        let _span = granii_telemetry::span!(
            "graph.featurize",
            nodes = graph.num_nodes(),
            edges = graph.num_edges(),
        );
        let stats = graph.row_stats();
        let n = graph.num_nodes() as f64;
        let m = graph.num_edges() as f64;
        // Log-scale degree histogram (the hand-crafted distribution features
        // of the paper's Appendix E featurizer).
        let mut buckets = [0usize; 4];
        for r in 0..graph.num_nodes() {
            let d = graph.adj().row_nnz(r);
            match d {
                0 => {}
                1..=8 => buckets[0] += 1,
                9..=64 => buckets[1] += 1,
                65..=512 => buckets[2] += 1,
                _ => buckets[3] += 1,
            }
        }
        let frac = |c: usize| if n > 0.0 { c as f64 / n } else { 0.0 };
        Self {
            num_nodes: n,
            num_edges: m,
            log_nodes: (1.0 + n).log2(),
            log_edges: (1.0 + m).log2(),
            density: graph.density(),
            avg_degree: stats.mean,
            max_degree: stats.max as f64,
            degree_cv: stats.cv,
            hub_ratio: if stats.mean > 0.0 {
                stats.max as f64 / stats.mean
            } else {
                0.0
            },
            empty_row_fraction: stats.empty_row_fraction,
            frac_deg_low: frac(buckets[0]),
            frac_deg_mid: frac(buckets[1]),
            frac_deg_high: frac(buckets[2]),
            frac_deg_hub: frac(buckets[3]),
        }
    }

    /// Flattens into the fixed-order vector consumed by the cost models.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.num_nodes,
            self.num_edges,
            self.log_nodes,
            self.log_edges,
            self.density,
            self.avg_degree,
            self.max_degree,
            self.degree_cv,
            self.hub_ratio,
            self.empty_row_fraction,
            self.frac_deg_low,
            self.frac_deg_mid,
            self.frac_deg_high,
            self.frac_deg_hub,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn vector_length_matches_names() {
        let g = generators::ring(10).unwrap();
        let f = GraphFeatures::extract(&g);
        assert_eq!(f.to_vec().len(), GraphFeatures::LEN);
        assert_eq!(GraphFeatures::NAMES.len(), GraphFeatures::LEN);
    }

    #[test]
    fn ring_features_are_uniform() {
        let g = generators::ring(100).unwrap();
        let f = GraphFeatures::extract(&g);
        assert_eq!(f.avg_degree, 2.0);
        assert_eq!(f.degree_cv, 0.0);
        assert_eq!(f.hub_ratio, 1.0);
        assert_eq!(f.empty_row_fraction, 0.0);
    }

    #[test]
    fn density_separates_graph_classes() {
        let dense = generators::mycielskian(9).unwrap();
        let sparse = generators::grid_2d(20, 20).unwrap();
        let fd = GraphFeatures::extract(&dense);
        let fs = GraphFeatures::extract(&sparse);
        assert!(fd.density > 10.0 * fs.density);
        assert!(fd.avg_degree > 8.0 * fs.avg_degree);
    }

    #[test]
    fn degree_histogram_partitions_nodes() {
        let g = generators::star(100).unwrap();
        let f = GraphFeatures::extract(&g);
        // 99 leaves with degree 1, one hub with degree 99.
        assert!((f.frac_deg_low - 0.99).abs() < 1e-9);
        assert!((f.frac_deg_high - 0.01).abs() < 1e-9);
        let total = f.frac_deg_low
            + f.frac_deg_mid
            + f.frac_deg_high
            + f.frac_deg_hub
            + f.empty_row_fraction;
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn isolated_nodes_counted() {
        let g = Graph::from_edges(4, &[(0, 1)]).unwrap();
        let f = GraphFeatures::extract(&g);
        assert_eq!(f.empty_row_fraction, 0.75);
    }
}
