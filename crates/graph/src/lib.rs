//! Graph substrate for the GRANII reproduction.
//!
//! Provides the [`Graph`] type (a square CSR adjacency with cached structural
//! statistics), deterministic [`generators`] covering the structural classes of
//! the paper's evaluation suite (power-law, road, Mycielskian, ...), the
//! [`datasets`] module with synthetic stand-ins for the six evaluation graphs
//! of Table II, neighborhood [`sampling`] (§VI-E), the [`features`] extracted
//! by GRANII's input featurizer (§IV-E1), and edge-list [`io`].
//!
//! # Example
//!
//! ```
//! use granii_graph::generators;
//!
//! # fn main() -> Result<(), granii_graph::GraphError> {
//! let g = generators::grid_2d(8, 8)?;
//! assert_eq!(g.num_nodes(), 64);
//! assert!(g.adj().is_pattern_symmetric());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod datasets;
mod error;
pub mod features;
pub mod generators;
mod graph;
pub mod io;
pub mod sampling;

pub use error::GraphError;
pub use features::GraphFeatures;
pub use graph::Graph;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, GraphError>;
