//! Neighborhood sampling (paper §VI-E).
//!
//! GraphSAGE-style sampling caps each node's neighborhood at a fanout; the
//! paper evaluates GRANII's sensitivity to it with 10 random samples per
//! fanout in {1000, 100, 10} (Figure 9) and uses it to support GraphSAGE with
//! GCN aggregation.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use granii_matrix::CooMatrix;

use crate::{Graph, GraphError, Result};

/// Uniformly samples up to `fanout` out-neighbors per node, keeping all nodes.
///
/// Nodes with degree ≤ `fanout` keep their full neighborhood (sampling
/// without replacement, matching `dgl.sampling.sample_neighbors`).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `fanout == 0`.
///
/// # Example
///
/// ```
/// use granii_graph::{generators, sampling};
///
/// # fn main() -> Result<(), granii_graph::GraphError> {
/// let g = generators::power_law(200, 8, 1)?;
/// let s = sampling::sample_neighbors(&g, 4, 7)?;
/// assert!(s.row_stats().max <= 4);
/// # Ok(())
/// # }
/// ```
pub fn sample_neighbors(graph: &Graph, fanout: usize, seed: u64) -> Result<Graph> {
    if fanout == 0 {
        return Err(GraphError::InvalidParameter(
            "sample_neighbors: fanout must be > 0".into(),
        ));
    }
    let n = graph.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(n, n);
    let adj = graph.adj();
    let mut pool: Vec<usize> = Vec::new();
    for u in 0..n {
        let row = adj.row_indices(u);
        let vals = adj.row_values(u);
        if row.len() <= fanout {
            for (off, &v) in row.iter().enumerate() {
                let w = vals.map_or(1.0, |vs| vs[off]);
                coo.push(u, v as usize, w).expect("in range");
            }
        } else {
            pool.clear();
            pool.extend(0..row.len());
            pool.shuffle(&mut rng);
            for &off in pool.iter().take(fanout) {
                let w = vals.map_or(1.0, |vs| vs[off]);
                coo.push(u, row[off] as usize, w).expect("in range");
            }
        }
    }
    let csr = if graph.is_weighted() {
        coo.to_csr()
    } else {
        coo.to_csr_unweighted()
    };
    Ok(Graph::from_csr(csr)?.with_name(format!("{}~fanout{fanout}", graph.name())))
}

/// Samples a node-induced subgraph of `num_nodes` uniformly random nodes
/// (the mini-batch subgraph shape used in sampled training).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `num_nodes` is zero or exceeds
/// the graph's node count.
pub fn sample_node_subgraph(graph: &Graph, num_nodes: usize, seed: u64) -> Result<Graph> {
    let n = graph.num_nodes();
    if num_nodes == 0 || num_nodes > n {
        return Err(GraphError::InvalidParameter(format!(
            "sample_node_subgraph: num_nodes {num_nodes} must be in 1..={n}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Partial Fisher-Yates for a uniform sample without replacement.
    let mut ids: Vec<usize> = (0..n).collect();
    for i in 0..num_nodes {
        let j = rng.gen_range(i..n);
        ids.swap(i, j);
    }
    let mut sample = ids[..num_nodes].to_vec();
    sample.sort_unstable();
    graph.induced_subgraph(&sample)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn fanout_caps_degree() {
        let g = generators::star(100).unwrap();
        let s = sample_neighbors(&g, 10, 3).unwrap();
        assert_eq!(s.row_stats().max, 10); // hub capped
        assert_eq!(s.num_nodes(), 100);
    }

    #[test]
    fn low_degree_rows_are_kept_whole() {
        let g = generators::ring(20).unwrap();
        let s = sample_neighbors(&g, 5, 3).unwrap();
        assert_eq!(s.num_edges(), g.num_edges());
        assert_eq!(s.adj(), g.adj());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let g = generators::power_law(300, 6, 5).unwrap();
        let a = sample_neighbors(&g, 3, 11).unwrap();
        let b = sample_neighbors(&g, 3, 11).unwrap();
        let c = sample_neighbors(&g, 3, 12).unwrap();
        assert_eq!(a.adj(), b.adj());
        assert_ne!(a.adj(), c.adj());
    }

    #[test]
    fn sampled_edges_are_subset() {
        let g = generators::power_law(200, 8, 2).unwrap();
        let s = sample_neighbors(&g, 2, 9).unwrap();
        for u in 0..s.num_nodes() {
            for &v in s.adj().row_indices(u) {
                assert!(g.adj().row_indices(u).contains(&v));
            }
        }
    }

    #[test]
    fn node_subgraph_has_requested_size() {
        let g = generators::power_law(500, 5, 4).unwrap();
        let s = sample_node_subgraph(&g, 100, 21).unwrap();
        assert_eq!(s.num_nodes(), 100);
        assert!(s.num_edges() < g.num_edges());
    }

    #[test]
    fn parameter_validation() {
        let g = generators::ring(10).unwrap();
        assert!(sample_neighbors(&g, 0, 0).is_err());
        assert!(sample_node_subgraph(&g, 0, 0).is_err());
        assert!(sample_node_subgraph(&g, 11, 0).is_err());
    }
}
