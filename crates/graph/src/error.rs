use std::fmt;

use granii_matrix::MatrixError;

/// Errors produced by graph construction, generation, and IO.
#[derive(Debug)]
#[non_exhaustive]
pub enum GraphError {
    /// The adjacency matrix is not square.
    NotSquare {
        /// Observed shape.
        shape: (usize, usize),
    },
    /// An edge referenced a node outside `0..num_nodes`.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// A generator received an invalid parameter.
    InvalidParameter(String),
    /// An underlying matrix operation failed.
    Matrix(MatrixError),
    /// An IO operation failed.
    Io(std::io::Error),
    /// A file being parsed was malformed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NotSquare { shape } => {
                write!(
                    f,
                    "adjacency matrix must be square, got {}x{}",
                    shape.0, shape.1
                )
            }
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range for graph with {num_nodes} nodes"
                )
            }
            GraphError::InvalidParameter(msg) => write!(f, "invalid generator parameter: {msg}"),
            GraphError::Matrix(e) => write!(f, "matrix error: {e}"),
            GraphError::Io(e) => write!(f, "io error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Matrix(e) => Some(e),
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MatrixError> for GraphError {
    fn from(e: MatrixError) -> Self {
        GraphError::Matrix(e)
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}
