use granii_matrix::{CooMatrix, CsrMatrix, DiagMatrix, RowStats};
use serde::{Deserialize, Serialize};

use crate::{GraphError, Result};

/// A graph backed by a square CSR adjacency matrix.
///
/// Edges are directed in storage; undirected graphs store both orientations
/// (the convention of DGL and SuiteSparse symmetric matrices). The adjacency
/// may be weighted or unweighted — an unweighted adjacency is what lets GRANII
/// select the cheaper `copy_u` aggregation (paper §III-A).
///
/// # Example
///
/// ```
/// use granii_graph::Graph;
///
/// # fn main() -> Result<(), granii_graph::GraphError> {
/// let g = Graph::undirected_from_edges(3, &[(0, 1), (1, 2)])?;
/// assert_eq!(g.num_edges(), 4); // both orientations stored
/// assert_eq!(g.out_degrees(), vec![1.0, 2.0, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    adj: CsrMatrix,
    name: String,
}

impl Graph {
    /// Wraps a CSR adjacency matrix.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotSquare`] if the matrix is not square.
    pub fn from_csr(adj: CsrMatrix) -> Result<Self> {
        if adj.rows() != adj.cols() {
            return Err(GraphError::NotSquare { shape: adj.shape() });
        }
        Ok(Self {
            adj,
            name: String::from("graph"),
        })
    }

    /// Builds an unweighted directed graph from an edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let mut coo = CooMatrix::new(n, n);
        for &(u, v) in edges {
            coo.push(u, v, 1.0)
                .map_err(|_| GraphError::NodeOutOfRange {
                    node: u.max(v),
                    num_nodes: n,
                })?;
        }
        Ok(Self {
            adj: coo.to_csr_unweighted(),
            name: String::from("graph"),
        })
    }

    /// Builds an unweighted undirected graph: each listed edge is stored in
    /// both orientations (self-loops once).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is `>= n`.
    pub fn undirected_from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let mut coo = CooMatrix::new(n, n);
        for &(u, v) in edges {
            coo.push(u, v, 1.0)
                .map_err(|_| GraphError::NodeOutOfRange {
                    node: u.max(v),
                    num_nodes: n,
                })?;
            if u != v {
                coo.push(v, u, 1.0).expect("validated above");
            }
        }
        Ok(Self {
            adj: coo.to_csr_unweighted(),
            name: String::from("graph"),
        })
    }

    /// Sets a human-readable name (dataset id) on the graph.
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.rows()
    }

    /// Number of stored directed edges (nonzeros of the adjacency).
    pub fn num_edges(&self) -> usize {
        self.adj.nnz()
    }

    /// The adjacency matrix.
    pub fn adj(&self) -> &CsrMatrix {
        &self.adj
    }

    /// Whether the adjacency stores edge weights.
    pub fn is_weighted(&self) -> bool {
        self.adj.is_weighted()
    }

    /// A 64-bit structural fingerprint of the graph: an FNV-1a hash over the
    /// node count, the full CSR structure (`indptr` + `indices`), and the
    /// edge-weight bits when present.
    ///
    /// Two graphs with the same fingerprint have (modulo 64-bit collisions)
    /// identical adjacency, so everything GRANII derives from a graph —
    /// input features, selection, executed output — is identical too. That
    /// makes the fingerprint a sound cache key for per-graph artifacts like
    /// bound execution plans; the graph's display name is deliberately
    /// excluded. Cost is one O(n + m) pass, far cheaper than featurization.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(&(self.num_nodes() as u64).to_le_bytes());
        for &p in self.adj.indptr() {
            mix(&p.to_le_bytes());
        }
        for &i in self.adj.indices() {
            mix(&i.to_le_bytes());
        }
        if let Some(values) = self.adj.values() {
            mix(&[1]);
            for &v in values {
                mix(&v.to_bits().to_le_bytes());
            }
        } else {
            mix(&[0]);
        }
        h
    }

    /// Average degree (`edges / nodes`).
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Adjacency density (`nnz / n^2`).
    pub fn density(&self) -> f64 {
        self.adj.density()
    }

    /// Out-degrees as `f32`.
    pub fn out_degrees(&self) -> Vec<f32> {
        self.adj.out_degrees()
    }

    /// In-degrees as `f32`.
    pub fn in_degrees(&self) -> Vec<f32> {
        self.adj.in_degrees()
    }

    /// Row-length distribution statistics of the adjacency.
    pub fn row_stats(&self) -> RowStats {
        self.adj.row_stats()
    }

    /// Returns `Ã`: this graph with self-loops added on every node (GCN's
    /// convention). Existing self-loops are not duplicated.
    pub fn add_self_loops(&self) -> Graph {
        let n = self.num_nodes();
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let row = self.adj.row_indices(i);
            let vals = self.adj.row_values(i);
            for (off, &j) in row.iter().enumerate() {
                let v = vals.map_or(1.0, |v| v[off]);
                coo.push(i, j as usize, v).expect("in range");
            }
            if !row.contains(&(i as u32)) {
                coo.push(i, i, 1.0).expect("in range");
            }
        }
        let csr = if self.is_weighted() {
            coo.to_csr()
        } else {
            coo.to_csr_unweighted()
        };
        Graph {
            adj: csr,
            name: format!("{}+I", self.name),
        }
    }

    /// The GCN degree normalizer `D̃^{-1/2}` of this graph (out-degrees).
    pub fn deg_inv_sqrt(&self) -> DiagMatrix {
        DiagMatrix::from_vec(self.out_degrees()).inv_sqrt()
    }

    /// The induced subgraph on `nodes` (relabelled 0..len), used by sampling.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] for invalid node ids.
    pub fn induced_subgraph(&self, nodes: &[usize]) -> Result<Graph> {
        let n = self.num_nodes();
        let mut remap = vec![usize::MAX; n];
        for (new, &old) in nodes.iter().enumerate() {
            if old >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: old,
                    num_nodes: n,
                });
            }
            remap[old] = new;
        }
        let mut coo = CooMatrix::new(nodes.len(), nodes.len());
        for (new_u, &old_u) in nodes.iter().enumerate() {
            let row = self.adj.row_indices(old_u);
            let vals = self.adj.row_values(old_u);
            for (off, &old_v) in row.iter().enumerate() {
                let new_v = remap[old_v as usize];
                if new_v != usize::MAX {
                    let v = vals.map_or(1.0, |v| v[off]);
                    coo.push(new_u, new_v, v).expect("in range");
                }
            }
        }
        let csr = if self.is_weighted() {
            coo.to_csr()
        } else {
            coo.to_csr_unweighted()
        };
        Ok(Graph {
            adj: csr,
            name: format!("{}[sub]", self.name),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_csr_requires_square() {
        let m = CooMatrix::from_entries(2, 3, &[(0, 1, 1.0)])
            .unwrap()
            .to_csr();
        assert!(matches!(
            Graph::from_csr(m),
            Err(GraphError::NotSquare { .. })
        ));
    }

    #[test]
    fn from_edges_validates_range() {
        assert!(matches!(
            Graph::from_edges(2, &[(0, 5)]),
            Err(GraphError::NodeOutOfRange { node: 5, .. })
        ));
    }

    #[test]
    fn undirected_stores_both_orientations_once() {
        let g = Graph::undirected_from_edges(3, &[(0, 1), (1, 1)]).unwrap();
        assert_eq!(g.num_edges(), 3); // (0,1), (1,0), (1,1)
        assert!(g.adj().is_pattern_symmetric());
    }

    #[test]
    fn add_self_loops_is_idempotent_on_pattern() {
        let g = Graph::undirected_from_edges(3, &[(0, 1)]).unwrap();
        let g1 = g.add_self_loops();
        assert_eq!(g1.num_edges(), 2 + 3);
        let g2 = g1.add_self_loops();
        assert_eq!(g2.num_edges(), g1.num_edges());
    }

    #[test]
    fn deg_inv_sqrt_matches_degrees() {
        let g = Graph::undirected_from_edges(3, &[(0, 1), (0, 2)]).unwrap();
        let d = g.deg_inv_sqrt();
        assert!((d.values()[0] - 1.0 / (2.0f32).sqrt()).abs() < 1e-6);
        assert_eq!(d.values()[1], 1.0);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = Graph::undirected_from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let sub = g.induced_subgraph(&[1, 2]).unwrap();
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(sub.num_edges(), 2); // 1-2 in both directions
        assert_eq!(sub.adj().get(0, 1), 1.0);
        assert!(g.induced_subgraph(&[9]).is_err());
    }

    #[test]
    fn isolated_nodes_have_zero_norm() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let d = g.deg_inv_sqrt();
        assert_eq!(d.values()[2], 0.0);
    }

    #[test]
    fn fingerprint_identifies_structure_not_name() {
        let g = Graph::undirected_from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let same = Graph::undirected_from_edges(4, &[(0, 1), (1, 2), (2, 3)])
            .unwrap()
            .with_name("renamed");
        assert_eq!(g.fingerprint(), same.fingerprint(), "name must not matter");
        assert_eq!(g.fingerprint(), g.fingerprint(), "stable across calls");

        // One extra edge, one fewer node, or a different wiring all change it.
        let extra = Graph::undirected_from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let smaller = Graph::undirected_from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let rewired = Graph::undirected_from_edges(4, &[(0, 2), (1, 2), (2, 3)]).unwrap();
        assert_ne!(g.fingerprint(), extra.fingerprint());
        assert_ne!(g.fingerprint(), smaller.fingerprint());
        assert_ne!(g.fingerprint(), rewired.fingerprint());

        // Same pattern, different node count (trailing isolated node).
        let padded = Graph::undirected_from_edges(5, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_ne!(g.fingerprint(), padded.fingerprint());
    }

    #[test]
    fn fingerprint_sees_edge_weights() {
        let unweighted = CooMatrix::from_entries(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)])
            .unwrap()
            .to_csr()
            .drop_values();
        let weighted = CooMatrix::from_entries(2, 2, &[(0, 1, 2.5), (1, 0, 1.0)])
            .unwrap()
            .to_csr();
        let gu = Graph::from_csr(unweighted).unwrap();
        let gw = Graph::from_csr(weighted).unwrap();
        assert_ne!(gu.fingerprint(), gw.fingerprint());
    }
}
