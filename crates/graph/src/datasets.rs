//! Synthetic stand-ins for the paper's evaluation graphs (Table II).
//!
//! The paper evaluates on six graphs downloaded from DGL, SuiteSparse, and
//! OGB. Those datasets are not available offline, so each is replaced by a
//! deterministic generator matching its structural class, with node counts
//! scaled down so that CPU-side work stays tractable (see `DESIGN.md` §2).
//! The property GRANII's decisions key on — the *relative density ordering*
//! across the suite (MC > RD > OP > AU > CA > BL) — is preserved at every
//! scale.

use serde::{Deserialize, Serialize};

use crate::{generators, Graph, Result};

/// The evaluation graphs of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dataset {
    /// `RD` — Reddit (DGL): dense power-law social graph.
    Reddit,
    /// `CA` — com-Amazon (SuiteSparse): sparse community graph.
    ComAmazon,
    /// `MC` — mycielskian17 (SuiteSparse): extremely dense, triangle-free.
    Mycielskian17,
    /// `BL` — belgium_osm (SuiteSparse): road network, degree ≤ 4.
    BelgiumOsm,
    /// `AU` — coAuthorsCiteseer (SuiteSparse): co-authorship communities.
    CoAuthorsCiteseer,
    /// `OP` — ogbn-products (OGB): large power-law co-purchase graph.
    OgbnProducts,
}

/// How large a stand-in to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// A few hundred nodes — unit/integration tests.
    Tiny,
    /// Tens of thousands of nodes — the benchmark harness default.
    Small,
}

impl Dataset {
    /// All datasets in the paper's Table II order.
    pub const ALL: [Dataset; 6] = [
        Dataset::Reddit,
        Dataset::ComAmazon,
        Dataset::Mycielskian17,
        Dataset::BelgiumOsm,
        Dataset::CoAuthorsCiteseer,
        Dataset::OgbnProducts,
    ];

    /// The two-letter code used in the paper's figures.
    pub fn code(self) -> &'static str {
        match self {
            Dataset::Reddit => "RD",
            Dataset::ComAmazon => "CA",
            Dataset::Mycielskian17 => "MC",
            Dataset::BelgiumOsm => "BL",
            Dataset::CoAuthorsCiteseer => "AU",
            Dataset::OgbnProducts => "OP",
        }
    }

    /// Full name as listed in Table II.
    pub fn paper_name(self) -> &'static str {
        match self {
            Dataset::Reddit => "Reddit",
            Dataset::ComAmazon => "com-Amazon",
            Dataset::Mycielskian17 => "mycielskian17",
            Dataset::BelgiumOsm => "belgium_osm",
            Dataset::CoAuthorsCiteseer => "coAuthorsCiteseer",
            Dataset::OgbnProducts => "ogbn-products",
        }
    }

    /// Node and edge counts of the *original* dataset (Table II), for
    /// documentation and scale-factor reporting.
    pub fn paper_size(self) -> (usize, usize) {
        match self {
            Dataset::Reddit => (232_965, 114_615_892),
            Dataset::ComAmazon => (334_863, 2_186_607),
            Dataset::Mycielskian17 => (98_303, 100_245_742),
            Dataset::BelgiumOsm => (1_441_295, 4_541_235),
            Dataset::CoAuthorsCiteseer => (227_320, 1_855_588),
            Dataset::OgbnProducts => (2_449_029, 126_167_053),
        }
    }

    /// Generates the stand-in graph at the requested scale.
    ///
    /// # Errors
    ///
    /// Propagates generator errors (parameter validation only; the built-in
    /// parameters are valid).
    pub fn load(self, scale: Scale) -> Result<Graph> {
        let seed = 0xC60_u64 + self as u64;
        let g = match (self, scale) {
            (Dataset::Reddit, Scale::Small) => generators::power_law(16_384, 60, seed)?,
            (Dataset::Reddit, Scale::Tiny) => generators::power_law(512, 16, seed)?,
            (Dataset::ComAmazon, Scale::Small) => generators::community(400, 50, 0.10, 3, seed)?,
            (Dataset::ComAmazon, Scale::Tiny) => generators::community(16, 20, 0.30, 2, seed)?,
            (Dataset::Mycielskian17, Scale::Small) => generators::mycielskian(13)?,
            (Dataset::Mycielskian17, Scale::Tiny) => generators::mycielskian(9)?,
            (Dataset::BelgiumOsm, Scale::Small) => generators::grid_2d(200, 160)?,
            (Dataset::BelgiumOsm, Scale::Tiny) => generators::grid_2d(20, 16)?,
            (Dataset::CoAuthorsCiteseer, Scale::Small) => {
                generators::community(800, 25, 0.30, 4, seed)?
            }
            (Dataset::CoAuthorsCiteseer, Scale::Tiny) => {
                generators::community(25, 12, 0.35, 2, seed)?
            }
            (Dataset::OgbnProducts, Scale::Small) => generators::power_law(40_000, 25, seed)?,
            (Dataset::OgbnProducts, Scale::Tiny) => generators::power_law(1024, 12, seed)?,
        };
        Ok(g.with_name(format!("{}-sim", self.code())))
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_datasets_load_and_are_named() {
        for d in Dataset::ALL {
            let g = d.load(Scale::Tiny).unwrap();
            assert!(g.num_nodes() > 0, "{d}");
            assert!(g.num_edges() > 0, "{d}");
            assert!(g.name().contains(d.code()));
            assert!(g.adj().is_pattern_symmetric(), "{d} must be undirected");
        }
    }

    #[test]
    fn density_ordering_matches_paper_at_tiny_scale() {
        // Paper avg degrees: MC 1020 > RD 492 > OP 51 > AU 8.2 > CA 6.5 > BL 3.2.
        let avg = |d: Dataset| d.load(Scale::Tiny).unwrap().avg_degree();
        let (mc, rd, op, au, ca, bl) = (
            avg(Dataset::Mycielskian17),
            avg(Dataset::Reddit),
            avg(Dataset::OgbnProducts),
            avg(Dataset::CoAuthorsCiteseer),
            avg(Dataset::ComAmazon),
            avg(Dataset::BelgiumOsm),
        );
        assert!(mc > rd, "MC {mc} vs RD {rd}");
        assert!(rd > op, "RD {rd} vs OP {op}");
        assert!(op > bl, "OP {op} vs BL {bl}");
        assert!(au > bl, "AU {au} vs BL {bl}");
        assert!(ca > bl, "CA {ca} vs BL {bl}");
    }

    #[test]
    fn small_scale_is_larger_than_tiny() {
        let t = Dataset::Reddit.load(Scale::Tiny).unwrap();
        let s = Dataset::Reddit.load(Scale::Small).unwrap();
        assert!(s.num_nodes() > 10 * t.num_nodes());
    }

    #[test]
    fn paper_sizes_are_table_ii() {
        assert_eq!(Dataset::Reddit.paper_size(), (232_965, 114_615_892));
        assert_eq!(Dataset::OgbnProducts.paper_size().1, 126_167_053);
    }
}
