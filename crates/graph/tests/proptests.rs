//! Property-based tests for the graph substrate.

use granii_graph::{generators, io, sampling, Graph, GraphFeatures};
use proptest::prelude::*;

proptest! {
    /// Undirected construction always yields a symmetric pattern.
    #[test]
    fn undirected_is_symmetric(n in 2usize..40, edges in proptest::collection::vec((0usize..40, 0usize..40), 0..60)) {
        let edges: Vec<_> = edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        let g = Graph::undirected_from_edges(n, &edges).unwrap();
        prop_assert!(g.adj().is_pattern_symmetric());
    }

    /// Self-loop insertion adds exactly the missing diagonal entries.
    #[test]
    fn self_loops_add_diagonal(n in 1usize..30, edges in proptest::collection::vec((0usize..30, 0usize..30), 0..40)) {
        let edges: Vec<_> = edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let with = g.add_self_loops();
        for i in 0..n {
            prop_assert!(with.adj().get(i, i) != 0.0, "missing self loop at {i}");
        }
        let diag_present = (0..n).filter(|&i| g.adj().get(i, i) != 0.0).count();
        prop_assert_eq!(with.num_edges(), g.num_edges() + (n - diag_present));
    }

    /// Neighbor sampling never exceeds the fanout and only keeps real edges.
    #[test]
    fn sampling_respects_fanout(seed in 0u64..500, fanout in 1usize..6) {
        let g = generators::power_law(120, 5, 7).unwrap();
        let s = sampling::sample_neighbors(&g, fanout, seed).unwrap();
        prop_assert!(s.row_stats().max as usize <= fanout.max(1));
        for u in 0..s.num_nodes() {
            for &v in s.adj().row_indices(u) {
                prop_assert!(g.adj().row_indices(u).contains(&v));
            }
        }
    }

    /// Induced subgraphs keep degrees bounded by the original.
    #[test]
    fn subgraph_degrees_bounded(seed in 0u64..500, size in 1usize..60) {
        let g = generators::power_law(80, 4, 3).unwrap();
        let size = size.min(g.num_nodes());
        let s = sampling::sample_node_subgraph(&g, size, seed).unwrap();
        prop_assert_eq!(s.num_nodes(), size);
        prop_assert!(s.num_edges() <= g.num_edges());
    }

    /// Text and binary IO round-trip arbitrary generated graphs.
    #[test]
    fn io_round_trips(n in 2usize..30, edges in proptest::collection::vec((0usize..30, 0usize..30), 0..50)) {
        let edges: Vec<_> = edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut text = Vec::new();
        io::write_edge_list(&g, &mut text).unwrap();
        let t = io::read_edge_list(text.as_slice()).unwrap();
        prop_assert_eq!(t.adj().indices(), g.adj().indices());
        let b = io::from_bytes(io::to_bytes(&g)).unwrap();
        prop_assert_eq!(b.adj().indptr(), g.adj().indptr());
    }

    /// Feature extraction is total and produces finite values.
    #[test]
    fn features_are_finite(n in 1usize..50, edges in proptest::collection::vec((0usize..50, 0usize..50), 0..80)) {
        let edges: Vec<_> = edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let f = GraphFeatures::extract(&g).to_vec();
        prop_assert!(f.iter().all(|v| v.is_finite()));
        prop_assert_eq!(f.len(), GraphFeatures::LEN);
    }
}
