//! Regression quality metrics used to evaluate the cost models.

/// Root mean squared error.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn rmse(preds: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(preds.len(), labels.len(), "length mismatch");
    assert!(!preds.is_empty(), "empty inputs");
    let mse = preds
        .iter()
        .zip(labels)
        .map(|(p, y)| (p - y) * (p - y))
        .sum::<f64>()
        / preds.len() as f64;
    mse.sqrt()
}

/// Mean absolute percentage error, skipping zero labels.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mape(preds: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(preds.len(), labels.len(), "length mismatch");
    let mut sum = 0.0;
    let mut count = 0usize;
    for (p, y) in preds.iter().zip(labels) {
        if *y != 0.0 {
            sum += ((p - y) / y).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Spearman rank correlation.
///
/// The metric that matters for GRANII: cost models only need to *rank*
/// candidate compositions correctly, not predict absolute latency.
///
/// # Panics
///
/// Panics if the slices have different lengths or fewer than 2 elements.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(a.len() >= 2, "need at least two points");
    let ra = ranks(a);
    let rb = ranks(b);
    pearson(&ra, &rb)
}

fn ranks(v: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&i, &j| v[i].partial_cmp(&v[j]).expect("finite values"));
    let mut out = vec![0.0; v.len()];
    let mut i = 0;
    while i < idx.len() {
        // Average ranks over ties.
        let mut j = i;
        while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0;
        for k in i..=j {
            out[idx[k]] = avg;
        }
        i = j + 1;
    }
    out
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_of_perfect_fit_is_zero() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn rmse_known_value() {
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_labels() {
        let m = mape(&[1.1, 5.0], &[1.0, 0.0]);
        assert!((m - 0.1).abs() < 1e-9);
        assert_eq!(mape(&[1.0], &[0.0]), 0.0);
    }

    #[test]
    fn spearman_detects_monotone_relation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 100.0, 1000.0, 10000.0]; // nonlinear but monotone
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        let c = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 2.0, 3.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_of_constant_is_zero() {
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }
}
