use serde::{Deserialize, Serialize};

use crate::Dataset;

/// Hyperparameters of a single regression tree (XGBoost nomenclature).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum hessian mass in a child for a split to be considered.
    pub min_child_weight: f64,
    /// L2 regularization on leaf weights (`lambda`).
    pub lambda: f64,
    /// Minimum gain for a split to be kept (`gamma`).
    pub gamma: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 5,
            min_child_weight: 1.0,
            lambda: 1.0,
            gamma: 0.0,
        }
    }
}

/// A node of a fitted tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum Node {
    /// Terminal node carrying the leaf weight.
    Leaf {
        /// Additive contribution of this leaf.
        weight: f64,
    },
    /// Binary split: `row[feature] < threshold` goes left.
    Split {
        /// Feature index tested.
        feature: usize,
        /// Split threshold (midpoint of adjacent sorted values).
        threshold: f64,
        /// Index of the left child in the node arena.
        left: u32,
        /// Index of the right child in the node arena.
        right: u32,
    },
}

/// A regression tree fitted to a second-order (gradient/hessian) objective by
/// exact greedy split search.
///
/// Trees are normally grown by [`crate::GbtRegressor`]; fitting one directly
/// is useful for tests and diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

struct Builder<'a> {
    data: &'a Dataset,
    grads: &'a [f64],
    hess: &'a [f64],
    params: TreeParams,
    features: &'a [usize],
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fits a tree to the given gradients/hessians over `rows`, considering
    /// only `features` for splits (row/feature subsampling happens upstream).
    ///
    /// # Panics
    ///
    /// Panics if `grads`/`hess` lengths differ from the dataset row count or a
    /// row index is out of bounds (internal misuse; the boosting driver always
    /// passes consistent arrays).
    pub fn fit(
        data: &Dataset,
        grads: &[f64],
        hess: &[f64],
        params: TreeParams,
        rows: &[usize],
        features: &[usize],
    ) -> Self {
        assert_eq!(
            grads.len(),
            data.num_rows(),
            "gradient array length mismatch"
        );
        assert_eq!(hess.len(), data.num_rows(), "hessian array length mismatch");
        let mut b = Builder {
            data,
            grads,
            hess,
            params,
            features,
            nodes: Vec::new(),
        };
        let mut rows = rows.to_vec();
        b.build(&mut rows, 0);
        Self { nodes: b.nodes }
    }

    /// Predicts the additive contribution of this tree for one feature row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut idx = 0usize;
        loop {
            match self.nodes[idx] {
                Node::Leaf { weight } => return weight,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[feature] < threshold {
                        left as usize
                    } else {
                        right as usize
                    };
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], idx: usize) -> usize {
            match nodes[idx] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + rec(nodes, left as usize).max(rec(nodes, right as usize))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }
}

impl Builder<'_> {
    /// Builds the subtree over `rows`, returning its node index.
    fn build(&mut self, rows: &mut [usize], depth: usize) -> u32 {
        let (g_sum, h_sum) = rows.iter().fold((0.0, 0.0), |(g, h), &r| {
            (g + self.grads[r], h + self.hess[r])
        });
        let leaf_weight = -g_sum / (h_sum + self.params.lambda);

        if depth >= self.params.max_depth || rows.len() < 2 {
            return self.push(Node::Leaf {
                weight: leaf_weight,
            });
        }
        let Some((feature, threshold)) = self.best_split(rows, g_sum, h_sum) else {
            return self.push(Node::Leaf {
                weight: leaf_weight,
            });
        };

        // Partition in place: rows with value < threshold go first.
        let mut mid = 0usize;
        for i in 0..rows.len() {
            if self.data.row(rows[i])[feature] < threshold {
                rows.swap(i, mid);
                mid += 1;
            }
        }
        debug_assert!(mid > 0 && mid < rows.len(), "split must be non-trivial");

        let node = self.push(Node::Leaf { weight: 0.0 }); // placeholder
        let (left_rows, right_rows) = rows.split_at_mut(mid);
        let left = self.build(left_rows, depth + 1);
        let right = self.build(right_rows, depth + 1);
        self.nodes[node as usize] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        node
    }

    fn push(&mut self, node: Node) -> u32 {
        self.nodes.push(node);
        (self.nodes.len() - 1) as u32
    }

    /// Exact greedy split search: for every candidate feature, sort the rows
    /// by value and scan the prefix gradient/hessian sums.
    fn best_split(&self, rows: &[usize], g_sum: f64, h_sum: f64) -> Option<(usize, f64)> {
        let lambda = self.params.lambda;
        let parent_score = g_sum * g_sum / (h_sum + lambda);
        let mut best: Option<(f64, usize, f64)> = None;
        let mut order: Vec<usize> = Vec::with_capacity(rows.len());
        for &f in self.features {
            order.clear();
            order.extend_from_slice(rows);
            order.sort_unstable_by(|&a, &b| {
                self.data.row(a)[f]
                    .partial_cmp(&self.data.row(b)[f])
                    .expect("finite features")
            });
            let (mut gl, mut hl) = (0.0f64, 0.0f64);
            for w in 0..order.len() - 1 {
                let r = order[w];
                gl += self.grads[r];
                hl += self.hess[r];
                let v = self.data.row(r)[f];
                let v_next = self.data.row(order[w + 1])[f];
                if v == v_next {
                    continue; // cannot split between equal values
                }
                let (gr, hr) = (g_sum - gl, h_sum - hl);
                if hl < self.params.min_child_weight || hr < self.params.min_child_weight {
                    continue;
                }
                let gain = 0.5 * (gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent_score)
                    - self.params.gamma;
                if gain > 0.0 && best.is_none_or(|(bg, _, _)| gain > bg) {
                    best = Some((gain, f, 0.5 * (v + v_next)));
                }
            }
        }
        best.map(|(_, f, t)| (f, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Gradients for squared loss starting from prediction 0: g = -y, h = 1.
    fn sq_grads(labels: &[f64]) -> (Vec<f64>, Vec<f64>) {
        (labels.iter().map(|y| -y).collect(), vec![1.0; labels.len()])
    }

    fn fit_all(data: &Dataset, params: TreeParams) -> RegressionTree {
        let (g, h) = sq_grads(data.labels());
        let rows: Vec<usize> = (0..data.num_rows()).collect();
        let features: Vec<usize> = (0..data.num_features()).collect();
        RegressionTree::fit(data, &g, &h, params, &rows, &features)
    }

    #[test]
    fn splits_a_step_function() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let labels: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 10.0 }).collect();
        let data = Dataset::from_rows(&rows, &labels).unwrap();
        let tree = fit_all(
            &data,
            TreeParams {
                lambda: 0.0,
                ..TreeParams::default()
            },
        );
        assert!((tree.predict(&[3.0]) - 0.0).abs() < 1e-9);
        assert!((tree.predict(&[15.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn depth_zero_yields_single_leaf_mean() {
        let rows: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64]).collect();
        let labels = vec![1.0, 2.0, 3.0, 4.0];
        let data = Dataset::from_rows(&rows, &labels).unwrap();
        let tree = fit_all(
            &data,
            TreeParams {
                max_depth: 0,
                lambda: 0.0,
                ..TreeParams::default()
            },
        );
        assert_eq!(tree.num_nodes(), 1);
        assert!((tree.predict(&[0.0]) - 2.5).abs() < 1e-9); // mean of labels
    }

    #[test]
    fn lambda_shrinks_leaf_weights() {
        let rows = vec![vec![0.0], vec![1.0]];
        let labels = vec![4.0, 4.0];
        let data = Dataset::from_rows(&rows, &labels).unwrap();
        let t0 = fit_all(
            &data,
            TreeParams {
                max_depth: 0,
                lambda: 0.0,
                ..TreeParams::default()
            },
        );
        let t1 = fit_all(
            &data,
            TreeParams {
                max_depth: 0,
                lambda: 2.0,
                ..TreeParams::default()
            },
        );
        assert!((t0.predict(&[0.0]) - 4.0).abs() < 1e-9);
        assert!((t1.predict(&[0.0]) - 2.0).abs() < 1e-9); // 8 / (2 + 2)
    }

    #[test]
    fn gamma_blocks_weak_splits() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        // Tiny signal.
        let labels: Vec<f64> = (0..10).map(|i| if i < 5 { 0.0 } else { 0.01 }).collect();
        let data = Dataset::from_rows(&rows, &labels).unwrap();
        let strict = fit_all(
            &data,
            TreeParams {
                gamma: 10.0,
                ..TreeParams::default()
            },
        );
        assert_eq!(strict.num_nodes(), 1, "gamma should suppress the split");
        let loose = fit_all(
            &data,
            TreeParams {
                gamma: 0.0,
                lambda: 0.0,
                ..TreeParams::default()
            },
        );
        assert!(loose.num_nodes() > 1);
    }

    #[test]
    fn respects_max_depth() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let labels: Vec<f64> = (0..64).map(|i| (i % 7) as f64).collect();
        let data = Dataset::from_rows(&rows, &labels).unwrap();
        for depth in [1usize, 2, 3] {
            let tree = fit_all(
                &data,
                TreeParams {
                    max_depth: depth,
                    lambda: 0.0,
                    min_child_weight: 0.0,
                    gamma: 0.0,
                },
            );
            assert!(
                tree.depth() <= depth,
                "depth {} > limit {depth}",
                tree.depth()
            );
        }
    }

    #[test]
    fn constant_feature_cannot_split() {
        let rows = vec![vec![1.0]; 8];
        let labels: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let data = Dataset::from_rows(&rows, &labels).unwrap();
        let tree = fit_all(&data, TreeParams::default());
        assert_eq!(tree.num_nodes(), 1);
    }

    #[test]
    fn two_feature_interaction() {
        // y depends on feature 1 only; the tree must pick it over feature 0.
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 4) as f64, if i % 2 == 0 { 0.0 } else { 1.0 }])
            .collect();
        let labels: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { -5.0 } else { 5.0 })
            .collect();
        let data = Dataset::from_rows(&rows, &labels).unwrap();
        let tree = fit_all(
            &data,
            TreeParams {
                lambda: 0.0,
                ..TreeParams::default()
            },
        );
        assert!((tree.predict(&[0.0, 0.0]) + 5.0).abs() < 1e-6);
        assert!((tree.predict(&[0.0, 1.0]) - 5.0).abs() < 1e-6);
    }
}
