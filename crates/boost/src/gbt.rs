use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::tree::{RegressionTree, TreeParams};
use crate::{BoostError, Dataset, Result};

/// Hyperparameters of the boosted ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbtParams {
    /// Maximum number of boosting rounds.
    pub num_rounds: usize,
    /// Shrinkage (learning rate) applied to each tree's contribution.
    pub learning_rate: f64,
    /// Per-tree hyperparameters.
    pub tree: TreeParams,
    /// Fraction of rows sampled (without replacement) per round.
    pub subsample: f64,
    /// Fraction of features considered per round.
    pub colsample: f64,
    /// Stop if validation RMSE has not improved for this many rounds
    /// (0 disables early stopping).
    pub early_stopping_rounds: usize,
    /// RNG seed for row/feature subsampling.
    pub seed: u64,
}

impl Default for GbtParams {
    fn default() -> Self {
        Self {
            num_rounds: 100,
            learning_rate: 0.15,
            tree: TreeParams::default(),
            subsample: 1.0,
            colsample: 1.0,
            early_stopping_rounds: 10,
            seed: 0,
        }
    }
}

impl GbtParams {
    /// Validates hyperparameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`BoostError::InvalidParameter`] for out-of-range values.
    pub fn validate(&self) -> Result<()> {
        if self.num_rounds == 0 {
            return Err(BoostError::InvalidParameter(
                "num_rounds must be > 0".into(),
            ));
        }
        if !(self.learning_rate > 0.0 && self.learning_rate <= 1.0) {
            return Err(BoostError::InvalidParameter(
                "learning_rate must be in (0, 1]".into(),
            ));
        }
        for (name, v) in [("subsample", self.subsample), ("colsample", self.colsample)] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(BoostError::InvalidParameter(format!(
                    "{name} must be in (0, 1]"
                )));
            }
        }
        Ok(())
    }
}

/// A gradient-boosted regression-tree ensemble (squared-error objective).
///
/// This is the model class GRANII uses for its per-primitive latency cost
/// models (paper §IV-E2). Serializable with serde so the offline stage can
/// persist trained models for the online runtime.
///
/// # Example
///
/// ```
/// use granii_boost::{Dataset, GbtParams, GbtRegressor};
///
/// # fn main() -> Result<(), granii_boost::BoostError> {
/// let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![(i % 10) as f64, (i / 10) as f64]).collect();
/// let ys: Vec<f64> = xs.iter().map(|r| r[0] * 2.0 + r[1]).collect();
/// let model = GbtRegressor::fit(&Dataset::from_rows(&xs, &ys)?, &GbtParams::default())?;
/// assert!((model.predict(&[5.0, 3.0]) - 13.0).abs() < 1.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GbtRegressor {
    base_score: f64,
    learning_rate: f64,
    trees: Vec<RegressionTree>,
}

impl GbtRegressor {
    /// Fits an ensemble on `train`, without a validation set (early stopping
    /// disabled unless `params.early_stopping_rounds` is 0 anyway).
    ///
    /// # Errors
    ///
    /// Returns [`BoostError::InvalidParameter`] for bad hyperparameters.
    pub fn fit(train: &Dataset, params: &GbtParams) -> Result<Self> {
        Self::fit_with_validation(train, None, params)
    }

    /// Fits an ensemble, optionally early-stopping on a validation set.
    ///
    /// # Errors
    ///
    /// Returns [`BoostError::InvalidParameter`] for bad hyperparameters.
    pub fn fit_with_validation(
        train: &Dataset,
        valid: Option<&Dataset>,
        params: &GbtParams,
    ) -> Result<Self> {
        params.validate()?;
        let n = train.num_rows();
        let nf = train.num_features();
        let _span = granii_telemetry::span!("boost.fit", rows = n, features = nf);
        let base_score = train.labels().iter().sum::<f64>() / n as f64;
        let mut model = Self {
            base_score,
            learning_rate: params.learning_rate,
            trees: Vec::new(),
        };

        let mut preds = vec![base_score; n];
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut best_rmse = f64::INFINITY;
        let mut best_len = 0usize;
        let mut since_best = 0usize;

        for _round in 0..params.num_rounds {
            // Squared loss: g = pred - y, h = 1.
            let grads: Vec<f64> = preds
                .iter()
                .zip(train.labels())
                .map(|(p, y)| p - y)
                .collect();
            let hess = vec![1.0f64; n];

            let rows = sample_indices(n, params.subsample, &mut rng);
            let features = sample_indices(nf, params.colsample, &mut rng);
            let tree = RegressionTree::fit(train, &grads, &hess, params.tree, &rows, &features);

            for (i, pred) in preds.iter_mut().enumerate() {
                *pred += params.learning_rate * tree.predict(train.row(i));
            }
            model.trees.push(tree);

            if let (Some(valid), true) = (valid, params.early_stopping_rounds > 0) {
                let rmse = crate::metrics::rmse(
                    &(0..valid.num_rows())
                        .map(|i| model.predict(valid.row(i)))
                        .collect::<Vec<_>>(),
                    valid.labels(),
                );
                // Require a relative improvement; asymptotic 1e-9 gains should
                // not keep the ensemble growing.
                if rmse < best_rmse * (1.0 - 1e-4) {
                    best_rmse = rmse;
                    best_len = model.trees.len();
                    since_best = 0;
                } else {
                    since_best += 1;
                    if since_best >= params.early_stopping_rounds {
                        model.trees.truncate(best_len);
                        break;
                    }
                }
            }
        }
        Ok(model)
    }

    /// Predicts the label for one feature row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        self.base_score
            + self.learning_rate * self.trees.iter().map(|t| t.predict(row)).sum::<f64>()
    }

    /// Number of trees in the fitted ensemble.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

/// Samples `ceil(fraction * n)` distinct indices (all of them when
/// `fraction == 1.0`, keeping determinism and order).
fn sample_indices(n: usize, fraction: f64, rng: &mut StdRng) -> Vec<usize> {
    if fraction >= 1.0 {
        return (0..n).collect();
    }
    let take = ((fraction * n as f64).ceil() as usize).clamp(1, n);
    let mut ids: Vec<usize> = (0..n).collect();
    for i in 0..take {
        let j = rng.gen_range(i..n);
        ids.swap(i, j);
    }
    ids.truncate(take);
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    fn synthetic(n: usize, f: impl Fn(f64, f64) -> f64) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i % 17) as f64, ((i * 7) % 13) as f64])
            .collect();
        let labels: Vec<f64> = rows.iter().map(|r| f(r[0], r[1])).collect();
        Dataset::from_rows(&rows, &labels).unwrap()
    }

    #[test]
    fn fits_linear_function() {
        let data = synthetic(400, |a, b| 3.0 * a - 2.0 * b + 1.0);
        let model = GbtRegressor::fit(&data, &GbtParams::default()).unwrap();
        let preds: Vec<f64> = (0..data.num_rows())
            .map(|i| model.predict(data.row(i)))
            .collect();
        assert!(metrics::rmse(&preds, data.labels()) < 1.0);
    }

    #[test]
    fn fits_multiplicative_interaction() {
        // Latency-like target: product of sizes (cost models face this shape).
        let data = synthetic(400, |a, b| a * b);
        let model = GbtRegressor::fit(&data, &GbtParams::default()).unwrap();
        let preds: Vec<f64> = (0..data.num_rows())
            .map(|i| model.predict(data.row(i)))
            .collect();
        let spearman = metrics::spearman(&preds, data.labels());
        assert!(spearman > 0.95, "rank correlation {spearman} too low");
    }

    #[test]
    fn more_rounds_reduce_training_error() {
        let data = synthetic(300, |a, b| (a - b).abs());
        let small = GbtRegressor::fit(
            &data,
            &GbtParams {
                num_rounds: 3,
                early_stopping_rounds: 0,
                ..GbtParams::default()
            },
        )
        .unwrap();
        let large = GbtRegressor::fit(
            &data,
            &GbtParams {
                num_rounds: 60,
                early_stopping_rounds: 0,
                ..GbtParams::default()
            },
        )
        .unwrap();
        let err = |m: &GbtRegressor| {
            let preds: Vec<f64> = (0..data.num_rows())
                .map(|i| m.predict(data.row(i)))
                .collect();
            metrics::rmse(&preds, data.labels())
        };
        assert!(err(&large) < err(&small));
    }

    #[test]
    fn early_stopping_truncates_ensemble() {
        // A noisy target: once the signal is learned, further rounds chase
        // noise and validation error stops improving.
        let noise =
            |a: f64, b: f64| (((a * 31.0 + b * 17.0) as u64 * 2654435761) % 97) as f64 / 10.0;
        let data = synthetic(200, |a, b| a + noise(a, b));
        let (train, valid) = data.split(0.25).unwrap();
        let params = GbtParams {
            num_rounds: 200,
            early_stopping_rounds: 5,
            ..GbtParams::default()
        };
        let model = GbtRegressor::fit_with_validation(&train, Some(&valid), &params).unwrap();
        assert!(model.num_trees() < 200, "early stopping should kick in");
    }

    #[test]
    fn subsampling_is_deterministic_per_seed() {
        let data = synthetic(200, |a, b| a + b);
        let params = GbtParams {
            subsample: 0.7,
            colsample: 0.5,
            ..GbtParams::default()
        };
        let m1 = GbtRegressor::fit(&data, &params).unwrap();
        let m2 = GbtRegressor::fit(&data, &params).unwrap();
        assert_eq!(m1, m2);
        let m3 = GbtRegressor::fit(&data, &GbtParams { seed: 99, ..params }).unwrap();
        assert!(m1 != m3 || m1.num_trees() == 0);
    }

    #[test]
    fn parameter_validation() {
        let data = synthetic(10, |a, _| a);
        for bad in [
            GbtParams {
                num_rounds: 0,
                ..GbtParams::default()
            },
            GbtParams {
                learning_rate: 0.0,
                ..GbtParams::default()
            },
            GbtParams {
                learning_rate: 1.5,
                ..GbtParams::default()
            },
            GbtParams {
                subsample: 0.0,
                ..GbtParams::default()
            },
            GbtParams {
                colsample: 1.5,
                ..GbtParams::default()
            },
        ] {
            assert!(GbtRegressor::fit(&data, &bad).is_err());
        }
    }

    #[test]
    fn serde_round_trip() {
        let data = synthetic(100, |a, b| a * 2.0 + b);
        let model = GbtRegressor::fit(&data, &GbtParams::default()).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: GbtRegressor = serde_json::from_str(&json).unwrap();
        assert_eq!(model.num_trees(), back.num_trees());
        for i in 0..data.num_rows() {
            let (a, b) = (model.predict(data.row(i)), back.predict(data.row(i)));
            assert!(
                (a - b).abs() < 1e-12,
                "prediction drift after round trip: {a} vs {b}"
            );
        }
    }
}
