//! Gradient-boosted regression trees: the XGBoost substitute behind GRANII's
//! learned cost models (paper §IV-E2).
//!
//! The paper trains "simple XGBoost-based cost models", one per matrix
//! primitive and target hardware. This crate reimplements the required model
//! class from scratch: regression trees grown by exact greedy split search on
//! a second-order (gradient/hessian) objective with the usual XGBoost
//! regularizers (`lambda` L2 on leaf weights, `gamma` minimum gain, depth and
//! leaf-size limits), combined by gradient boosting with shrinkage, feature
//! and row subsampling, and validation-based early stopping.
//!
//! # Example
//!
//! ```
//! use granii_boost::{Dataset, GbtParams, GbtRegressor};
//!
//! # fn main() -> Result<(), granii_boost::BoostError> {
//! // y = 3 * x0; a stump ensemble can fit this.
//! let xs: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
//! let ys: Vec<f64> = (0..64).map(|i| 3.0 * i as f64).collect();
//! let data = Dataset::from_rows(&xs, &ys)?;
//! let model = GbtRegressor::fit(&data, &GbtParams::default())?;
//! let pred = model.predict(&[10.0]);
//! assert!((pred - 30.0).abs() < 3.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod data;
mod error;
mod gbt;
pub mod metrics;
mod tree;

pub use data::Dataset;
pub use error::BoostError;
pub use gbt::{GbtParams, GbtRegressor};
pub use tree::{RegressionTree, TreeParams};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, BoostError>;
