use std::fmt;

/// Errors produced by dataset construction and model fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BoostError {
    /// The dataset had no rows.
    EmptyDataset,
    /// A feature row had the wrong number of columns.
    RaggedRow {
        /// Index of the offending row.
        row: usize,
        /// Its length.
        len: usize,
        /// Expected number of features.
        expected: usize,
    },
    /// Labels and features had different lengths.
    LabelMismatch {
        /// Number of feature rows.
        rows: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A non-finite value appeared in features or labels.
    NonFinite,
    /// A hyperparameter was out of range.
    InvalidParameter(String),
}

impl fmt::Display for BoostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoostError::EmptyDataset => write!(f, "dataset has no rows"),
            BoostError::RaggedRow { row, len, expected } => {
                write!(f, "row {row} has {len} features, expected {expected}")
            }
            BoostError::LabelMismatch { rows, labels } => {
                write!(f, "{rows} feature rows but {labels} labels")
            }
            BoostError::NonFinite => write!(f, "features and labels must be finite"),
            BoostError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for BoostError {}
