use serde::{Deserialize, Serialize};

use crate::{BoostError, Result};

/// A dense regression dataset: row-major features plus one label per row.
///
/// # Example
///
/// ```
/// use granii_boost::Dataset;
///
/// # fn main() -> Result<(), granii_boost::BoostError> {
/// let d = Dataset::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]], &[0.5, 1.5])?;
/// assert_eq!(d.num_rows(), 2);
/// assert_eq!(d.num_features(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Vec<f64>,
    labels: Vec<f64>,
    num_features: usize,
}

impl Dataset {
    /// Builds a dataset from feature rows and labels.
    ///
    /// # Errors
    ///
    /// Returns [`BoostError::EmptyDataset`] for zero rows,
    /// [`BoostError::RaggedRow`] for inconsistent row lengths,
    /// [`BoostError::LabelMismatch`] if `labels.len() != rows.len()`, and
    /// [`BoostError::NonFinite`] if any value is NaN/infinite.
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R], labels: &[f64]) -> Result<Self> {
        if rows.is_empty() {
            return Err(BoostError::EmptyDataset);
        }
        if rows.len() != labels.len() {
            return Err(BoostError::LabelMismatch {
                rows: rows.len(),
                labels: labels.len(),
            });
        }
        let num_features = rows[0].as_ref().len();
        let mut features = Vec::with_capacity(rows.len() * num_features);
        for (i, r) in rows.iter().enumerate() {
            let r = r.as_ref();
            if r.len() != num_features {
                return Err(BoostError::RaggedRow {
                    row: i,
                    len: r.len(),
                    expected: num_features,
                });
            }
            if r.iter().any(|v| !v.is_finite()) {
                return Err(BoostError::NonFinite);
            }
            features.extend_from_slice(r);
        }
        if labels.iter().any(|v| !v.is_finite()) {
            return Err(BoostError::NonFinite);
        }
        Ok(Self {
            features,
            labels: labels.to_vec(),
            num_features,
        })
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.labels.len()
    }

    /// Number of features per row.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Feature row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.features[i * self.num_features..(i + 1) * self.num_features]
    }

    /// All labels.
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// Splits into `(train, valid)` with `valid_fraction` of the rows (taken
    /// with stride to stay distribution-representative without an RNG).
    ///
    /// The stride construction holds out every `stride`-th row with
    /// `stride = round(1 / valid_fraction)`, so it cannot represent
    /// validation shares above one-in-two. Fractions above `0.5` are
    /// rejected rather than silently clamped to a 50% holdout.
    ///
    /// # Errors
    ///
    /// Returns [`BoostError::InvalidParameter`] if the fraction is not in
    /// `(0, 0.5]` or either side would be empty.
    pub fn split(&self, valid_fraction: f64) -> Result<(Dataset, Dataset)> {
        if !(valid_fraction > 0.0 && valid_fraction <= 0.5) {
            return Err(BoostError::InvalidParameter(format!(
                "valid_fraction {valid_fraction} must be in (0, 0.5]: the stride-based \
                 holdout cannot take more than every other row"
            )));
        }
        let n = self.num_rows();
        let stride = (1.0 / valid_fraction).round().max(2.0) as usize;
        let mut train_rows: Vec<&[f64]> = Vec::new();
        let mut train_labels = Vec::new();
        let mut valid_rows: Vec<&[f64]> = Vec::new();
        let mut valid_labels = Vec::new();
        for i in 0..n {
            if i % stride == stride - 1 {
                valid_rows.push(self.row(i));
                valid_labels.push(self.labels[i]);
            } else {
                train_rows.push(self.row(i));
                train_labels.push(self.labels[i]);
            }
        }
        if train_rows.is_empty() || valid_rows.is_empty() {
            return Err(BoostError::InvalidParameter(
                "split produced an empty train or validation set".into(),
            ));
        }
        Ok((
            Dataset::from_rows(&train_rows, &train_labels)?,
            Dataset::from_rows(&valid_rows, &valid_labels)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_ragged() {
        let empty: &[Vec<f64>] = &[];
        assert_eq!(
            Dataset::from_rows(empty, &[]).unwrap_err(),
            BoostError::EmptyDataset
        );
        let err = Dataset::from_rows(&[vec![1.0], vec![1.0, 2.0]], &[0.0, 0.0]).unwrap_err();
        assert!(matches!(err, BoostError::RaggedRow { row: 1, .. }));
    }

    #[test]
    fn rejects_label_mismatch_and_nonfinite() {
        let err = Dataset::from_rows(&[vec![1.0]], &[0.0, 1.0]).unwrap_err();
        assert!(matches!(err, BoostError::LabelMismatch { .. }));
        assert_eq!(
            Dataset::from_rows(&[vec![f64::NAN]], &[0.0]).unwrap_err(),
            BoostError::NonFinite
        );
        assert_eq!(
            Dataset::from_rows(&[vec![1.0]], &[f64::INFINITY]).unwrap_err(),
            BoostError::NonFinite
        );
    }

    #[test]
    fn split_partitions_rows() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let labels: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = Dataset::from_rows(&rows, &labels).unwrap();
        let (train, valid) = d.split(0.2).unwrap();
        assert_eq!(train.num_rows() + valid.num_rows(), 100);
        assert_eq!(valid.num_rows(), 20);
        assert!(d.split(0.0).is_err());
        assert!(d.split(1.0).is_err());
    }

    #[test]
    fn split_rejects_fractions_above_half() {
        // The stride construction caps the holdout at one-in-two rows, so
        // e.g. 0.9 would silently become a 0.5 split — reject it instead.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let labels: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let d = Dataset::from_rows(&rows, &labels).unwrap();
        for bad in [0.51, 0.75, 0.9] {
            let err = d.split(bad).unwrap_err();
            assert!(matches!(err, BoostError::InvalidParameter(_)), "{bad}");
        }
        // The boundary itself is representable: exactly every other row.
        let (train, valid) = d.split(0.5).unwrap();
        assert_eq!(train.num_rows(), 5);
        assert_eq!(valid.num_rows(), 5);
    }
}
