//! Property-based tests for the gradient-boosted-tree learner.

use granii_boost::{metrics, Dataset, GbtParams, GbtRegressor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fitting never fails on well-formed data, and predictions are finite.
    #[test]
    fn predictions_are_finite(
        labels in proptest::collection::vec(-100.0f64..100.0, 8..60),
        slope in -5.0f64..5.0,
    ) {
        let rows: Vec<Vec<f64>> = labels.iter().enumerate()
            .map(|(i, _)| vec![i as f64, (i as f64 * slope).sin()])
            .collect();
        let data = Dataset::from_rows(&rows, &labels).unwrap();
        let model = GbtRegressor::fit(&data, &GbtParams { num_rounds: 10, ..GbtParams::default() }).unwrap();
        for i in 0..data.num_rows() {
            prop_assert!(model.predict(data.row(i)).is_finite());
        }
    }

    /// On constant labels, the model predicts (close to) that constant.
    #[test]
    fn constant_labels_predicted_exactly(c in -50.0f64..50.0, n in 4usize..40) {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let labels = vec![c; n];
        let data = Dataset::from_rows(&rows, &labels).unwrap();
        let model = GbtRegressor::fit(&data, &GbtParams { num_rounds: 5, ..GbtParams::default() }).unwrap();
        prop_assert!((model.predict(&[0.0]) - c).abs() < 1e-6);
    }

    /// Training error on a monotone target gives near-perfect rank order.
    #[test]
    fn ranks_monotone_targets(scale in 0.1f64..20.0, n in 20usize..80) {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let labels: Vec<f64> = (0..n).map(|i| scale * (i as f64).powi(2)).collect();
        let data = Dataset::from_rows(&rows, &labels).unwrap();
        let model = GbtRegressor::fit(&data, &GbtParams::default()).unwrap();
        let preds: Vec<f64> = (0..n).map(|i| model.predict(data.row(i))).collect();
        prop_assert!(metrics::spearman(&preds, &labels) > 0.98);
    }

    /// Spearman is invariant under strictly monotone transforms.
    #[test]
    fn spearman_monotone_invariance(values in proptest::collection::vec(-100.0f64..100.0, 3..40)) {
        let transformed: Vec<f64> = values.iter().map(|v| v.exp().min(1e300)).collect();
        let s = metrics::spearman(&values, &transformed);
        prop_assert!((s - 1.0).abs() < 1e-9, "spearman {s}");
    }

    /// RMSE is zero iff predictions equal labels.
    #[test]
    fn rmse_zero_iff_equal(labels in proptest::collection::vec(-10.0f64..10.0, 1..30)) {
        prop_assert_eq!(metrics::rmse(&labels, &labels), 0.0);
        let mut shifted = labels.clone();
        shifted[0] += 1.0;
        prop_assert!(metrics::rmse(&shifted, &labels) > 0.0);
    }
}
