//! Request-scoped tracing: per-request lanes in the Chrome trace.
//!
//! Worker-thread spans interleave requests, which makes "where did request
//! 4217 spend its 31 ms" unanswerable from thread lanes alone. Instead, a
//! 1-in-N sampled request carries a [`RequestTrace`] — a fixed-size stage
//! stopwatch — through the queue, cache lookup, selection, and execution.
//! At completion the worker converts it into synthetic
//! [`granii_telemetry::SpanRecord`]s on a **virtual thread id**
//! (`TRACE_LANE_BASE + request id`), so the existing Chrome-trace exporter
//! renders each sampled request as its own lane with no exporter changes:
//! a `serve.req` root spanning submit→complete, with `serve.req.queue`,
//! `serve.req.select`, and `serve.req.execute` children.
//!
//! Unsampled requests carry `None` and allocate nothing: sampling is decided
//! at `submit` with one modulo on the request id, and every stage mark is a
//! field store into the pre-allocated box.
//!
//! **Batch-causal tracing**: continuous batching executes a sampled request
//! inside a signature-keyed group, so its `execute` stage measures *shared*
//! work. To keep the causality visible, the worker emits one `serve.batch`
//! span per executed group on a dedicated lane ([`BATCH_TRACE_LANE`])
//! carrying the group signature and member request ids, and a sampled
//! member's `serve.req.execute` child links back via `batch_group` /
//! `batch_size` attributes — the reader can pivot from a slow request lane
//! to the exact batch that carried it.

use granii_telemetry::{AttrValue, SpanRecord};

/// Virtual-tid base for per-request lanes. Real thread ids are small
/// sequential integers, so lanes starting here cannot collide with them.
pub const TRACE_LANE_BASE: u64 = 10_000;

/// Virtual tid of the batch lane: every `serve.batch` span lands here, just
/// below the per-request lanes so the exporter sorts it adjacent to them.
pub const BATCH_TRACE_LANE: u64 = 9_999;

/// Emits one `serve.batch` span on [`BATCH_TRACE_LANE`] for an executed
/// group: the group signature (hex), size, and the member request ids a
/// sampled member's `batch_group` attribute pivots to. No-op when telemetry
/// is disabled. `seq` must be unique per emitted batch (the server passes a
/// monotone group counter) so simultaneous groups from different workers
/// stay distinct rows in the exporter.
pub fn record_batch_span(
    group_fingerprint: u64,
    model: &'static str,
    members: &[u64],
    start_us: u64,
    dur_us: u64,
    seq: u64,
) {
    if !granii_telemetry::enabled() {
        return;
    }
    let mut attrs = vec![
        ("group", AttrValue::Str(format!("{group_fingerprint:016x}"))),
        ("model", AttrValue::Str(model.to_owned())),
        ("size", AttrValue::U64(members.len() as u64)),
    ];
    for &id in members {
        attrs.push(("member", AttrValue::U64(id)));
    }
    granii_telemetry::record_span(SpanRecord {
        name: "serve.batch",
        start_us,
        dur_us,
        tid: BATCH_TRACE_LANE,
        depth: 0,
        seq,
        attrs,
    });
}

#[derive(Debug, Clone, Copy, Default)]
struct Stage {
    start_us: u64,
    dur_us: u64,
    set: bool,
}

/// Stage stopwatch for one sampled request. Created at `submit`; every mark
/// is alloc-free. Boxed into the job so the unsampled path stays a single
/// `Option` niche.
#[derive(Debug)]
pub struct RequestTrace {
    request_id: u64,
    submit_us: u64,
    queue: Stage,
    select: Stage,
    execute: Stage,
    batch_group: u64,
    batch_size: u64,
}

impl RequestTrace {
    /// Starts the stopwatch at submit time.
    pub fn new(request_id: u64) -> Self {
        RequestTrace {
            request_id,
            submit_us: granii_telemetry::now_us(),
            queue: Stage::default(),
            select: Stage::default(),
            execute: Stage::default(),
            batch_group: 0,
            batch_size: 0,
        }
    }

    /// The id this trace belongs to.
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// Marks the request leaving the queue: the queue stage is
    /// submit→now.
    pub fn mark_dequeued(&mut self) {
        let now = granii_telemetry::now_us();
        self.queue = Stage {
            start_us: self.submit_us,
            dur_us: now.saturating_sub(self.submit_us),
            set: true,
        };
    }

    /// Marks the start of selection (cache-miss path only).
    pub fn mark_select_start(&mut self) {
        self.select.start_us = granii_telemetry::now_us();
    }

    /// Marks the end of selection.
    pub fn mark_select_done(&mut self) {
        let now = granii_telemetry::now_us();
        self.select.dur_us = now.saturating_sub(self.select.start_us);
        self.select.set = true;
    }

    /// Marks the start of plan execution.
    pub fn mark_execute_start(&mut self) {
        self.execute.start_us = granii_telemetry::now_us();
    }

    /// Marks the end of plan execution.
    pub fn mark_execute_done(&mut self) {
        let now = granii_telemetry::now_us();
        self.execute.dur_us = now.saturating_sub(self.execute.start_us);
        self.execute.set = true;
    }

    /// Records which batch group carried this request: the execute child
    /// span links to the matching `serve.batch` span via these attributes.
    pub fn set_batch(&mut self, group_fingerprint: u64, size: u64) {
        self.batch_group = group_fingerprint;
        self.batch_size = size;
    }

    /// Emits the request's lane: a root span plus one child per stage that
    /// ran, on virtual tid `TRACE_LANE_BASE + request_id`. Called once, at
    /// request completion, by the worker.
    pub fn finish(self, model: &'static str, cache_hit: bool, degraded: bool) {
        let end_us = granii_telemetry::now_us();
        let tid = TRACE_LANE_BASE + self.request_id;
        let mut seq = 0u64;
        granii_telemetry::record_span(SpanRecord {
            name: "serve.req",
            start_us: self.submit_us,
            dur_us: end_us.saturating_sub(self.submit_us),
            tid,
            depth: 0,
            seq,
            attrs: vec![
                ("request_id", AttrValue::U64(self.request_id)),
                ("model", AttrValue::Str(model.to_owned())),
                ("cache_hit", AttrValue::U64(u64::from(cache_hit))),
                ("degraded", AttrValue::U64(u64::from(degraded))),
            ],
        });
        for (name, stage) in [
            ("serve.req.queue", self.queue),
            ("serve.req.select", self.select),
            ("serve.req.execute", self.execute),
        ] {
            if !stage.set {
                continue;
            }
            seq += 1;
            // The execute child links to the group's `serve.batch` span on
            // BATCH_TRACE_LANE (match on the `group` attribute there).
            let attrs = if name == "serve.req.execute" && self.batch_size > 0 {
                vec![
                    (
                        "batch_group",
                        AttrValue::Str(format!("{:016x}", self.batch_group)),
                    ),
                    ("batch_size", AttrValue::U64(self.batch_size)),
                ]
            } else {
                Vec::new()
            };
            granii_telemetry::record_span(SpanRecord {
                name,
                start_us: stage.start_us,
                dur_us: stage.dur_us,
                tid,
                depth: 1,
                seq,
                attrs,
            });
        }
    }
}

/// Whether request `id` should carry a trace: telemetry must be recording
/// and `sample_every` must divide the id (`0` disables sampling entirely).
pub fn sampled(id: u64, sample_every: u64) -> bool {
    granii_telemetry::enabled() && sample_every > 0 && id.is_multiple_of(sample_every)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_span_lands_on_the_batch_lane_with_members() {
        granii_telemetry::enable();
        let group = 0xb47c_1234_5678_9abc_u64;
        record_batch_span(group, "gcn", &[3, 7, 11], 100, 250, 42);
        let spans = granii_telemetry::take_spans();
        let span = spans
            .iter()
            .find(|s| {
                s.name == "serve.batch"
                    && s.attrs.iter().any(|(k, v)| {
                        *k == "group"
                            && matches!(v, AttrValue::Str(g) if *g == format!("{group:016x}"))
                    })
            })
            .expect("batch span recorded");
        assert_eq!(span.tid, BATCH_TRACE_LANE);
        let members: Vec<u64> = span
            .attrs
            .iter()
            .filter_map(|(k, v)| match (k, v) {
                (&"member", AttrValue::U64(id)) => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(members, vec![3, 7, 11]);
        granii_telemetry::disable();
    }

    #[test]
    fn execute_child_carries_batch_link_when_set() {
        granii_telemetry::enable();
        let mut trace = RequestTrace::new(777_001);
        trace.mark_execute_start();
        trace.mark_execute_done();
        trace.set_batch(0xabcd, 4);
        trace.finish("gcn", true, false);
        let spans = granii_telemetry::take_spans();
        let exec = spans
            .iter()
            .find(|s| s.name == "serve.req.execute" && s.tid == TRACE_LANE_BASE + 777_001)
            .expect("execute child recorded");
        assert!(exec.attrs.iter().any(|(k, v)| {
            *k == "batch_group"
                && matches!(v, AttrValue::Str(g) if *g == format!("{:016x}", 0xabcdu64))
        }));
        assert!(exec
            .attrs
            .iter()
            .any(|(k, v)| *k == "batch_size" && matches!(v, AttrValue::U64(4))));
        granii_telemetry::disable();
    }

    #[test]
    fn sampling_gate_honors_rate_and_enable() {
        granii_telemetry::disable();
        assert!(!sampled(0, 1), "disabled telemetry never samples");
        granii_telemetry::enable();
        assert!(sampled(0, 4));
        assert!(!sampled(1, 4));
        assert!(sampled(8, 4));
        assert!(!sampled(8, 0), "rate 0 disables sampling");
        granii_telemetry::disable();
    }
}
