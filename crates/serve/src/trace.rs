//! Request-scoped tracing: per-request lanes in the Chrome trace.
//!
//! Worker-thread spans interleave requests, which makes "where did request
//! 4217 spend its 31 ms" unanswerable from thread lanes alone. Instead, a
//! 1-in-N sampled request carries a [`RequestTrace`] — a fixed-size stage
//! stopwatch — through the queue, cache lookup, selection, and execution.
//! At completion the worker converts it into synthetic
//! [`granii_telemetry::SpanRecord`]s on a **virtual thread id**
//! (`TRACE_LANE_BASE + request id`), so the existing Chrome-trace exporter
//! renders each sampled request as its own lane with no exporter changes:
//! a `serve.req` root spanning submit→complete, with `serve.req.queue`,
//! `serve.req.select`, and `serve.req.execute` children.
//!
//! Unsampled requests carry `None` and allocate nothing: sampling is decided
//! at `submit` with one modulo on the request id, and every stage mark is a
//! field store into the pre-allocated box.

use granii_telemetry::{AttrValue, SpanRecord};

/// Virtual-tid base for per-request lanes. Real thread ids are small
/// sequential integers, so lanes starting here cannot collide with them.
pub const TRACE_LANE_BASE: u64 = 10_000;

#[derive(Debug, Clone, Copy, Default)]
struct Stage {
    start_us: u64,
    dur_us: u64,
    set: bool,
}

/// Stage stopwatch for one sampled request. Created at `submit`; every mark
/// is alloc-free. Boxed into the job so the unsampled path stays a single
/// `Option` niche.
#[derive(Debug)]
pub struct RequestTrace {
    request_id: u64,
    submit_us: u64,
    queue: Stage,
    select: Stage,
    execute: Stage,
}

impl RequestTrace {
    /// Starts the stopwatch at submit time.
    pub fn new(request_id: u64) -> Self {
        RequestTrace {
            request_id,
            submit_us: granii_telemetry::now_us(),
            queue: Stage::default(),
            select: Stage::default(),
            execute: Stage::default(),
        }
    }

    /// The id this trace belongs to.
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// Marks the request leaving the queue: the queue stage is
    /// submit→now.
    pub fn mark_dequeued(&mut self) {
        let now = granii_telemetry::now_us();
        self.queue = Stage {
            start_us: self.submit_us,
            dur_us: now.saturating_sub(self.submit_us),
            set: true,
        };
    }

    /// Marks the start of selection (cache-miss path only).
    pub fn mark_select_start(&mut self) {
        self.select.start_us = granii_telemetry::now_us();
    }

    /// Marks the end of selection.
    pub fn mark_select_done(&mut self) {
        let now = granii_telemetry::now_us();
        self.select.dur_us = now.saturating_sub(self.select.start_us);
        self.select.set = true;
    }

    /// Marks the start of plan execution.
    pub fn mark_execute_start(&mut self) {
        self.execute.start_us = granii_telemetry::now_us();
    }

    /// Marks the end of plan execution.
    pub fn mark_execute_done(&mut self) {
        let now = granii_telemetry::now_us();
        self.execute.dur_us = now.saturating_sub(self.execute.start_us);
        self.execute.set = true;
    }

    /// Emits the request's lane: a root span plus one child per stage that
    /// ran, on virtual tid `TRACE_LANE_BASE + request_id`. Called once, at
    /// request completion, by the worker.
    pub fn finish(self, model: &'static str, cache_hit: bool, degraded: bool) {
        let end_us = granii_telemetry::now_us();
        let tid = TRACE_LANE_BASE + self.request_id;
        let mut seq = 0u64;
        granii_telemetry::record_span(SpanRecord {
            name: "serve.req",
            start_us: self.submit_us,
            dur_us: end_us.saturating_sub(self.submit_us),
            tid,
            depth: 0,
            seq,
            attrs: vec![
                ("request_id", AttrValue::U64(self.request_id)),
                ("model", AttrValue::Str(model.to_owned())),
                ("cache_hit", AttrValue::U64(u64::from(cache_hit))),
                ("degraded", AttrValue::U64(u64::from(degraded))),
            ],
        });
        for (name, stage) in [
            ("serve.req.queue", self.queue),
            ("serve.req.select", self.select),
            ("serve.req.execute", self.execute),
        ] {
            if !stage.set {
                continue;
            }
            seq += 1;
            granii_telemetry::record_span(SpanRecord {
                name,
                start_us: stage.start_us,
                dur_us: stage.dur_us,
                tid,
                depth: 1,
                seq,
                attrs: Vec::new(),
            });
        }
    }
}

/// Whether request `id` should carry a trace: telemetry must be recording
/// and `sample_every` must divide the id (`0` disables sampling entirely).
pub fn sampled(id: u64, sample_every: u64) -> bool {
    granii_telemetry::enabled() && sample_every > 0 && id.is_multiple_of(sample_every)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_gate_honors_rate_and_enable() {
        granii_telemetry::disable();
        assert!(!sampled(0, 1), "disabled telemetry never samples");
        granii_telemetry::enable();
        assert!(sampled(0, 4));
        assert!(!sampled(1, 4));
        assert!(sampled(8, 4));
        assert!(!sampled(8, 0), "rate 0 disables sampling");
        granii_telemetry::disable();
    }
}
