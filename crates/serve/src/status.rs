//! Live serving status surface: a serializable point-in-time snapshot.
//!
//! [`crate::Server::status`] assembles a [`ServerStatus`] from state the
//! server already maintains — queue depth, per-worker busy accounting, cache
//! counters, degradation rates, and the drift detector's per-signature
//! residual table. The struct serializes to JSON (`serde` derive) for
//! machine consumers and renders a human-readable table via `Display`; the
//! CLI exposes both (`serve-demo --status-out`, `cli serve-status`).
//!
//! Graph fingerprints are rendered as **hex strings**, not numbers: the
//! JSON layer carries numbers as `f64`, which silently mangles 64-bit
//! fingerprints above 2⁵³.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Renders a graph fingerprint the one canonical way: zero-padded 16-hex.
/// Every status row, event field, and scrape label goes through here so the
/// formats can never skew apart (see module docs for why not a number).
pub(crate) fn hex_fp(fingerprint: u64) -> String {
    format!("{fingerprint:016x}")
}

/// One worker's utilization since server start.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerStatus {
    /// Worker index (matches the `granii-serve-{i}` thread name).
    pub index: usize,
    /// Requests this worker has processed.
    pub requests: u64,
    /// Seconds this worker spent processing (not parked on the queue).
    pub busy_seconds: f64,
    /// `busy_seconds / uptime_seconds`, in [0, 1].
    pub utilization: f64,
}

/// Plan-cache counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheStatus {
    /// Lookups that found a bound plan.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped by LRU pressure.
    pub evictions: u64,
    /// Entries dropped by drift flags or model hot-swaps.
    pub invalidations: u64,
    /// Bound plans currently cached.
    pub len: usize,
    /// Configured capacity.
    pub capacity: usize,
    /// Hit fraction over all lookups (0 when none).
    pub hit_rate: f64,
}

/// One row of the drift table: a tracked plan signature and its residuals.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftSignatureStatus {
    /// Model family name (`gcn`, `gat`, ...).
    pub model: String,
    /// Graph fingerprint as a zero-padded hex string (see module docs).
    pub fingerprint: String,
    /// Input embedding width.
    pub k1: usize,
    /// Output embedding width.
    pub k2: usize,
    /// Smoothed log-space residual ln(measured) − ln(predicted); positive
    /// means slower than the cost model promised.
    pub ewma_residual: f64,
    /// Most recent raw residual.
    pub last_residual: f64,
    /// Residual observations recorded.
    pub samples: u64,
    /// Times this signature has been flagged.
    pub flags: u64,
    /// Remaining flag-suppression observations.
    pub cooldown: u64,
    /// Completed requests the metering ledger attributes to this tenant
    /// (`None` in snapshots from before the ledger existed) — lets an
    /// operator correlate a drift flag with the tenant's traffic share.
    pub tenant_requests: Option<u64>,
}

/// One row of the input table: a tracked plan signature and how far its
/// live degree statistics have walked from what selection saw.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InputSignatureStatus {
    /// Model family name (`gcn`, `gat`, ...).
    pub model: String,
    /// Plan signature as a zero-padded hex string (see module docs).
    pub fingerprint: String,
    /// Input embedding width.
    pub k1: usize,
    /// Output embedding width.
    pub k2: usize,
    /// L1 distance between the live and reference degree-band
    /// distributions at last observation, in `[0, 2]`.
    pub band_l1: f64,
    /// Absolute degree-CV delta at last observation.
    pub cv_delta: f64,
    /// Live (EWMA) average degree.
    pub live_avg_degree: f64,
    /// Live (EWMA) degree coefficient of variation.
    pub live_degree_cv: f64,
    /// Selection-time reference degree CV.
    pub reference_degree_cv: f64,
    /// Profiles folded since the signature was last rebound.
    pub samples: u64,
    /// Times this signature has been flagged by the input-drift lane.
    pub flags: u64,
    /// Remaining flag-suppression observations.
    pub cooldown: u64,
    /// Completed requests the metering ledger attributes to this tenant
    /// (`None` in pre-ledger snapshots).
    pub tenant_requests: Option<u64>,
}

/// One row of the SLO table: an objective and its error-budget state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SloObjectiveStatus {
    /// Outcome class the objective covers (`hit`, `miss`, `degraded`).
    pub outcome: String,
    /// Latency threshold in milliseconds.
    pub threshold_ms: f64,
    /// Required compliant fraction, e.g. `0.99`.
    pub target: f64,
    /// Requests observed for the outcome.
    pub total: u64,
    /// Requests over the threshold.
    pub violations: u64,
    /// Lifetime compliant fraction (1 when no requests observed).
    pub compliance: f64,
    /// Burn rate of the most recently closed window (1.0 = budget spent
    /// exactly as provisioned).
    pub burn_rate: f64,
    /// Whether the last closed window was at or above the alert burn.
    pub burning: bool,
    /// Tumbling burn-rate windows closed so far.
    pub windows_closed: u64,
}

/// Per-outcome latency quantiles from the server's bounded-relative-error
/// sketches (not the log₂ histograms — these resolve the tail).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencySketchStatus {
    /// Outcome class (`hit`, `miss`, `degraded`).
    pub outcome: String,
    /// Requests recorded.
    pub count: u64,
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// Median latency in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency in milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile latency in milliseconds.
    pub p999_ms: f64,
}

/// Continuous-batching state: how requests coalesced into signature-keyed
/// batch groups.
///
/// `Deserialize` is hand-written (not derived): a missing/`null` section
/// falls back to `Default`, so pre-batching status snapshots still parse.
#[derive(Debug, Clone, Default, Serialize)]
pub struct BatchingStatus {
    /// Configured batch bound (`1` disables batching).
    pub max_batch: usize,
    /// Batch groups formed, including groups of one — sequential traffic
    /// honestly reports p50 size 1.
    pub groups: u64,
    /// Groups of two or more executed as a single multi-RHS iterate.
    pub batches: u64,
    /// Requests served inside such groups.
    pub batched_requests: u64,
    /// Mean group size.
    pub mean_size: f64,
    /// Median group size.
    pub p50_size: f64,
    /// 95th-percentile group size.
    pub p95_size: f64,
}

/// One tenant's admission-fairness counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantStatus {
    /// Plan-signature fingerprint as a zero-padded hex string
    /// (`0000000000000000` aggregates tenants that overflowed the fixed
    /// tenant table).
    pub fingerprint: String,
    /// Requests currently queued for this tenant.
    pub queued: u64,
    /// Requests admitted over the server's lifetime.
    pub admitted: u64,
    /// Requests shed by the per-tenant bound.
    pub shed: u64,
}

/// Per-tenant admission fairness: the bound and the per-tenant table.
///
/// Same hand-written `Deserialize` compatibility contract as
/// [`BatchingStatus`].
#[derive(Debug, Clone, Default, Serialize)]
pub struct FairnessStatus {
    /// Maximum queued requests any one tenant may hold.
    pub tenant_queue_cap: u64,
    /// Requests shed by the per-tenant bound (subset of total shed).
    pub tenant_shed: u64,
    /// Per-tenant counters, sorted by fingerprint.
    pub tenants: Vec<TenantStatus>,
}

/// Flight-recorder and incident-capture health.
///
/// Same hand-written `Deserialize` compatibility contract as
/// [`BatchingStatus`]: snapshots from before the recorder existed parse
/// with a defaulted section.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RecorderStatus {
    /// Ring capacity in records.
    pub capacity: u64,
    /// Records ever claimed by writers.
    pub written: u64,
    /// Records dropped on slot collision (writer never blocks).
    pub dropped: u64,
    /// Incident bundles captured.
    pub incidents: u64,
    /// Incident triggers suppressed by the rate limits.
    pub suppressed: u64,
    /// Telemetry events dropped by the bounded event sink.
    pub events_dropped: u64,
    /// Kind of the most recent captured trigger (`""` when none).
    pub last_trigger: String,
}

impl serde::Deserialize for RecorderStatus {
    fn deserialize(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let m = match value {
            serde::Value::Object(m) => m,
            serde::Value::Null => return Ok(RecorderStatus::default()),
            _ => return Err(serde::Error::custom("expected object for RecorderStatus")),
        };
        Ok(RecorderStatus {
            capacity: serde::get_field(m, "capacity")?,
            written: serde::get_field(m, "written")?,
            dropped: serde::get_field(m, "dropped")?,
            incidents: serde::get_field(m, "incidents")?,
            suppressed: serde::get_field(m, "suppressed")?,
            events_dropped: serde::get_field(m, "events_dropped")?,
            last_trigger: serde::get_field(m, "last_trigger")?,
        })
    }
}

/// One tenant's resource meters, ranked into the "top tenants" table.
/// Charged time is milliseconds and flops/bytes are f64 here (the JSON
/// layer is f64-backed); the bitwise-exact integers live in the ledger
/// itself ([`crate::MeterRow`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantMeterStatus {
    /// Plan-signature fingerprint as a zero-padded hex string
    /// (`0000000000000000` aggregates tenants beyond the fixed table).
    pub fingerprint: String,
    /// Requests completed for this tenant.
    pub requests: u64,
    /// Completed requests that rode a coalesced batch (size > 1).
    pub batched_requests: u64,
    /// Engine-charged milliseconds attributed to this tenant.
    pub charged_ms: f64,
    /// Flops attributed to this tenant.
    pub flops: f64,
    /// Bytes (read + written) attributed to this tenant.
    pub bytes: f64,
    /// Mean queue wait per completed request, milliseconds.
    pub mean_queue_wait_ms: f64,
    /// Mean fraction of an execute occupied per request (1.0 = serial).
    pub mean_batch_share: f64,
    /// Plan-cache hit rate over completed requests.
    pub hit_rate: f64,
    /// Requests shed before execution.
    pub sheds: u64,
    /// Requests served by the degraded path.
    pub degraded: u64,
    /// Completed requests over their SLO objective's threshold.
    pub slo_violations: u64,
}

impl From<crate::metering::MeterRow> for TenantMeterStatus {
    fn from(row: crate::metering::MeterRow) -> Self {
        TenantMeterStatus {
            fingerprint: hex_fp(row.fingerprint),
            requests: row.requests,
            batched_requests: row.batched_requests,
            charged_ms: row.charged_ns as f64 / 1e6,
            flops: row.flops as f64,
            bytes: row.bytes as f64,
            mean_queue_wait_ms: row.mean_queue_wait_ms(),
            mean_batch_share: row.mean_batch_share(),
            hit_rate: row.hit_rate(),
            sheds: row.sheds,
            degraded: row.degraded,
            slo_violations: row.slo_violations,
        }
    }
}

/// Per-tenant resource metering: server-wide totals and the ranked
/// top-tenants table (charged time descending).
///
/// Same hand-written `Deserialize` compatibility contract as
/// [`BatchingStatus`]: pre-ledger snapshots parse with a defaulted section.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MeteringStatus {
    /// Requests the ledger has metered (equals `completed` at quiescence).
    pub total_requests: u64,
    /// Server-wide engine-charged milliseconds.
    pub total_charged_ms: f64,
    /// Server-wide attributed flops.
    pub total_flops: f64,
    /// Server-wide attributed bytes.
    pub total_bytes: f64,
    /// Server-wide sheds the ledger attributed to tenants.
    pub total_sheds: u64,
    /// Server-wide SLO-threshold violations.
    pub total_slo_violations: u64,
    /// Per-tenant meters, charged time descending.
    pub tenants: Vec<TenantMeterStatus>,
}

impl serde::Deserialize for MeteringStatus {
    fn deserialize(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let m = match value {
            serde::Value::Object(m) => m,
            serde::Value::Null => return Ok(MeteringStatus::default()),
            _ => return Err(serde::Error::custom("expected object for MeteringStatus")),
        };
        Ok(MeteringStatus {
            total_requests: serde::get_field(m, "total_requests")?,
            total_charged_ms: serde::get_field(m, "total_charged_ms")?,
            total_flops: serde::get_field(m, "total_flops")?,
            total_bytes: serde::get_field(m, "total_bytes")?,
            total_sheds: serde::get_field(m, "total_sheds")?,
            total_slo_violations: serde::get_field(m, "total_slo_violations")?,
            tenants: serde::get_field(m, "tenants")?,
        })
    }
}

impl serde::Deserialize for BatchingStatus {
    fn deserialize(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let m = match value {
            serde::Value::Object(m) => m,
            // Missing section in an older snapshot (the shim feeds `Null`
            // for absent fields).
            serde::Value::Null => return Ok(BatchingStatus::default()),
            _ => return Err(serde::Error::custom("expected object for BatchingStatus")),
        };
        Ok(BatchingStatus {
            max_batch: serde::get_field(m, "max_batch")?,
            groups: serde::get_field(m, "groups")?,
            batches: serde::get_field(m, "batches")?,
            batched_requests: serde::get_field(m, "batched_requests")?,
            mean_size: serde::get_field(m, "mean_size")?,
            p50_size: serde::get_field(m, "p50_size")?,
            p95_size: serde::get_field(m, "p95_size")?,
        })
    }
}

impl serde::Deserialize for FairnessStatus {
    fn deserialize(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let m = match value {
            serde::Value::Object(m) => m,
            serde::Value::Null => return Ok(FairnessStatus::default()),
            _ => return Err(serde::Error::custom("expected object for FairnessStatus")),
        };
        Ok(FairnessStatus {
            tenant_queue_cap: serde::get_field(m, "tenant_queue_cap")?,
            tenant_shed: serde::get_field(m, "tenant_shed")?,
            tenants: serde::get_field(m, "tenants")?,
        })
    }
}

/// Point-in-time serving snapshot: everything an operator asks first.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerStatus {
    /// Seconds since the server started.
    pub uptime_seconds: f64,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// Configured queue bound.
    pub queue_capacity: usize,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests completed with a response.
    pub completed: u64,
    /// Requests failed with an error.
    pub failed: u64,
    /// Requests shed at submit (queue full).
    pub shed: u64,
    /// Requests served via the default-composition fallback.
    pub degraded: u64,
    /// Requests whose deadline had expired at dequeue.
    pub deadline_expired: u64,
    /// `degraded / completed` (0 when none completed).
    pub degraded_rate: f64,
    /// `deadline_expired / completed` (0 when none completed).
    pub deadline_expired_rate: f64,
    /// Signatures flagged by the drift detector (total across signatures).
    pub drift_flagged: u64,
    /// Signatures flagged by the input-drift lane (total across
    /// signatures).
    pub input_drift_flagged: u64,
    /// Estimated distinct plan signatures served (HyperLogLog).
    pub distinct_signatures: f64,
    /// Continuous-batching state (defaults when absent, so pre-batching
    /// snapshots still parse — see [`BatchingStatus`]).
    pub batching: BatchingStatus,
    /// Per-tenant admission fairness (same compatibility default).
    pub fairness: FairnessStatus,
    /// Per-worker utilization, indexed by worker.
    pub workers: Vec<WorkerStatus>,
    /// Plan-cache counters.
    pub cache: CacheStatus,
    /// Cost-residual drift table, one row per tracked signature, sorted by
    /// fingerprint (then model, k1, k2) so status artifacts diff cleanly.
    pub drift: Vec<DriftSignatureStatus>,
    /// Input-drift table, same ordering as `drift`.
    pub input: Vec<InputSignatureStatus>,
    /// SLO error-budget table, in configured objective order.
    pub slo: Vec<SloObjectiveStatus>,
    /// Per-outcome latency quantiles from the sketches.
    pub latency: Vec<LatencySketchStatus>,
    /// Flight-recorder ring and incident-capture health (defaults when
    /// absent — see [`RecorderStatus`]).
    pub recorder: RecorderStatus,
    /// Per-tenant resource metering and the ranked top-tenants table
    /// (defaults when absent — see [`MeteringStatus`]).
    pub metering: MeteringStatus,
}

impl ServerStatus {
    /// Serializes to JSON. Infallible for this struct: every field is a
    /// number, string, or list of such.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("ServerStatus serializes")
    }

    /// Parses a snapshot previously produced by [`ServerStatus::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the underlying parse/shape error message.
    pub fn from_json(json: &str) -> std::result::Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

impl fmt::Display for ServerStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "granii-serve status (uptime {:.1}s)",
            self.uptime_seconds
        )?;
        writeln!(
            f,
            "  queue    {}/{} queued | submitted {} completed {} failed {} shed {}",
            self.queue_depth,
            self.queue_capacity,
            self.submitted,
            self.completed,
            self.failed,
            self.shed
        )?;
        writeln!(
            f,
            "  quality  degraded {} ({:.1}%) | deadline-expired {} ({:.1}%) | drift flags {} | input-drift flags {}",
            self.degraded,
            self.degraded_rate * 100.0,
            self.deadline_expired,
            self.deadline_expired_rate * 100.0,
            self.drift_flagged,
            self.input_drift_flagged
        )?;
        writeln!(
            f,
            "  cache    {}/{} entries | hits {} misses {} ({:.1}% hit) | evictions {} invalidations {}",
            self.cache.len,
            self.cache.capacity,
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate * 100.0,
            self.cache.evictions,
            self.cache.invalidations
        )?;
        writeln!(
            f,
            "  inputs   ~{:.0} distinct signatures",
            self.distinct_signatures
        )?;
        writeln!(
            f,
            "  batching max {} | groups {} | batches {} ({} requests) | size mean {:.2} p50 {:.0} p95 {:.0}",
            self.batching.max_batch,
            self.batching.groups,
            self.batching.batches,
            self.batching.batched_requests,
            self.batching.mean_size,
            self.batching.p50_size,
            self.batching.p95_size
        )?;
        writeln!(
            f,
            "  fairness tenant cap {} | tenant shed {}",
            self.fairness.tenant_queue_cap, self.fairness.tenant_shed
        )?;
        writeln!(
            f,
            "  recorder {} written | {} dropped (cap {}) | incidents {} (suppressed {}){} | events dropped {}",
            self.recorder.written,
            self.recorder.dropped,
            self.recorder.capacity,
            self.recorder.incidents,
            self.recorder.suppressed,
            if self.recorder.last_trigger.is_empty() {
                String::new()
            } else {
                format!(" | last {}", self.recorder.last_trigger)
            },
            self.recorder.events_dropped
        )?;
        if !self.fairness.tenants.is_empty() {
            writeln!(
                f,
                "           {:<18} {:>6} {:>9} {:>6}",
                "tenant", "queued", "admitted", "shed"
            )?;
            for row in &self.fairness.tenants {
                writeln!(
                    f,
                    "           {:<18} {:>6} {:>9} {:>6}",
                    row.fingerprint, row.queued, row.admitted, row.shed
                )?;
            }
        }
        writeln!(
            f,
            "  metering {} requests | charged {:.2}ms | {:.0} flops | {:.0} bytes | sheds {} | slo violations {}",
            self.metering.total_requests,
            self.metering.total_charged_ms,
            self.metering.total_flops,
            self.metering.total_bytes,
            self.metering.total_sheds,
            self.metering.total_slo_violations
        )?;
        if !self.metering.tenants.is_empty() {
            writeln!(
                f,
                "           {:<18} {:>6} {:>7} {:>10} {:>6} {:>8} {:>5} {:>5} {:>5} {:>4}",
                "top tenant",
                "reqs",
                "batched",
                "charged",
                "share",
                "wait",
                "hit%",
                "shed",
                "degr",
                "slo"
            )?;
            for row in &self.metering.tenants {
                writeln!(
                    f,
                    "           {:<18} {:>6} {:>7} {:>8.2}ms {:>6.2} {:>6.2}ms {:>5.1} {:>5} {:>5} {:>4}",
                    row.fingerprint,
                    row.requests,
                    row.batched_requests,
                    row.charged_ms,
                    row.mean_batch_share,
                    row.mean_queue_wait_ms,
                    row.hit_rate * 100.0,
                    row.sheds,
                    row.degraded,
                    row.slo_violations
                )?;
            }
        }
        if !self.latency.is_empty() {
            writeln!(
                f,
                "  latency  {:<9} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
                "outcome", "count", "mean", "p50", "p95", "p99", "p999"
            )?;
            for row in &self.latency {
                writeln!(
                    f,
                    "           {:<9} {:>8} {:>7.2}ms {:>7.2}ms {:>7.2}ms {:>7.2}ms {:>7.2}ms",
                    row.outcome,
                    row.count,
                    row.mean_ms,
                    row.p50_ms,
                    row.p95_ms,
                    row.p99_ms,
                    row.p999_ms
                )?;
            }
        }
        if !self.slo.is_empty() {
            writeln!(
                f,
                "  slo      {:<9} {:>9} {:>7} {:>8} {:>6} {:>11} {:>7} {:>8}",
                "outcome", "threshold", "target", "total", "viol", "compliance", "burn", "state"
            )?;
            for row in &self.slo {
                writeln!(
                    f,
                    "           {:<9} {:>7.1}ms {:>6.1}% {:>8} {:>6} {:>10.2}% {:>6.2}x {:>8}",
                    row.outcome,
                    row.threshold_ms,
                    row.target * 100.0,
                    row.total,
                    row.violations,
                    row.compliance * 100.0,
                    row.burn_rate,
                    if row.burning { "BURNING" } else { "ok" }
                )?;
            }
        }
        writeln!(f, "  workers  (busy share of uptime)")?;
        for w in &self.workers {
            writeln!(
                f,
                "    #{:<3} {:>8} requests | busy {:>9.3}s | {:>5.1}%",
                w.index,
                w.requests,
                w.busy_seconds,
                w.utilization * 100.0
            )?;
        }
        // Both drift tables carry the tenant's metered request count so an
        // operator can correlate a flag with traffic share ("-" when the
        // snapshot predates the ledger).
        let reqs = |tenant_requests: Option<u64>| match tenant_requests {
            Some(n) => n.to_string(),
            None => "-".to_owned(),
        };
        if !self.input.is_empty() {
            writeln!(
                f,
                "  input    {:<6} {:<18} {:>5} {:>5} {:>8} {:>8} {:>8} {:>7} {:>5} {:>8} {:>6}",
                "model",
                "fingerprint",
                "k1",
                "k2",
                "band_l1",
                "cv_live",
                "cv_ref",
                "samples",
                "flags",
                "cooldown",
                "reqs"
            )?;
            for row in &self.input {
                writeln!(
                    f,
                    "           {:<6} {:<18} {:>5} {:>5} {:>8.3} {:>8.3} {:>8.3} {:>7} {:>5} {:>8} {:>6}",
                    row.model,
                    row.fingerprint,
                    row.k1,
                    row.k2,
                    row.band_l1,
                    row.live_degree_cv,
                    row.reference_degree_cv,
                    row.samples,
                    row.flags,
                    row.cooldown,
                    reqs(row.tenant_requests)
                )?;
            }
        }
        if self.drift.is_empty() {
            writeln!(f, "  drift    no tracked signatures")?;
        } else {
            writeln!(
                f,
                "  drift    {:<6} {:<18} {:>5} {:>5} {:>9} {:>9} {:>7} {:>5} {:>8} {:>6}",
                "model",
                "fingerprint",
                "k1",
                "k2",
                "ewma",
                "last",
                "samples",
                "flags",
                "cooldown",
                "reqs"
            )?;
            for row in &self.drift {
                writeln!(
                    f,
                    "           {:<6} {:<18} {:>5} {:>5} {:>9.3} {:>9.3} {:>7} {:>5} {:>8} {:>6}",
                    row.model,
                    row.fingerprint,
                    row.k1,
                    row.k2,
                    row.ewma_residual,
                    row.last_residual,
                    row.samples,
                    row.flags,
                    row.cooldown,
                    reqs(row.tenant_requests)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServerStatus {
        ServerStatus {
            uptime_seconds: 12.5,
            queue_depth: 3,
            queue_capacity: 64,
            submitted: 100,
            completed: 95,
            failed: 1,
            shed: 4,
            degraded: 5,
            deadline_expired: 2,
            degraded_rate: 5.0 / 95.0,
            deadline_expired_rate: 2.0 / 95.0,
            drift_flagged: 1,
            input_drift_flagged: 2,
            distinct_signatures: 4.0,
            batching: BatchingStatus {
                max_batch: 8,
                groups: 40,
                batches: 12,
                batched_requests: 60,
                mean_size: 2.4,
                p50_size: 2.0,
                p95_size: 7.0,
            },
            fairness: FairnessStatus {
                tenant_queue_cap: 32,
                tenant_shed: 3,
                tenants: vec![TenantStatus {
                    fingerprint: format!("{:016x}", 0xdead_beef_u64),
                    queued: 2,
                    admitted: 70,
                    shed: 3,
                }],
            },
            workers: vec![WorkerStatus {
                index: 0,
                requests: 95,
                busy_seconds: 9.0,
                utilization: 0.72,
            }],
            cache: CacheStatus {
                hits: 90,
                misses: 6,
                evictions: 1,
                invalidations: 1,
                len: 4,
                capacity: 64,
                hit_rate: 90.0 / 96.0,
            },
            drift: vec![DriftSignatureStatus {
                model: "gcn".to_owned(),
                fingerprint: format!("{:016x}", 0xdead_beef_u64),
                k1: 2048,
                k2: 256,
                ewma_residual: 13.2,
                last_residual: 13.8,
                samples: 7,
                flags: 1,
                cooldown: 30,
                tenant_requests: Some(70),
            }],
            input: vec![InputSignatureStatus {
                model: "gcn".to_owned(),
                fingerprint: format!("{:016x}", 0xdead_beef_u64),
                k1: 2048,
                k2: 256,
                band_l1: 0.31,
                cv_delta: 1.8,
                live_avg_degree: 5.2,
                live_degree_cv: 2.4,
                reference_degree_cv: 0.6,
                samples: 12,
                flags: 2,
                cooldown: 20,
                tenant_requests: Some(70),
            }],
            slo: vec![SloObjectiveStatus {
                outcome: "hit".to_owned(),
                threshold_ms: 100.0,
                target: 0.99,
                total: 90,
                violations: 3,
                compliance: 87.0 / 90.0,
                burn_rate: 3.3,
                burning: true,
                windows_closed: 1,
            }],
            latency: vec![LatencySketchStatus {
                outcome: "hit".to_owned(),
                count: 90,
                mean_ms: 12.0,
                p50_ms: 11.0,
                p95_ms: 29.0,
                p99_ms: 41.0,
                p999_ms: 55.0,
            }],
            recorder: RecorderStatus {
                capacity: 4096,
                written: 321,
                dropped: 2,
                incidents: 1,
                suppressed: 3,
                events_dropped: 7,
                last_trigger: "slo_burn".to_owned(),
            },
            metering: MeteringStatus {
                total_requests: 95,
                total_charged_ms: 123.456,
                total_flops: 9.0e9,
                total_bytes: 4.5e9,
                total_sheds: 4,
                total_slo_violations: 3,
                tenants: vec![TenantMeterStatus {
                    fingerprint: hex_fp(0xdead_beef),
                    requests: 70,
                    batched_requests: 60,
                    charged_ms: 100.25,
                    flops: 7.0e9,
                    bytes: 3.5e9,
                    mean_queue_wait_ms: 0.08,
                    mean_batch_share: 0.42,
                    hit_rate: 0.938,
                    sheds: 3,
                    degraded: 5,
                    slo_violations: 1,
                }],
            },
        }
    }

    #[test]
    fn status_round_trips_through_json() {
        let status = sample();
        let parsed = ServerStatus::from_json(&status.to_json()).unwrap();
        assert_eq!(parsed.queue_depth, 3);
        assert_eq!(parsed.drift_flagged, 1);
        assert_eq!(parsed.workers.len(), 1);
        assert_eq!(parsed.workers[0].requests, 95);
        assert_eq!(parsed.cache.invalidations, 1);
        assert_eq!(parsed.drift.len(), 1);
        // Hex-string fingerprints survive exactly (the reason they are not
        // JSON numbers: the JSON layer is f64-backed).
        assert_eq!(
            parsed.drift[0].fingerprint,
            format!("{:016x}", 0xdead_beef_u64)
        );
        assert!((parsed.drift[0].ewma_residual - 13.2).abs() < 1e-12);
        assert_eq!(parsed.input_drift_flagged, 2);
        assert_eq!(parsed.input.len(), 1);
        assert!((parsed.input[0].band_l1 - 0.31).abs() < 1e-12);
        assert_eq!(parsed.input[0].flags, 2);
        assert_eq!(parsed.slo.len(), 1);
        assert_eq!(parsed.slo[0].outcome, "hit");
        assert!(parsed.slo[0].burning);
        assert_eq!(parsed.latency.len(), 1);
        assert!((parsed.latency[0].p999_ms - 55.0).abs() < 1e-12);
        assert!((parsed.distinct_signatures - 4.0).abs() < 1e-12);
        assert_eq!(parsed.batching.max_batch, 8);
        assert_eq!(parsed.batching.batches, 12);
        assert_eq!(parsed.batching.batched_requests, 60);
        assert_eq!(parsed.fairness.tenant_queue_cap, 32);
        assert_eq!(parsed.fairness.tenants.len(), 1);
        assert_eq!(parsed.fairness.tenants[0].admitted, 70);
        assert_eq!(parsed.recorder.written, 321);
        assert_eq!(parsed.recorder.incidents, 1);
        assert_eq!(parsed.recorder.events_dropped, 7);
        assert_eq!(parsed.recorder.last_trigger, "slo_burn");
        assert_eq!(parsed.drift[0].tenant_requests, Some(70));
        assert_eq!(parsed.input[0].tenant_requests, Some(70));
        assert_eq!(parsed.metering.total_requests, 95);
        assert!((parsed.metering.total_charged_ms - 123.456).abs() < 1e-9);
        assert_eq!(parsed.metering.tenants.len(), 1);
        assert_eq!(parsed.metering.tenants[0].requests, 70);
        assert_eq!(
            parsed.metering.tenants[0].fingerprint,
            format!("{:016x}", 0xdead_beef_u64)
        );
        assert!((parsed.metering.tenants[0].mean_batch_share - 0.42).abs() < 1e-12);
        assert_eq!(parsed.metering.tenants[0].slo_violations, 1);
    }

    #[test]
    fn pre_batching_snapshots_still_parse() {
        // A snapshot from before the batching/fairness fields existed must
        // deserialize with defaulted sections (rolling upgrades read old
        // `--status-out` artifacts). The shim feeds `Null` for a missing
        // field, which the hand-written impls map to `Default`.
        let batching = <BatchingStatus as serde::Deserialize>::deserialize(&serde::Value::Null)
            .expect("missing batching section defaults");
        assert_eq!(batching.max_batch, 0);
        assert_eq!(batching.batches, 0);
        let fairness = <FairnessStatus as serde::Deserialize>::deserialize(&serde::Value::Null)
            .expect("missing fairness section defaults");
        assert_eq!(fairness.tenants.len(), 0);
        let recorder = <RecorderStatus as serde::Deserialize>::deserialize(&serde::Value::Null)
            .expect("missing recorder section defaults");
        assert_eq!(recorder.written, 0);
        assert_eq!(recorder.last_trigger, "");
        let metering = <MeteringStatus as serde::Deserialize>::deserialize(&serde::Value::Null)
            .expect("missing metering section defaults");
        assert_eq!(metering.total_requests, 0);
        assert!(metering.tenants.is_empty());
    }

    #[test]
    fn display_renders_key_lines() {
        let text = sample().to_string();
        assert!(text.contains("granii-serve status"));
        assert!(text.contains("drift flags 1"));
        assert!(text.contains("input-drift flags 2"));
        assert!(text.contains("invalidations 1"));
        assert!(text.contains("gcn"));
        assert!(text.contains(&format!("{:016x}", 0xdead_beef_u64)));
        assert!(text.contains("distinct signatures"));
        assert!(text.contains("p999"));
        assert!(text.contains("BURNING"));
        assert!(text.contains("cv_live"));
        assert!(text.contains("batching max 8"));
        assert!(text.contains("tenant cap 32"));
        assert!(text.contains("recorder 321 written"));
        assert!(text.contains("last slo_burn"));
        assert!(text.contains("metering 95 requests"));
        assert!(text.contains("top tenant"));
        assert!(text.contains("slo violations 3"));
        // The drift and input tables carry the metered request count.
        assert!(text.contains("reqs"));
    }
}
