//! Concurrent serving runtime for GRANII (the paper's §IV selection, run as
//! a multi-tenant service).
//!
//! GRANII's pitch is that input-aware selection is cheap enough to run
//! online per input — which pays off when one trained [`granii_core::Granii`]
//! instance serves a stream of heterogeneous inference requests. This crate
//! composes the existing thread-safe pieces (compiled-plan cache, compile-once
//! [`granii_core::execplan::ExecPlan`], telemetry) into that runtime:
//!
//! - **Bound-plan LRU cache** ([`PlanCache`]): keyed on
//!   (model, graph fingerprint, k1, k2) so a repeated signature skips
//!   featurize + select + build + bind and goes straight to a zero-alloc
//!   steady-state `iterate`. Capacity-bounded with drop-LRU eviction and
//!   hit/miss/eviction counters.
//! - **Lock-free admission + worker pool** ([`Server`]): submits go through
//!   a bounded lock-free MPMC ring (vendored `crossbeam` `ArrayQueue`) — a
//!   full ring sheds with [`ServeError::Overloaded`] (backpressure instead
//!   of OOM), and a per-tenant fairness bound ([`TenantTable`]) keeps one
//!   hot signature from capturing the whole queue. Each request's deadline
//!   is checked once, when its batch group forms.
//! - **Continuous batching**: workers drain whatever is queued (up to
//!   `ServeConfig::max_batch`), coalesce requests by plan signature, and
//!   execute each group as ONE multi-RHS `iterate` over column-stacked
//!   blocks — bitwise identical to serial per-request execution, with the
//!   adjacency streamed once per group instead of once per request.
//! - **Graceful degradation**: an expired deadline or a cost-model
//!   prediction failure falls back to the plan's default composition (the
//!   first eligible candidate) instead of failing the request, and the
//!   response is marked `degraded` with a matching counter in
//!   [`ServeStats`].
//! - **Request-scoped tracing** ([`RequestTrace`] via
//!   `ServeConfig::trace_sample_every`): 1-in-N sampled requests export a
//!   per-request lane (queue / select / execute stages) through the
//!   existing Chrome-trace exporter; unsampled requests carry nothing.
//! - **Online drift detection** ([`DriftDetector`]): per plan signature, an
//!   EWMA of the log-space residual between the cost model's steady-state
//!   prediction and the engine-charged cost of each served iteration;
//!   sustained mismatch flags the signature, invalidates its cached plan
//!   (forcing re-selection), and surfaces in metrics, events, and status.
//! - **Input-drift detection** ([`InputInspector`]): the second lane, keyed
//!   on the inputs themselves — per signature, an EWMA of each request
//!   graph's degree-band distribution and CV against the selection-time
//!   reference. Catches the failure mode the residual lane is blind to: a
//!   pinned-signature tenant ([`ServeRequest::with_signature`]) whose graph
//!   mutates under a cached plan.
//! - **Latency SLOs** ([`SloMonitor`]): declarative per-outcome objectives
//!   with tumbling-window error-budget burn rates, backed by
//!   bounded-relative-error latency sketches (p50–p999 on the status
//!   surface, burn events when the budget burns too fast).
//! - **Live status surface** ([`ServerStatus`] from [`Server::status`]):
//!   queue depth, per-worker utilization, cache counters, degradation
//!   rates, and the drift table — as JSON and a human-readable table.
//! - **Always-on flight recorder** ([`FlightRecorder`]): a fixed-slot,
//!   lock-free ring every serve layer streams structured records into —
//!   admission, shed, batch formation (group signature + member ids),
//!   cache traffic, drift flags, SLO burn, completion. Writers never
//!   block (collisions drop-and-count); readers snapshot without
//!   destroying. When a detector fires, the [`IncidentCapturer`]
//!   assembles a correlated [`IncidentBundle`] — ring excerpt, full
//!   status, merged sketches, and the triggering signature's selection
//!   audit (chosen composition, per-candidate predicted costs, and the
//!   input statistics that keyed the choice) — as one JSON artifact,
//!   rate-limited by cooldown + max-per-window.
//! - **Per-tenant resource metering** ([`MeterTable`]): a lock-free
//!   CAS-slot ledger keyed on tenant fingerprint accumulating engine
//!   charges, flops/bytes, queue wait, batch share, cache traffic, sheds,
//!   degradations, and SLO violations per tenant — with *exact* integer
//!   attribution (the sum of per-tenant charges equals the server totals
//!   bitwise, even for batched execution). Surfaces as a ranked
//!   "top tenants" table in [`ServerStatus`] and per-tenant time-series
//!   rows.
//! - **On-host time-series ring** ([`TimelineConfig`]): a background
//!   sampler captures periodic frames of the server's counters, gauges,
//!   and sketch quantiles into a fixed-capacity
//!   [`granii_telemetry::TimeSeriesRing`] — snapshotable as dashboard
//!   JSON, and incident bundles carry the last minutes of timeline.
//! - **Prometheus scrape endpoint** ([`ScrapeConfig`]): a std-only
//!   `TcpListener` serving `/metrics` in the text exposition format
//!   (per-tenant series labeled `tenant="<fingerprint>"`), plus
//!   `/healthz` and `/readyz` (ready = workers up, queue below the shed
//!   threshold, no SLO objective burning).
//!
//! Outputs are deterministic: for a given request signature, cache hits,
//! misses, and serial re-execution all produce bitwise-identical matrices
//! (fixed synthetic-input seed, stable `iterate`).
//!
//! ```no_run
//! use std::sync::Arc;
//! use granii_core::{Granii, GraniiOptions};
//! use granii_gnn::spec::ModelKind;
//! use granii_graph::datasets::{Dataset, Scale};
//! use granii_matrix::device::DeviceKind;
//! use granii_serve::{ServeConfig, ServeRequest, Server};
//!
//! let granii = Arc::new(
//!     Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast()).unwrap(),
//! );
//! let server = Server::start(granii, ServeConfig::default());
//! let graph = Arc::new(Dataset::CoAuthorsCiteseer.load(Scale::Tiny).unwrap());
//! let response = server
//!     .process(ServeRequest::new(ModelKind::Gcn, graph, 64, 128))
//!     .unwrap();
//! assert!(!response.output.as_slice().is_empty());
//! server.shutdown();
//! ```

mod cache;
mod drift;
mod error;
mod fairness;
mod incident;
mod inspect;
mod metering;
mod recorder;
mod scrape;
mod server;
mod slo;
mod status;
mod trace;

pub use cache::{CachedPlan, PlanCache, PlanKey};
pub use drift::{DriftConfig, DriftDetector, DriftRow, DriftVerdict};
pub use error::{Result, ServeError};
pub use fairness::{TenantRow, TenantTable};
pub use incident::{
    IncidentBundle, IncidentCapturer, IncidentConfig, IncidentTrigger, RingEntry, SelectionAudit,
    SelectionAuditInfo, TimelineColumnInfo, TimelineInfo, TriggerInfo, AUDIT_CAPACITY,
};
pub use inspect::{
    InputInspector, InputProfile, InputRow, InspectConfig, InspectVerdict, DEGREE_BANDS,
};
pub use metering::{exact_share, MeterCharge, MeterRow, MeterTable};
pub use recorder::{FlightRecord, FlightRecorder, RecordKind, RecorderConfig, MAX_BATCH_MEMBERS};
pub use scrape::{render_prometheus, start_scrape, ScrapeConfig, ScrapeHandle};
pub use server::{
    RequestTiming, ServeConfig, ServeRequest, ServeResponse, ServeStats, Server, Ticket,
    TimelineConfig,
};
pub use slo::{LatencyObjective, Outcome, SloConfig, SloMonitor, SloRow, SloVerdict};
pub use status::{
    BatchingStatus, CacheStatus, DriftSignatureStatus, FairnessStatus, InputSignatureStatus,
    LatencySketchStatus, MeteringStatus, RecorderStatus, ServerStatus, SloObjectiveStatus,
    TenantMeterStatus, TenantStatus, WorkerStatus,
};
pub use trace::{RequestTrace, BATCH_TRACE_LANE, TRACE_LANE_BASE};
