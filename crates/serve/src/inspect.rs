//! Online input-drift detection: the second drift lane, keyed on input
//! statistics rather than cost-model residuals.
//!
//! GRANII's premise is that *input statistics* pick the primitive
//! composition — so a cached plan is only as good as the match between the
//! graph the selector inspected and the graphs the signature keeps serving.
//! The residual lane ([`crate::drift`]) cannot see this failure mode: a
//! cached plan executes its *bound* inputs, so its measured cost keeps
//! matching its prediction even while the tenant's live graph walks away
//! from what selection saw. This lane watches the inputs themselves.
//!
//! Per plan signature the inspector keeps two [`InputProfile`]s:
//!
//! - the **reference**, captured at plan-selection time (every cache miss
//!   re-pins it via [`InputInspector::rebind`]), and
//! - the **live** profile, an EWMA fold of each request's cheap O(nodes)
//!   degree statistics ([`InputInspector::observe`]).
//!
//! Divergence is measured two ways, matching how degree distributions
//! actually shift: the **L1 distance over degree-band fractions**
//! (empty/low/mid/high/hub — mass moving between bands), and the absolute
//! **degree-CV delta** (a single injected hub barely moves band mass but
//! explodes the coefficient of variation). Either crossing its threshold
//! counts as divergence; sustained divergence — `k_consecutive` times after
//! a `min_samples` warmup, same discipline as the residual lane — **flags**
//! the signature: the server invalidates its cached plan (forcing
//! re-selection on the graph as it is now), bumps
//! `serve.input_drift_flagged`, and emits a structured `serve.input_drift`
//! event. A per-signature cooldown rate-limits flag storms while the tenant
//! keeps mutating.

use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

use granii_graph::{Graph, GraphFeatures};

use crate::cache::PlanKey;

/// Number of degree bands tracked: empty, (0,8], (8,64], (64,512], >512.
pub const DEGREE_BANDS: usize = 5;

/// The slice of a graph's feature vector the input-drift lane watches:
/// degree-band fractions plus the summary shape statistics. Cheap to
/// extract (one O(nodes) pass, no allocation on the tracked counters) and
/// cheap to compare.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputProfile {
    /// Fractions of nodes per degree band (sums to 1 for non-empty graphs):
    /// `[empty, (0,8], (8,64], (64,512], >512]`.
    pub bands: [f64; DEGREE_BANDS],
    /// Average out-degree.
    pub avg_degree: f64,
    /// Degree coefficient of variation (skew proxy).
    pub degree_cv: f64,
    /// Adjacency density `nnz / n²`.
    pub density: f64,
}

impl InputProfile {
    /// Builds a profile from already-extracted graph features.
    pub fn from_features(f: &GraphFeatures) -> Self {
        InputProfile {
            bands: [
                f.empty_row_fraction,
                f.frac_deg_low,
                f.frac_deg_mid,
                f.frac_deg_high,
                f.frac_deg_hub,
            ],
            avg_degree: f.avg_degree,
            degree_cv: f.degree_cv,
            density: f.density,
        }
    }

    /// Extracts a profile directly from a graph (one O(nodes) pass).
    pub fn extract(graph: &Graph) -> Self {
        Self::from_features(&GraphFeatures::extract(graph))
    }

    /// L1 distance between the two profiles' degree-band distributions,
    /// in `[0, 2]`.
    pub fn band_l1(&self, other: &InputProfile) -> f64 {
        self.bands
            .iter()
            .zip(other.bands.iter())
            .map(|(a, b)| (a - b).abs())
            .sum()
    }

    /// EWMA-folds `sample` into `self` with smoothing factor `alpha`.
    fn fold(&mut self, sample: &InputProfile, alpha: f64) {
        let lerp = |current: f64, new: f64| alpha * new + (1.0 - alpha) * current;
        for (band, sample_band) in self.bands.iter_mut().zip(sample.bands.iter()) {
            *band = lerp(*band, *sample_band);
        }
        self.avg_degree = lerp(self.avg_degree, sample.avg_degree);
        self.degree_cv = lerp(self.degree_cv, sample.degree_cv);
        self.density = lerp(self.density, sample.density);
    }
}

/// Tuning knobs for the input-drift lane. Defaults mirror the residual
/// lane's conservatism: a flag requires sustained divergence — three
/// consecutive observations past a three-request warmup — and a quarter of
/// the band mass (or a 0.75 CV shift) to have moved.
#[derive(Debug, Clone, Copy)]
pub struct InspectConfig {
    /// Master switch; when false, `observe` records nothing.
    pub enabled: bool,
    /// EWMA smoothing factor in (0, 1] for the live profile.
    pub alpha: f64,
    /// Flag when the live band distribution's L1 distance from the
    /// reference exceeds this (band mass fraction moved, in `[0, 2]`).
    pub band_l1_threshold: f64,
    /// Flag when `|live.degree_cv − reference.degree_cv|` exceeds this
    /// (catches hub injection, which moves CV long before band mass).
    pub cv_threshold: f64,
    /// Observations required before the signature is eligible to flag.
    pub min_samples: u32,
    /// Consecutive diverged observations required to flag.
    pub k_consecutive: u32,
    /// Observations to ignore for flagging after a flag.
    pub cooldown: u32,
}

impl Default for InspectConfig {
    fn default() -> Self {
        InspectConfig {
            enabled: true,
            alpha: 0.3,
            band_l1_threshold: 0.25,
            cv_threshold: 0.75,
            min_samples: 3,
            k_consecutive: 3,
            cooldown: 32,
        }
    }
}

/// Per-signature inspection state. Unlike the residual lane, the state is
/// (re)anchored on every cache miss: re-selection inspects the graph as it
/// is now, so the new plan's reference must be the new profile.
#[derive(Debug, Clone, Copy)]
struct SigState {
    reference: InputProfile,
    live: InputProfile,
    samples: u64,
    consecutive: u32,
    cooldown: u32,
    flags: u64,
    last_band_l1: f64,
    last_cv_delta: f64,
}

/// What `observe` decided for one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InspectVerdict {
    /// Profile folded; live distribution within tolerance of the reference
    /// (or warming up / cooling down).
    Ok,
    /// Signature just crossed the flagging criteria: the caller should
    /// invalidate its plan-cache entry and emit the input-drift event.
    Flagged {
        /// Band-distribution L1 distance at flag time.
        band_l1: f64,
        /// Absolute degree-CV delta at flag time.
        cv_delta: f64,
    },
}

/// One row of the input table exposed on the status surface.
#[derive(Debug, Clone, Copy)]
pub struct InputRow {
    /// The plan signature this row tracks.
    pub key: PlanKey,
    /// Selection-time reference profile.
    pub reference: InputProfile,
    /// EWMA live profile.
    pub live: InputProfile,
    /// Band L1 distance between live and reference at last observation.
    pub band_l1: f64,
    /// Absolute degree-CV delta at last observation.
    pub cv_delta: f64,
    /// Profiles folded since the last rebind.
    pub samples: u64,
    /// Times this signature has been flagged (survives rebinds).
    pub flags: u64,
    /// Remaining cooldown observations (0 = eligible to flag).
    pub cooldown: u32,
}

/// Per-signature input-profile tracker. One instance lives in the server's
/// shared state; [`InputInspector::rebind`] is called at plan-selection
/// time and [`InputInspector::observe`] once per served request.
pub struct InputInspector {
    config: InspectConfig,
    states: Mutex<BTreeMap<PlanKey, SigState>>,
}

impl InputInspector {
    /// Creates an inspector with the given tuning.
    pub fn new(config: InspectConfig) -> Self {
        InputInspector {
            config,
            states: Mutex::new(BTreeMap::new()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &InspectConfig {
        &self.config
    }

    /// (Re)pins `key`'s reference to `profile` — called at plan-selection
    /// time, i.e. on every cache miss. The live profile and divergence
    /// streak restart from the reference; the flag tally and any active
    /// cooldown survive, so a flapping tenant cannot reset its own rate
    /// limit by triggering re-selection.
    pub fn rebind(&self, key: PlanKey, profile: InputProfile) {
        if !self.config.enabled {
            return;
        }
        let mut states = self.lock();
        let state = states.entry(key).or_insert(SigState {
            reference: profile,
            live: profile,
            samples: 0,
            consecutive: 0,
            cooldown: 0,
            flags: 0,
            last_band_l1: 0.0,
            last_cv_delta: 0.0,
        });
        state.reference = profile;
        state.live = profile;
        state.samples = 0;
        state.consecutive = 0;
        state.last_band_l1 = 0.0;
        state.last_cv_delta = 0.0;
    }

    /// Folds one request's profile into `key`'s live state and checks it
    /// against the selection-time reference. A key never rebound (inspector
    /// enabled mid-flight) is anchored on first observation.
    pub fn observe(&self, key: PlanKey, profile: &InputProfile) -> InspectVerdict {
        if !self.config.enabled {
            return InspectVerdict::Ok;
        }
        let mut states = self.lock();
        let state = states.entry(key).or_insert(SigState {
            reference: *profile,
            live: *profile,
            samples: 0,
            consecutive: 0,
            cooldown: 0,
            flags: 0,
            last_band_l1: 0.0,
            last_cv_delta: 0.0,
        });
        state.samples += 1;
        if state.samples > 1 {
            state.live.fold(profile, self.config.alpha);
        } else {
            state.live = *profile;
        }
        let band_l1 = state.live.band_l1(&state.reference);
        let cv_delta = (state.live.degree_cv - state.reference.degree_cv).abs();
        state.last_band_l1 = band_l1;
        state.last_cv_delta = cv_delta;
        if state.cooldown > 0 {
            state.cooldown -= 1;
            state.consecutive = 0;
            return InspectVerdict::Ok;
        }
        let diverged =
            band_l1 > self.config.band_l1_threshold || cv_delta > self.config.cv_threshold;
        if diverged && state.samples >= u64::from(self.config.min_samples) {
            state.consecutive += 1;
        } else {
            state.consecutive = 0;
        }
        if state.consecutive >= self.config.k_consecutive.max(1) {
            state.consecutive = 0;
            state.cooldown = self.config.cooldown;
            state.flags += 1;
            InspectVerdict::Flagged { band_l1, cv_delta }
        } else {
            InspectVerdict::Ok
        }
    }

    /// Total flags raised across all signatures.
    pub fn total_flags(&self) -> u64 {
        self.lock().values().map(|s| s.flags).sum()
    }

    /// Snapshot of every tracked signature, sorted by key (status surface).
    pub fn rows(&self) -> Vec<InputRow> {
        self.lock()
            .iter()
            .map(|(key, s)| InputRow {
                key: *key,
                reference: s.reference,
                live: s.live,
                band_l1: s.last_band_l1,
                cv_delta: s.last_cv_delta,
                samples: s.samples,
                flags: s.flags,
                cooldown: s.cooldown,
            })
            .collect()
    }

    /// Drops all per-signature state (model hot-swap).
    pub fn reset(&self) {
        self.lock().clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<PlanKey, SigState>> {
        self.states.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granii_gnn::spec::ModelKind;
    use granii_graph::generators;

    fn key() -> PlanKey {
        (ModelKind::Gcn, 0xabcd, 64, 32)
    }

    fn uniform() -> InputProfile {
        InputProfile {
            bands: [0.0, 1.0, 0.0, 0.0, 0.0],
            avg_degree: 2.0,
            degree_cv: 0.0,
            density: 0.01,
        }
    }

    fn hubby() -> InputProfile {
        InputProfile {
            bands: [0.0, 0.5, 0.3, 0.1, 0.1],
            avg_degree: 18.0,
            degree_cv: 4.0,
            density: 0.05,
        }
    }

    #[test]
    fn profile_extraction_matches_features() {
        let g = generators::star(100).unwrap();
        let p = InputProfile::extract(&g);
        let f = GraphFeatures::extract(&g);
        assert_eq!(p.bands[1], f.frac_deg_low);
        assert_eq!(p.bands[3], f.frac_deg_high);
        assert_eq!(p.degree_cv, f.degree_cv);
        let total: f64 = p.bands.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn band_l1_is_symmetric_and_bounded() {
        let a = uniform();
        let b = hubby();
        assert_eq!(a.band_l1(&b), b.band_l1(&a));
        assert!(a.band_l1(&b) <= 2.0);
        assert_eq!(a.band_l1(&a), 0.0);
    }

    #[test]
    fn stable_input_never_flags() {
        let inspector = InputInspector::new(InspectConfig::default());
        inspector.rebind(key(), uniform());
        for _ in 0..200 {
            assert_eq!(inspector.observe(key(), &uniform()), InspectVerdict::Ok);
        }
        assert_eq!(inspector.total_flags(), 0);
    }

    #[test]
    fn mutated_input_flags_after_warmup_plus_k() {
        let inspector = InputInspector::new(InspectConfig::default());
        inspector.rebind(key(), uniform());
        let mut flagged_at = None;
        for i in 1..=20u32 {
            if let InspectVerdict::Flagged { band_l1, cv_delta } =
                inspector.observe(key(), &hubby())
            {
                assert!(band_l1 > 0.25 || cv_delta > 0.75);
                flagged_at = Some(i);
                break;
            }
        }
        // Warmup (3) and the consecutive streak (3) overlap exactly as in
        // the residual lane: observations 3, 4, 5 count, flag on 5.
        assert_eq!(flagged_at, Some(5));
    }

    #[test]
    fn cv_shift_alone_flags_hub_injection() {
        // Hub injection: band mass barely moves (one node changes band) but
        // the degree CV explodes. Only the CV criterion can catch it.
        let reference = uniform();
        let mut spiked = uniform();
        spiked.degree_cv = 6.0;
        spiked.avg_degree = 3.2;
        let inspector = InputInspector::new(InspectConfig {
            band_l1_threshold: 0.25,
            cv_threshold: 0.75,
            ..InspectConfig::default()
        });
        inspector.rebind(key(), reference);
        let mut flagged = false;
        for _ in 0..10 {
            if matches!(
                inspector.observe(key(), &spiked),
                InspectVerdict::Flagged { .. }
            ) {
                flagged = true;
                break;
            }
        }
        assert!(flagged, "CV-only divergence must flag");
    }

    #[test]
    fn rebind_quiets_the_lane_after_reselection() {
        let inspector = InputInspector::new(InspectConfig {
            cooldown: 0,
            ..InspectConfig::default()
        });
        inspector.rebind(key(), uniform());
        let mut flagged = false;
        for _ in 0..10 {
            if matches!(
                inspector.observe(key(), &hubby()),
                InspectVerdict::Flagged { .. }
            ) {
                flagged = true;
                break;
            }
        }
        assert!(flagged);
        // Re-selection saw the mutated graph: reference becomes the new
        // shape, so continuing to serve it is no longer divergence.
        inspector.rebind(key(), hubby());
        for _ in 0..50 {
            assert_eq!(inspector.observe(key(), &hubby()), InspectVerdict::Ok);
        }
        assert_eq!(inspector.total_flags(), 1);
        let rows = inspector.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].flags, 1);
        assert!(rows[0].band_l1 < 1e-9);
    }

    #[test]
    fn cooldown_rate_limits_flag_storms() {
        let inspector = InputInspector::new(InspectConfig {
            min_samples: 1,
            k_consecutive: 1,
            cooldown: 10,
            ..InspectConfig::default()
        });
        inspector.rebind(key(), uniform());
        let mut flags = 0u64;
        for _ in 0..30 {
            if matches!(
                inspector.observe(key(), &hubby()),
                InspectVerdict::Flagged { .. }
            ) {
                flags += 1;
            }
        }
        // Flag on 1, cooldown swallows 2..=11, flag on 12, cooldown
        // swallows 13..=22, flag on 23: 3 flags, not 30.
        assert_eq!(flags, 3);
    }

    #[test]
    fn disabled_inspector_is_inert() {
        let inspector = InputInspector::new(InspectConfig {
            enabled: false,
            ..InspectConfig::default()
        });
        inspector.rebind(key(), uniform());
        for _ in 0..20 {
            assert_eq!(inspector.observe(key(), &hubby()), InspectVerdict::Ok);
        }
        assert!(inspector.rows().is_empty());
    }
}
