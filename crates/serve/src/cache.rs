//! Signature-keyed LRU cache of bound execution plans.
//!
//! The key identifies everything that determines a bound plan: the model
//! family, the graph's structural fingerprint ([`granii_graph::Graph::fingerprint`],
//! which covers the CSR pattern and edge weights — everything the input
//! features derive from), and the embedding sizes. A hit therefore skips
//! featurize + select + build + bind entirely and goes straight to a
//! steady-state `iterate`, which is the whole point of serving: the paper's
//! selection is cheap per input, but a repeated input should not even pay
//! that.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Mutex, PoisonError};

use granii_core::execplan::BoundPlan;
use granii_gnn::spec::{Composition, ModelKind};

/// Cache key: (model, graph fingerprint, k1, k2). Iteration count is
/// deliberately excluded — it only weighs hoisted work during *selection*,
/// and the cached entry records the composition chosen by the miss-time
/// request (see DESIGN.md §9).
pub type PlanKey = (ModelKind, u64, usize, usize);

/// A cached, executable plan: the composition the selector chose for this
/// signature plus its bound (setup-complete) execution plan. `iterate` is
/// stateful (it writes the plan's slots), so entries are shared behind a
/// `Mutex` — concurrent requests for the same signature serialize on the
/// entry, not on the whole cache.
pub struct CachedPlan {
    /// The composition the plan executes.
    pub composition: Composition,
    /// The bound plan; every `iterate` produces the identical output.
    pub bound: BoundPlan,
    /// The cost model's steady-state (per-iteration) latency prediction for
    /// this plan, captured at miss time. `None` when the entry was built on
    /// the degraded path (no usable cost model), which also opts it out of
    /// drift tracking — there is no prediction to drift from.
    pub predicted_steady_seconds: Option<f64>,
}

struct Inner {
    map: BTreeMap<PlanKey, (u64, Arc<Mutex<CachedPlan>>)>,
    tick: u64,
    capacity: usize,
}

/// Capacity-bounded LRU mapping plan signatures to bound plans, with hit,
/// miss, and eviction counters.
pub struct PlanCache {
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` bound plans (min 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner {
                map: BTreeMap::new(),
                tick: 0,
                capacity: capacity.max(1),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up `key`, marking it most-recently-used. Counts a hit or miss.
    pub fn lookup(&self, key: PlanKey) -> Option<Arc<Mutex<CachedPlan>>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some((used, entry)) => {
                *used = tick;
                let entry = entry.clone();
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a freshly bound plan, evicting least-recently-used entries
    /// beyond capacity. Returns the shared handle for the inserted plan.
    /// Two racing misses on the same key are benign: plans for one signature
    /// are interchangeable (deterministic build), last insert wins.
    pub fn insert(&self, key: PlanKey, plan: CachedPlan) -> Arc<Mutex<CachedPlan>> {
        let entry = Arc::new(Mutex::new(plan));
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(key, (tick, entry.clone()));
        let mut evicted = 0u64;
        while inner.map.len() > inner.capacity {
            let oldest = inner
                .map
                .iter()
                .min_by_key(|(_, (used, _))| *used)
                .map(|(k, _)| *k)
                .expect("non-empty map above capacity");
            inner.map.remove(&oldest);
            evicted += 1;
        }
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        entry
    }

    /// Removes `key` if present, returning whether an entry was dropped.
    /// Requests already holding the entry's `Arc` finish on the stale plan;
    /// the *next* lookup misses and re-selects — exactly the semantics the
    /// drift detector wants when a signature's cost model stops matching
    /// reality. Counts toward [`PlanCache::invalidations`], not evictions.
    pub fn invalidate(&self, key: PlanKey) -> bool {
        let removed = self.lock().map.remove(&key).is_some();
        if removed {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// Drops every entry (model hot-swap: all cached plans were selected and
    /// bound under the old cost models). Counts each dropped entry as an
    /// invalidation.
    pub fn clear(&self) {
        let dropped = {
            let mut inner = self.lock();
            let n = inner.map.len() as u64;
            inner.map.clear();
            n
        };
        if dropped > 0 {
            self.invalidations.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counts `n` extra hits without a lookup — the batch dispatcher's
    /// accounting for follower requests that ride the leader's entry (one
    /// signature-coalesced group does one real lookup; every coalesced
    /// follower was served from cache all the same).
    pub fn note_shared_hits(&self, n: u64) {
        if n > 0 {
            self.hits.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to stay under capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries removed by [`PlanCache::invalidate`] / [`PlanCache::clear`]
    /// (drift flags, model hot-swaps) rather than by LRU pressure.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Snapshot of the cached keys, most-recently-used last (status surface).
    pub fn keys(&self) -> Vec<PlanKey> {
        let inner = self.lock();
        let mut keyed: Vec<(u64, PlanKey)> =
            inner.map.iter().map(|(k, (used, _))| (*used, *k)).collect();
        keyed.sort_unstable();
        keyed.into_iter().map(|(_, k)| k).collect()
    }

    /// Hit fraction over all lookups so far (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total > 0.0 {
            hits / total
        } else {
            0.0
        }
    }
}
