//! The serving runtime: worker pool, bounded queue, and request execution.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use granii_core::execplan::{ExecPlan, PlanInputs};
use granii_core::{runtime, CoreError, Granii};
use granii_gnn::spec::{Composition, LayerConfig, ModelKind};
use granii_gnn::{Exec, GraphCtx};
use granii_graph::Graph;
use granii_matrix::device::Engine;
use granii_matrix::DenseMatrix;

use crate::cache::{CachedPlan, PlanCache, PlanKey};
use crate::{Result, ServeError};

/// Seed for the deterministic synthetic feature/weight matrices every
/// request binds against. Fixed so that, for a given (model, graph, k1, k2)
/// signature, hits and misses produce bitwise-identical outputs — and so a
/// serial rerun of the same request stream reproduces the served results.
const SERVE_SEED: u64 = 41;

/// Serving runtime configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Maximum queued (accepted but not yet running) requests; submits
    /// beyond this are shed with [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Maximum bound plans retained in the LRU cache.
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 64,
            cache_capacity: 64,
        }
    }
}

/// One inference request: which model to run on which graph at which
/// embedding sizes, and how many iterations the selection should amortize
/// hoisted work over.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// GNN model family.
    pub model: ModelKind,
    /// The input graph (shared — requests are cheap to clone).
    pub graph: Arc<Graph>,
    /// Input embedding width.
    pub k1: usize,
    /// Output embedding width.
    pub k2: usize,
    /// Iteration count selection amortizes hoisted work over.
    pub iterations: usize,
    /// Optional per-request deadline, measured from submit. Checked when a
    /// worker dequeues the request: an expired request is not dropped but
    /// served degraded (default composition, no cost-model consultation).
    pub timeout: Option<Duration>,
}

impl ServeRequest {
    /// A request with the paper's default iteration count and no deadline.
    pub fn new(model: ModelKind, graph: Arc<Graph>, k1: usize, k2: usize) -> Self {
        ServeRequest {
            model,
            graph,
            k1,
            k2,
            iterations: runtime::DEFAULT_ITERATIONS,
            timeout: None,
        }
    }

    /// Sets the amortization iteration count.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets a deadline relative to submit time.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    fn plan_key(&self) -> PlanKey {
        (self.model, self.graph.fingerprint(), self.k1, self.k2)
    }
}

/// Per-request wall-clock breakdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestTiming {
    /// Time spent queued before a worker picked the request up.
    pub queue_seconds: f64,
    /// Time spent choosing and binding a plan (zero on a cache hit).
    pub select_seconds: f64,
    /// Time spent in the steady-state `iterate`.
    pub execute_seconds: f64,
    /// Submit-to-reply total.
    pub total_seconds: f64,
}

/// The outcome of a served request.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The composition that produced the output.
    pub composition: Composition,
    /// The executed layer output (`n x k2`).
    pub output: DenseMatrix,
    /// Wall-clock breakdown.
    pub timing: RequestTiming,
    /// Whether a cached bound plan served the request.
    pub cache_hit: bool,
    /// Whether the request fell back to the default composition (expired
    /// deadline or cost-model prediction failure).
    pub degraded: bool,
}

/// Point-in-time serving counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests that completed with a response.
    pub completed: u64,
    /// Requests that failed with an error.
    pub failed: u64,
    /// Requests shed at submit because the queue was full.
    pub shed: u64,
    /// Requests served via the default-composition fallback.
    pub degraded: u64,
    /// Requests whose deadline had expired when dequeued.
    pub deadline_expired: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// Plan-cache evictions.
    pub cache_evictions: u64,
    /// Bound plans currently cached.
    pub cache_len: usize,
    /// Hit fraction over all cache lookups.
    pub cache_hit_rate: f64,
    /// Requests currently queued.
    pub queue_depth: usize,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    degraded: AtomicU64,
    deadline_expired: AtomicU64,
}

struct Job {
    request: ServeRequest,
    enqueued: Instant,
    deadline: Option<Instant>,
    reply: mpsc::Sender<Result<ServeResponse>>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Inner {
    granii: Arc<Granii>,
    cache: PlanCache,
    queue: Mutex<QueueState>,
    not_empty: Condvar,
    config: ServeConfig,
    counters: Counters,
}

impl Inner {
    fn lock_queue(&self) -> MutexGuard<'_, QueueState> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A handle to one in-flight request; [`Ticket::wait`] blocks for the reply.
pub struct Ticket {
    rx: mpsc::Receiver<Result<ServeResponse>>,
}

impl Ticket {
    /// Blocks until the request completes.
    pub fn wait(self) -> Result<ServeResponse> {
        self.rx.recv().unwrap_or(Err(ServeError::WorkerLost))
    }
}

/// A thread-safe serving runtime over one shared [`Granii`] instance.
///
/// Requests flow submit → bounded queue → worker pool → (plan cache | select
/// + bind) → `iterate` → reply. Dropping the server shuts it down
/// gracefully: queued requests are drained, workers joined.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the worker pool.
    pub fn start(granii: Arc<Granii>, config: ServeConfig) -> Self {
        let inner = Arc::new(Inner {
            granii,
            cache: PlanCache::new(config.cache_capacity),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            config: config.clone(),
            counters: Counters::default(),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("granii-serve-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn serve worker")
            })
            .collect();
        Server { inner, workers }
    }

    /// Submits a request without blocking on its execution.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is at capacity (the request
    /// is shed — backpressure, never unbounded growth), or
    /// [`ServeError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, request: ServeRequest) -> Result<Ticket> {
        let now = Instant::now();
        let deadline = request.timeout.map(|t| now + t);
        let (ticket, depth) = {
            let mut q = self.inner.lock_queue();
            if q.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if q.jobs.len() >= self.inner.config.queue_depth {
                drop(q);
                self.inner.counters.shed.fetch_add(1, Ordering::Relaxed);
                granii_telemetry::counter_add("serve.shed", 1);
                return Err(ServeError::Overloaded {
                    depth: self.inner.config.queue_depth,
                });
            }
            let (tx, rx) = mpsc::channel();
            q.jobs.push_back(Job {
                request,
                enqueued: now,
                deadline,
                reply: tx,
            });
            (Ticket { rx }, q.jobs.len())
        };
        self.inner.not_empty.notify_one();
        self.inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
        granii_telemetry::counter_add("serve.submitted", 1);
        granii_telemetry::gauge_set("serve.queue_depth", depth as f64);
        Ok(ticket)
    }

    /// Submits a request and blocks until it completes.
    ///
    /// # Errors
    ///
    /// Propagates submit errors and the request's execution outcome.
    pub fn process(&self, request: ServeRequest) -> Result<ServeResponse> {
        self.submit(request)?.wait()
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServeStats {
        let c = &self.inner.counters;
        ServeStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            degraded: c.degraded.load(Ordering::Relaxed),
            deadline_expired: c.deadline_expired.load(Ordering::Relaxed),
            cache_hits: self.inner.cache.hits(),
            cache_misses: self.inner.cache.misses(),
            cache_evictions: self.inner.cache.evictions(),
            cache_len: self.inner.cache.len(),
            cache_hit_rate: self.inner.cache.hit_rate(),
            queue_depth: self.inner.lock_queue().jobs.len(),
        }
    }

    /// Shuts down gracefully: stops accepting requests, drains the queue,
    /// joins every worker. Equivalent to dropping the server.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.inner.lock_queue().shutdown = true;
        self.inner.not_empty.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop(inner: &Inner) {
    // Each worker owns its engine: `Engine` accumulates a profile under a
    // mutex per kernel charge, so sharing one across workers would serialize
    // them — and the profile is drained per request below to keep a
    // long-running server's memory flat.
    let engine = Engine::modeled(inner.granii.device());
    let exec = Exec::real(&engine);
    loop {
        let job = {
            let mut q = inner.lock_queue();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    let depth = q.jobs.len();
                    drop(q);
                    granii_telemetry::gauge_set("serve.queue_depth", depth as f64);
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = inner
                    .not_empty
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let reply = job.reply.clone();
        let result = process_job(inner, &exec, job);
        match &result {
            Ok(response) => {
                inner.counters.completed.fetch_add(1, Ordering::Relaxed);
                if response.degraded {
                    inner.counters.degraded.fetch_add(1, Ordering::Relaxed);
                    granii_telemetry::counter_add("serve.degraded", 1);
                }
                granii_telemetry::counter_add("serve.completed", 1);
                granii_telemetry::histogram_record_seconds(
                    "serve.request_latency",
                    response.timing.total_seconds,
                );
                granii_telemetry::gauge_set("serve.cache_hit_rate", inner.cache.hit_rate());
            }
            Err(_) => {
                inner.counters.failed.fetch_add(1, Ordering::Relaxed);
                granii_telemetry::counter_add("serve.failed", 1);
            }
        }
        // Receiver may have given up; a dead ticket is not a worker error.
        let _ = reply.send(result);
        // Keep the per-worker profile from growing without bound.
        engine.take_profile();
    }
}

/// Picks the composition for a cache miss. Normal path: full cost-model
/// selection. Degraded path (expired deadline, or the cost models cannot
/// predict a candidate): the plan's default composition — the first eligible
/// candidate, which every compiled model is guaranteed to have.
fn choose_composition(
    inner: &Inner,
    request: &ServeRequest,
    cfg: LayerConfig,
    expired: bool,
) -> Result<(Composition, bool)> {
    if !expired {
        match inner
            .granii
            .select_with_config(request.model, &request.graph, cfg, request.iterations)
        {
            Ok(selection) => return Ok((selection.composition, false)),
            Err(CoreError::MissingCostModel { .. }) => {} // fall through, degraded
            Err(e) => return Err(e.into()),
        }
    }
    let plan = inner.granii.compiled(request.model, cfg)?;
    let eligible = plan.eligible(cfg.k_in, cfg.k_out);
    let first = eligible.first().ok_or(CoreError::NoCandidates {
        model: request.model.name().to_owned(),
    })?;
    Ok((first.composition, true))
}

fn process_job(inner: &Inner, exec: &Exec, job: Job) -> Result<ServeResponse> {
    let Job {
        request,
        enqueued,
        deadline,
        ..
    } = job;
    let _span = granii_telemetry::span!(
        "serve.request",
        model = request.model.name(),
        nodes = request.graph.num_nodes(),
    );
    let start = Instant::now();
    let queue_seconds = start.duration_since(enqueued).as_secs_f64();
    granii_telemetry::histogram_record_seconds("serve.queue_wait", queue_seconds);

    // Deadline policy: checked once, at dequeue. An expired request is still
    // served — a late answer beats none — but skips the cost models.
    let expired = deadline.is_some_and(|d| start >= d);
    if expired {
        inner
            .counters
            .deadline_expired
            .fetch_add(1, Ordering::Relaxed);
        granii_telemetry::counter_add("serve.deadline_expired", 1);
    }

    let cfg = LayerConfig::new(request.k1, request.k2);
    let key = request.plan_key();
    let (entry, cache_hit, degraded, select_seconds) = match inner.cache.lookup(key) {
        // Hit: the signature's plan is already bound — even an expired
        // request serves it at full quality.
        Some(entry) => (entry, true, false, 0.0),
        None => {
            let t_select = Instant::now();
            let (composition, degraded) = choose_composition(inner, &request, cfg, expired)?;
            let plan = inner.granii.compiled(request.model, cfg)?;
            let candidate = plan
                .candidates
                .iter()
                .find(|c| c.composition == composition)
                .ok_or_else(|| {
                    CoreError::InvalidIr(format!(
                        "selected composition {} missing from compiled plan",
                        composition.name()
                    ))
                })?;
            let ctx = GraphCtx::new(&request.graph).map_err(CoreError::from)?;
            let h = DenseMatrix::random(request.graph.num_nodes(), request.k1, 1.0, SERVE_SEED);
            let plan_inputs = PlanInputs::for_model(request.model, cfg, &ctx, h, SERVE_SEED + 1);
            let exec_plan = ExecPlan::build(&candidate.program)?;
            let bound = exec_plan.bind(exec, &plan_inputs.as_program_inputs())?;
            let entry = inner.cache.insert(key, CachedPlan { composition, bound });
            (entry, false, degraded, t_select.elapsed().as_secs_f64())
        }
    };

    let t_execute = Instant::now();
    let (composition, output) = {
        let mut cached = entry.lock().unwrap_or_else(PoisonError::into_inner);
        let output = cached.bound.iterate(exec)?.clone();
        (cached.composition, output)
    };
    let execute_seconds = t_execute.elapsed().as_secs_f64();
    granii_telemetry::counter_add(if cache_hit { "serve.cache_hits" } else { "serve.cache_misses" }, 1);

    Ok(ServeResponse {
        composition,
        output,
        timing: RequestTiming {
            queue_seconds,
            select_seconds,
            execute_seconds,
            total_seconds: enqueued.elapsed().as_secs_f64(),
        },
        cache_hit,
        degraded,
    })
}
