//! The serving runtime: worker pool, bounded queue, and request execution.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use granii_core::cost::FeaturizedInput;
use granii_core::execplan::{ExecPlan, PlanInputs};
use granii_core::{runtime, CoreError, Granii};
use granii_gnn::spec::{Composition, LayerConfig, ModelKind};
use granii_gnn::{Exec, GraphCtx};
use granii_graph::Graph;
use granii_matrix::device::Engine;
use granii_matrix::DenseMatrix;
use granii_telemetry::{event, DistinctCounter, Sketch, SketchSnapshot, DEFAULT_SKETCH_ALPHA};

use crate::cache::{CachedPlan, PlanCache, PlanKey};
use crate::drift::{DriftConfig, DriftDetector, DriftVerdict};
use crate::inspect::{InputInspector, InputProfile, InspectConfig, InspectVerdict};
use crate::slo::{Outcome, SloConfig, SloMonitor, SloVerdict};
use crate::status::{
    CacheStatus, DriftSignatureStatus, InputSignatureStatus, LatencySketchStatus, ServerStatus,
    SloObjectiveStatus, WorkerStatus,
};
use crate::trace::{self, RequestTrace};
use crate::{Result, ServeError};

/// Seed for the deterministic synthetic feature/weight matrices every
/// request binds against. Fixed so that, for a given (model, graph, k1, k2)
/// signature, hits and misses produce bitwise-identical outputs — and so a
/// serial rerun of the same request stream reproduces the served results.
const SERVE_SEED: u64 = 41;

/// Serving runtime configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Maximum queued (accepted but not yet running) requests; submits
    /// beyond this are shed with [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Maximum bound plans retained in the LRU cache.
    pub cache_capacity: usize,
    /// Export a per-request trace lane for every `N`-th request (0 disables
    /// sampling; has no effect unless telemetry is enabled). Unsampled
    /// requests carry no trace state at all.
    pub trace_sample_every: u64,
    /// Online cost-model drift detection tuning.
    pub drift: DriftConfig,
    /// Online input-drift detection tuning (the second lane, keyed on
    /// degree-distribution statistics instead of cost residuals).
    pub inspect: InspectConfig,
    /// Latency-SLO objectives and burn-rate monitoring tuning.
    pub slo: SloConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 64,
            cache_capacity: 64,
            trace_sample_every: 0,
            drift: DriftConfig::default(),
            inspect: InspectConfig::default(),
            slo: SloConfig::default(),
        }
    }
}

/// One inference request: which model to run on which graph at which
/// embedding sizes, and how many iterations the selection should amortize
/// hoisted work over.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// GNN model family.
    pub model: ModelKind,
    /// The input graph (shared — requests are cheap to clone).
    pub graph: Arc<Graph>,
    /// Input embedding width.
    pub k1: usize,
    /// Output embedding width.
    pub k2: usize,
    /// Iteration count selection amortizes hoisted work over.
    pub iterations: usize,
    /// Optional per-request deadline, measured from submit. Checked when a
    /// worker dequeues the request: an expired request is not dropped but
    /// served degraded (default composition, no cost-model consultation).
    pub timeout: Option<Duration>,
    /// Optional pinned cache signature. By default the plan key hashes the
    /// graph's content fingerprint, so a tenant whose graph mutates simply
    /// misses the cache and re-selects. A pinned signature says "this is
    /// the same logical graph" across mutations — the cache keeps serving
    /// the stale bound plan, which is exactly the blind spot the
    /// input-drift lane exists to close.
    pub signature: Option<u64>,
}

impl ServeRequest {
    /// A request with the paper's default iteration count and no deadline.
    pub fn new(model: ModelKind, graph: Arc<Graph>, k1: usize, k2: usize) -> Self {
        ServeRequest {
            model,
            graph,
            k1,
            k2,
            iterations: runtime::DEFAULT_ITERATIONS,
            timeout: None,
            signature: None,
        }
    }

    /// Sets the amortization iteration count.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets a deadline relative to submit time.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Pins the plan-cache signature to a tenant-stable identity instead of
    /// the graph's content fingerprint (see [`ServeRequest::signature`]).
    pub fn with_signature(mut self, signature: u64) -> Self {
        self.signature = Some(signature);
        self
    }

    fn plan_key(&self) -> PlanKey {
        (
            self.model,
            self.signature.unwrap_or_else(|| self.graph.fingerprint()),
            self.k1,
            self.k2,
        )
    }
}

/// Per-request wall-clock breakdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestTiming {
    /// Time spent queued before a worker picked the request up.
    pub queue_seconds: f64,
    /// Time spent choosing and binding a plan (zero on a cache hit).
    pub select_seconds: f64,
    /// Time spent in the steady-state `iterate`.
    pub execute_seconds: f64,
    /// Submit-to-reply total.
    pub total_seconds: f64,
}

/// The outcome of a served request.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The composition that produced the output.
    pub composition: Composition,
    /// The executed layer output (`n x k2`).
    pub output: DenseMatrix,
    /// Wall-clock breakdown.
    pub timing: RequestTiming,
    /// Whether a cached bound plan served the request.
    pub cache_hit: bool,
    /// Whether the request fell back to the default composition (expired
    /// deadline or cost-model prediction failure).
    pub degraded: bool,
}

/// Point-in-time serving counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests that completed with a response.
    pub completed: u64,
    /// Requests that failed with an error.
    pub failed: u64,
    /// Requests shed at submit because the queue was full.
    pub shed: u64,
    /// Requests served via the default-composition fallback.
    pub degraded: u64,
    /// Requests whose deadline had expired when dequeued.
    pub deadline_expired: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// Plan-cache evictions.
    pub cache_evictions: u64,
    /// Plan-cache entries dropped by drift flags or model hot-swaps.
    pub cache_invalidations: u64,
    /// Bound plans currently cached.
    pub cache_len: usize,
    /// Hit fraction over all cache lookups.
    pub cache_hit_rate: f64,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// Signatures flagged by the online drift detector (total flags).
    pub drift_flagged: u64,
    /// Signatures flagged by the input-drift lane (total flags).
    pub input_drift_flagged: u64,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    degraded: AtomicU64,
    deadline_expired: AtomicU64,
    /// Cumulative over the server's lifetime — unlike the detector's own
    /// tally, this survives [`Server::replace_granii`] resets.
    drift_flagged: AtomicU64,
    /// Same lifetime semantics, for the input-drift lane.
    input_drift_flagged: AtomicU64,
}

/// Server-owned latency sketches, one per outcome class. Always recorded
/// (like the atomic [`Counters`]) so the status surface, SLO math, and
/// `serve_bench` get SLO-grade quantiles without telemetry being enabled;
/// the telemetry registry gets a gated mirror on the same names.
struct LatencySketches {
    hit: Sketch,
    miss: Sketch,
    degraded: Sketch,
}

impl LatencySketches {
    fn new() -> Self {
        LatencySketches {
            hit: Sketch::new(DEFAULT_SKETCH_ALPHA),
            miss: Sketch::new(DEFAULT_SKETCH_ALPHA),
            degraded: Sketch::new(DEFAULT_SKETCH_ALPHA),
        }
    }

    fn for_outcome(&self, outcome: Outcome) -> &Sketch {
        match outcome {
            Outcome::Hit => &self.hit,
            Outcome::Miss => &self.miss,
            Outcome::Degraded => &self.degraded,
        }
    }

    fn snapshots(&self) -> Vec<SketchSnapshot> {
        vec![
            self.hit.snapshot("serve.latency.hit"),
            self.miss.snapshot("serve.latency.miss"),
            self.degraded.snapshot("serve.latency.degraded"),
        ]
    }
}

/// Per-worker activity slots (status surface): nanoseconds spent processing
/// and requests handled, indexed by worker.
struct WorkerSlot {
    busy_ns: AtomicU64,
    requests: AtomicU64,
}

struct Job {
    id: u64,
    request: ServeRequest,
    enqueued: Instant,
    deadline: Option<Instant>,
    /// Stage stopwatch for 1-in-N sampled requests; `None` (the common
    /// case) adds nothing to the steady-state path.
    trace: Option<Box<RequestTrace>>,
    reply: mpsc::Sender<Result<ServeResponse>>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Inner {
    /// Behind a `RwLock` so [`Server::replace_granii`] can hot-swap cost
    /// models; the per-request read is an uncontended lock + `Arc` clone.
    granii: RwLock<Arc<Granii>>,
    cache: PlanCache,
    drift: DriftDetector,
    inspect: InputInspector,
    slo: SloMonitor,
    latency: LatencySketches,
    /// Unique plan signatures observed (HyperLogLog; always recorded).
    distinct_signatures: DistinctCounter,
    queue: Mutex<QueueState>,
    not_empty: Condvar,
    config: ServeConfig,
    counters: Counters,
    next_request_id: AtomicU64,
    started: Instant,
    workers: Vec<WorkerSlot>,
}

impl Inner {
    fn lock_queue(&self) -> MutexGuard<'_, QueueState> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn granii(&self) -> Arc<Granii> {
        self.granii
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// A handle to one in-flight request; [`Ticket::wait`] blocks for the reply.
pub struct Ticket {
    rx: mpsc::Receiver<Result<ServeResponse>>,
}

impl Ticket {
    /// Blocks until the request completes.
    pub fn wait(self) -> Result<ServeResponse> {
        self.rx.recv().unwrap_or(Err(ServeError::WorkerLost))
    }
}

/// A thread-safe serving runtime over one shared [`Granii`] instance.
///
/// Requests flow submit → bounded queue → worker pool → (plan cache, or
/// select + bind) → `iterate` → reply. Dropping the server shuts it down
/// gracefully: queued requests are drained, workers joined.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the worker pool.
    pub fn start(granii: Arc<Granii>, config: ServeConfig) -> Self {
        let worker_count = config.workers.max(1);
        let inner = Arc::new(Inner {
            granii: RwLock::new(granii),
            cache: PlanCache::new(config.cache_capacity),
            drift: DriftDetector::new(config.drift),
            inspect: InputInspector::new(config.inspect),
            slo: SloMonitor::new(config.slo.clone()),
            latency: LatencySketches::new(),
            distinct_signatures: DistinctCounter::new(),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            config: config.clone(),
            counters: Counters::default(),
            next_request_id: AtomicU64::new(0),
            started: Instant::now(),
            workers: (0..worker_count)
                .map(|_| WorkerSlot {
                    busy_ns: AtomicU64::new(0),
                    requests: AtomicU64::new(0),
                })
                .collect(),
        });
        let workers = (0..worker_count)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("granii-serve-{i}"))
                    .spawn(move || worker_loop(&inner, i))
                    .expect("spawn serve worker")
            })
            .collect();
        Server { inner, workers }
    }

    /// Submits a request without blocking on its execution.
    ///
    /// Assigns the request its id; every 1-in-`trace_sample_every` id
    /// (telemetry permitting) carries a [`RequestTrace`] that becomes a
    /// per-request lane in the Chrome trace.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is at capacity (the request
    /// is shed — backpressure, never unbounded growth), or
    /// [`ServeError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, request: ServeRequest) -> Result<Ticket> {
        let now = Instant::now();
        let deadline = request.timeout.map(|t| now + t);
        let id = self.inner.next_request_id.fetch_add(1, Ordering::Relaxed);
        let trace = if trace::sampled(id, self.inner.config.trace_sample_every) {
            Some(Box::new(RequestTrace::new(id)))
        } else {
            None
        };
        let (ticket, depth) = {
            let mut q = self.inner.lock_queue();
            if q.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if q.jobs.len() >= self.inner.config.queue_depth {
                let depth = q.jobs.len();
                drop(q);
                self.inner.counters.shed.fetch_add(1, Ordering::Relaxed);
                granii_telemetry::counter_add("serve.shed", 1);
                // Shed requests must not leave the gauges stale: the queue
                // is observably full right now, and the hit rate is whatever
                // the cache last reported.
                granii_telemetry::gauge_set("serve.queue_depth", depth as f64);
                granii_telemetry::gauge_set("serve.cache_hit_rate", self.inner.cache.hit_rate());
                event!("serve.shed", id = id, depth = depth);
                return Err(ServeError::Overloaded {
                    depth: self.inner.config.queue_depth,
                });
            }
            let (tx, rx) = mpsc::channel();
            q.jobs.push_back(Job {
                id,
                request,
                enqueued: now,
                deadline,
                trace,
                reply: tx,
            });
            (Ticket { rx }, q.jobs.len())
        };
        self.inner.not_empty.notify_one();
        self.inner
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        granii_telemetry::counter_add("serve.submitted", 1);
        granii_telemetry::gauge_set("serve.queue_depth", depth as f64);
        event!("serve.enqueue", id = id, depth = depth);
        Ok(ticket)
    }

    /// Submits a request and blocks until it completes.
    ///
    /// # Errors
    ///
    /// Propagates submit errors and the request's execution outcome.
    pub fn process(&self, request: ServeRequest) -> Result<ServeResponse> {
        self.submit(request)?.wait()
    }

    /// Hot-swaps the underlying [`Granii`] instance (new cost models —
    /// e.g. after an offline retrain repaired a drift-flagged model). Every
    /// cached plan was selected under the old models, so the plan cache is
    /// flushed and the drift detector's residual history dropped; in-flight
    /// requests finish on the instance they started with. The replacement
    /// must target the same device as the original — worker engines are
    /// built once, at startup.
    pub fn replace_granii(&self, granii: Arc<Granii>) {
        *self
            .inner
            .granii
            .write()
            .unwrap_or_else(PoisonError::into_inner) = granii;
        self.inner.cache.clear();
        self.inner.drift.reset();
        self.inner.inspect.reset();
        event!("serve.model_swap");
    }

    /// Point-in-time snapshots of the per-outcome latency sketches
    /// (`serve.latency.hit` / `.miss` / `.degraded`). Always populated —
    /// the server records them unconditionally, telemetry or not — and
    /// mergeable, so a caller can fold them into one whole-server
    /// distribution with [`SketchSnapshot::merge`].
    pub fn latency_sketches(&self) -> Vec<SketchSnapshot> {
        self.inner.latency.snapshots()
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServeStats {
        let c = &self.inner.counters;
        ServeStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            degraded: c.degraded.load(Ordering::Relaxed),
            deadline_expired: c.deadline_expired.load(Ordering::Relaxed),
            cache_hits: self.inner.cache.hits(),
            cache_misses: self.inner.cache.misses(),
            cache_evictions: self.inner.cache.evictions(),
            cache_invalidations: self.inner.cache.invalidations(),
            cache_len: self.inner.cache.len(),
            cache_hit_rate: self.inner.cache.hit_rate(),
            queue_depth: self.inner.lock_queue().jobs.len(),
            drift_flagged: c.drift_flagged.load(Ordering::Relaxed),
            input_drift_flagged: c.input_drift_flagged.load(Ordering::Relaxed),
        }
    }

    /// Assembles the live status snapshot (see [`ServerStatus`]): queue and
    /// worker utilization, cache counters, degradation rates, and the drift
    /// detector's per-signature residual table.
    pub fn status(&self) -> ServerStatus {
        let stats = self.stats();
        let uptime_seconds = self.inner.started.elapsed().as_secs_f64();
        let completed = stats.completed.max(1) as f64;
        ServerStatus {
            uptime_seconds,
            queue_depth: stats.queue_depth,
            queue_capacity: self.inner.config.queue_depth,
            submitted: stats.submitted,
            completed: stats.completed,
            failed: stats.failed,
            shed: stats.shed,
            degraded: stats.degraded,
            deadline_expired: stats.deadline_expired,
            degraded_rate: if stats.completed == 0 {
                0.0
            } else {
                stats.degraded as f64 / completed
            },
            deadline_expired_rate: if stats.completed == 0 {
                0.0
            } else {
                stats.deadline_expired as f64 / completed
            },
            drift_flagged: stats.drift_flagged,
            input_drift_flagged: stats.input_drift_flagged,
            distinct_signatures: self.inner.distinct_signatures.estimate(),
            workers: self
                .inner
                .workers
                .iter()
                .enumerate()
                .map(|(index, slot)| {
                    let busy_seconds = slot.busy_ns.load(Ordering::Relaxed) as f64 / 1e9;
                    WorkerStatus {
                        index,
                        requests: slot.requests.load(Ordering::Relaxed),
                        busy_seconds,
                        utilization: if uptime_seconds > 0.0 {
                            (busy_seconds / uptime_seconds).min(1.0)
                        } else {
                            0.0
                        },
                    }
                })
                .collect(),
            cache: CacheStatus {
                hits: stats.cache_hits,
                misses: stats.cache_misses,
                evictions: stats.cache_evictions,
                invalidations: stats.cache_invalidations,
                len: stats.cache_len,
                capacity: self.inner.config.cache_capacity,
                hit_rate: stats.cache_hit_rate,
            },
            drift: {
                let mut rows = self.inner.drift.rows();
                // Fingerprint-first ordering so `--status-out` artifacts
                // from different runs diff cleanly regardless of which
                // model family hit the detector first.
                rows.sort_by_key(|row| (row.key.1, row.key.0.name(), row.key.2, row.key.3));
                rows.into_iter()
                    .map(|row| {
                        let (model, fingerprint, k1, k2) = row.key;
                        DriftSignatureStatus {
                            model: model.name().to_owned(),
                            fingerprint: format!("{fingerprint:016x}"),
                            k1,
                            k2,
                            ewma_residual: row.ewma_residual,
                            last_residual: row.last_residual,
                            samples: row.samples,
                            flags: row.flags,
                            cooldown: u64::from(row.cooldown),
                        }
                    })
                    .collect()
            },
            input: {
                let mut rows = self.inner.inspect.rows();
                rows.sort_by_key(|row| (row.key.1, row.key.0.name(), row.key.2, row.key.3));
                rows.into_iter()
                    .map(|row| {
                        let (model, fingerprint, k1, k2) = row.key;
                        InputSignatureStatus {
                            model: model.name().to_owned(),
                            fingerprint: format!("{fingerprint:016x}"),
                            k1,
                            k2,
                            band_l1: row.band_l1,
                            cv_delta: row.cv_delta,
                            live_avg_degree: row.live.avg_degree,
                            live_degree_cv: row.live.degree_cv,
                            reference_degree_cv: row.reference.degree_cv,
                            samples: row.samples,
                            flags: row.flags,
                            cooldown: u64::from(row.cooldown),
                        }
                    })
                    .collect()
            },
            slo: self
                .inner
                .slo
                .rows()
                .into_iter()
                .map(|row| SloObjectiveStatus {
                    outcome: row.objective.outcome.name().to_owned(),
                    threshold_ms: row.objective.threshold_ms,
                    target: row.objective.target,
                    total: row.total,
                    violations: row.violations,
                    compliance: row.compliance,
                    burn_rate: row.burn_rate,
                    burning: row.burning,
                    windows_closed: row.windows_closed,
                })
                .collect(),
            latency: self
                .inner
                .latency
                .snapshots()
                .into_iter()
                .map(|s| LatencySketchStatus {
                    outcome: s.name.rsplit('.').next().unwrap_or(&s.name).to_owned(),
                    count: s.count,
                    mean_ms: s.mean_ns() / 1e6,
                    p50_ms: s.p50_ns() / 1e6,
                    p95_ms: s.p95_ns() / 1e6,
                    p99_ms: s.p99_ns() / 1e6,
                    p999_ms: s.p999_ns() / 1e6,
                })
                .collect(),
        }
    }

    /// Shuts down gracefully: stops accepting requests, drains the queue,
    /// joins every worker. Equivalent to dropping the server.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.inner.lock_queue().shutdown = true;
        self.inner.not_empty.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop(inner: &Inner, index: usize) {
    // Each worker owns its engine: `Engine` accumulates a profile under a
    // mutex per kernel charge, so sharing one across workers would serialize
    // them — and the profile is drained per request below to keep a
    // long-running server's memory flat.
    let engine = Engine::modeled(inner.granii().device());
    let exec = Exec::real(&engine);
    loop {
        let job = {
            let mut q = inner.lock_queue();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    let depth = q.jobs.len();
                    drop(q);
                    granii_telemetry::gauge_set("serve.queue_depth", depth as f64);
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = inner
                    .not_empty
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let id = job.id;
        let reply = job.reply.clone();
        let processing = Instant::now();
        let result = process_job(inner, &exec, job);
        let slot = &inner.workers[index];
        slot.busy_ns
            .fetch_add(processing.elapsed().as_nanos() as u64, Ordering::Relaxed);
        slot.requests.fetch_add(1, Ordering::Relaxed);
        match &result {
            Ok(response) => {
                inner.counters.completed.fetch_add(1, Ordering::Relaxed);
                if response.degraded {
                    inner.counters.degraded.fetch_add(1, Ordering::Relaxed);
                    granii_telemetry::counter_add("serve.degraded", 1);
                }
                granii_telemetry::counter_add("serve.completed", 1);
                granii_telemetry::histogram_record_seconds(
                    "serve.request_latency",
                    response.timing.total_seconds,
                );
                // Outcome-split latency: a healthy hit rate can hide a
                // pathological miss tail in the combined figures. The
                // histogram is the legacy log₂ view; the sketch carries the
                // SLO-grade quantiles (always recorded server-side, gated
                // mirror into the telemetry registry under the same name).
                let outcome = if response.degraded {
                    Outcome::Degraded
                } else if response.cache_hit {
                    Outcome::Hit
                } else {
                    Outcome::Miss
                };
                let metric = match outcome {
                    Outcome::Hit => "serve.latency.hit",
                    Outcome::Miss => "serve.latency.miss",
                    Outcome::Degraded => "serve.latency.degraded",
                };
                let latency_ns = if response.timing.total_seconds > 0.0 {
                    (response.timing.total_seconds * 1e9) as u64
                } else {
                    0
                };
                granii_telemetry::histogram_record_seconds(metric, response.timing.total_seconds);
                inner.latency.for_outcome(outcome).record_ns(latency_ns);
                granii_telemetry::sketch_record_ns(metric, latency_ns);
                match inner.slo.record(outcome, latency_ns) {
                    SloVerdict::Ok => {}
                    SloVerdict::WindowClosed {
                        objective,
                        burn_rate,
                        crossed,
                    } => {
                        let objective = &inner.slo.config().objectives[objective];
                        let name = objective.outcome.name();
                        granii_telemetry::gauge_set(&format!("serve.slo.burn.{name}"), burn_rate);
                        match crossed {
                            Some(true) => {
                                granii_telemetry::counter_add("serve.slo_breached", 1);
                                event!(
                                    "serve.slo_burn",
                                    outcome = name,
                                    burn_rate = burn_rate,
                                    threshold_ms = objective.threshold_ms,
                                    target = objective.target,
                                );
                            }
                            Some(false) => {
                                event!("serve.slo_recover", outcome = name, burn_rate = burn_rate,);
                            }
                            None => {}
                        }
                    }
                }
                granii_telemetry::gauge_set("serve.cache_hit_rate", inner.cache.hit_rate());
                event!(
                    "serve.complete",
                    id = id,
                    total_seconds = response.timing.total_seconds,
                    cache_hit = u64::from(response.cache_hit),
                    degraded = u64::from(response.degraded),
                );
            }
            Err(_) => {
                inner.counters.failed.fetch_add(1, Ordering::Relaxed);
                granii_telemetry::counter_add("serve.failed", 1);
                // The gauges must track reality on the failure path too —
                // a failed request still consumed a queue slot and a cache
                // lookup.
                granii_telemetry::gauge_set("serve.cache_hit_rate", inner.cache.hit_rate());
                granii_telemetry::gauge_set(
                    "serve.queue_depth",
                    inner.lock_queue().jobs.len() as f64,
                );
                event!("serve.failed", id = id);
            }
        }
        // Receiver may have given up; a dead ticket is not a worker error.
        let _ = reply.send(result);
        // Keep the per-worker profile from growing without bound.
        engine.take_profile();
    }
}

/// Picks the composition for a cache miss. Normal path: full cost-model
/// selection. Degraded path (expired deadline, or the cost models cannot
/// predict a candidate): the plan's default composition — the first eligible
/// candidate, which every compiled model is guaranteed to have.
fn choose_composition(
    granii: &Granii,
    request: &ServeRequest,
    cfg: LayerConfig,
    expired: bool,
    id: u64,
) -> Result<(Composition, bool)> {
    if !expired {
        match granii.select_with_config(request.model, &request.graph, cfg, request.iterations) {
            Ok(selection) => return Ok((selection.composition, false)),
            Err(CoreError::MissingCostModel { .. }) => {
                event!("serve.degrade", id = id, reason = "missing_cost_model");
            }
            Err(e) => return Err(e.into()),
        }
    } else {
        event!("serve.degrade", id = id, reason = "deadline_expired");
    }
    let plan = granii.compiled(request.model, cfg)?;
    let eligible = plan.eligible(cfg.k_in, cfg.k_out);
    let first = eligible.first().ok_or(CoreError::NoCandidates {
        model: request.model.name().to_owned(),
    })?;
    Ok((first.composition, true))
}

fn process_job(inner: &Inner, exec: &Exec, job: Job) -> Result<ServeResponse> {
    let Job {
        id,
        request,
        enqueued,
        deadline,
        mut trace,
        ..
    } = job;
    let _span = granii_telemetry::span!(
        "serve.request",
        model = request.model.name(),
        nodes = request.graph.num_nodes(),
    );
    let start = Instant::now();
    if let Some(t) = trace.as_deref_mut() {
        t.mark_dequeued();
    }
    let queue_seconds = start.duration_since(enqueued).as_secs_f64();
    granii_telemetry::histogram_record_seconds("serve.queue_wait", queue_seconds);
    event!("serve.dequeue", id = id, queue_seconds = queue_seconds);

    // Deadline policy: checked once, at dequeue. An expired request is still
    // served — a late answer beats none — but skips the cost models.
    let expired = deadline.is_some_and(|d| start >= d);
    if expired {
        inner
            .counters
            .deadline_expired
            .fetch_add(1, Ordering::Relaxed);
        granii_telemetry::counter_add("serve.deadline_expired", 1);
    }

    let cfg = LayerConfig::new(request.k1, request.k2);
    let key = request.plan_key();
    inner.distinct_signatures.observe(key.1);
    granii_telemetry::distinct_observe("serve.distinct_signatures", key.1);
    // The input-drift lane inspects every request's graph (one O(nodes)
    // pass, allocation-free on the tracked counters) — the same statistics
    // selection itself keys on.
    let profile = inner
        .inspect
        .config()
        .enabled
        .then(|| InputProfile::extract(&request.graph));
    let (entry, cache_hit, degraded, select_seconds) = match inner.cache.lookup(key) {
        // Hit: the signature's plan is already bound — even an expired
        // request serves it at full quality.
        Some(entry) => (entry, true, false, 0.0),
        None => {
            let t_select = Instant::now();
            if let Some(t) = trace.as_deref_mut() {
                t.mark_select_start();
            }
            let granii = inner.granii();
            let (composition, degraded) = choose_composition(&granii, &request, cfg, expired, id)?;
            let plan = granii.compiled(request.model, cfg)?;
            let candidate = plan
                .candidates
                .iter()
                .find(|c| c.composition == composition)
                .ok_or_else(|| {
                    CoreError::InvalidIr(format!(
                        "selected composition {} missing from compiled plan",
                        composition.name()
                    ))
                })?;
            // The drift detector's reference point: what the current cost
            // models claim one steady-state iteration of this plan costs.
            // Unpredictable (degraded path) → None, which opts the
            // signature out of drift tracking.
            let features = FeaturizedInput::extract(&request.graph, request.k1, request.k2);
            let predicted_steady_seconds = granii
                .cost_models()
                .predict_steady_state(&candidate.program, &features)
                .ok();
            let ctx = GraphCtx::new(&request.graph).map_err(CoreError::from)?;
            let h = DenseMatrix::random(request.graph.num_nodes(), request.k1, 1.0, SERVE_SEED);
            let plan_inputs = PlanInputs::for_model(request.model, cfg, &ctx, h, SERVE_SEED + 1);
            let exec_plan = ExecPlan::build(&candidate.program)?;
            let bound = exec_plan.bind(exec, &plan_inputs.as_program_inputs())?;
            let entry = inner.cache.insert(
                key,
                CachedPlan {
                    composition,
                    bound,
                    predicted_steady_seconds,
                },
            );
            if let Some(t) = trace.as_deref_mut() {
                t.mark_select_done();
            }
            // Selection just inspected the graph as it is now: pin it as
            // the input-drift reference for this signature.
            if let Some(p) = profile {
                inner.inspect.rebind(key, p);
            }
            (entry, false, degraded, t_select.elapsed().as_secs_f64())
        }
    };

    let t_execute = Instant::now();
    if let Some(t) = trace.as_deref_mut() {
        t.mark_execute_start();
    }
    let (composition, output, observed, predicted_steady_seconds) = {
        let mut cached = entry.lock().unwrap_or_else(PoisonError::into_inner);
        let observed = cached.bound.iterate_observed(exec)?;
        let output = cached.bound.output()?.clone();
        (
            cached.composition,
            output,
            observed,
            cached.predicted_steady_seconds,
        )
    };
    if let Some(t) = trace.as_deref_mut() {
        t.mark_execute_done();
    }
    let execute_seconds = t_execute.elapsed().as_secs_f64();
    granii_telemetry::counter_add(
        if cache_hit {
            "serve.cache_hits"
        } else {
            "serve.cache_misses"
        },
        1,
    );

    // Online drift check: compare the engine-charged cost of the iteration
    // just run against the cost model's steady-state promise for this plan.
    if let Some(predicted) = predicted_steady_seconds {
        if let DriftVerdict::Flagged { ewma_residual } =
            inner
                .drift
                .observe(key, observed.charged_seconds, predicted)
        {
            inner.cache.invalidate(key);
            inner.counters.drift_flagged.fetch_add(1, Ordering::Relaxed);
            granii_telemetry::counter_add("serve.drift_flagged", 1);
            event!(
                "serve.drift",
                id = id,
                model = request.model.name(),
                fingerprint = format!("{:016x}", key.1),
                k1 = request.k1,
                k2 = request.k2,
                ewma_residual = ewma_residual,
            );
        }
    }

    // Input-drift check: fold this request's degree statistics into the
    // signature's live profile and compare against what selection saw.
    // Orthogonal to the residual lane above — a stale plan executes its
    // *bound* graph, so its cost residual stays clean while the live input
    // walks away.
    if let Some(p) = profile {
        if let InspectVerdict::Flagged { band_l1, cv_delta } = inner.inspect.observe(key, &p) {
            inner.cache.invalidate(key);
            inner
                .counters
                .input_drift_flagged
                .fetch_add(1, Ordering::Relaxed);
            granii_telemetry::counter_add("serve.input_drift_flagged", 1);
            event!(
                "serve.input_drift",
                id = id,
                model = request.model.name(),
                fingerprint = format!("{:016x}", key.1),
                k1 = request.k1,
                k2 = request.k2,
                band_l1 = band_l1,
                cv_delta = cv_delta,
            );
        }
    }

    if let Some(t) = trace.take() {
        t.finish(request.model.name(), cache_hit, degraded);
    }

    Ok(ServeResponse {
        composition,
        output,
        timing: RequestTiming {
            queue_seconds,
            select_seconds,
            execute_seconds,
            total_seconds: enqueued.elapsed().as_secs_f64(),
        },
        cache_hit,
        degraded,
    })
}
