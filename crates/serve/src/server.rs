//! The serving runtime: lock-free admission, continuous batching, and
//! request execution.
//!
//! Admission is a bounded lock-free MPMC ring ([`crossbeam::queue::ArrayQueue`])
//! with shed-don't-block semantics and a per-tenant fairness bound
//! ([`crate::fairness::TenantTable`]); workers drain the ring into
//! signature-keyed batch groups and execute each group as one multi-RHS
//! `iterate_batched` (column-stacked blocks, bitwise identical to serial
//! per-request execution — see DESIGN.md §12).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::queue::ArrayQueue;
use granii_core::cost::FeaturizedInput;
use granii_core::execplan::{ExecPlan, PlanInputs};
use granii_core::{runtime, CoreError, Granii};
use granii_gnn::spec::{Composition, LayerConfig, ModelKind};
use granii_gnn::{Exec, GraphCtx};
use granii_graph::Graph;
use granii_matrix::device::Engine;
use granii_matrix::DenseMatrix;
use granii_telemetry::{
    event, start_sampler, ColumnId, DistinctCounter, SampleKind, SamplerHandle, Sketch,
    SketchSnapshot, TimeSeriesRing, TimeSeriesSnapshot, DEFAULT_SKETCH_ALPHA,
};

use crate::cache::{CachedPlan, PlanCache, PlanKey};
use crate::drift::{DriftConfig, DriftDetector, DriftVerdict};
use crate::fairness::TenantTable;
use crate::incident::{
    render_events, IncidentBundle, IncidentCapturer, IncidentConfig, IncidentTrigger, RecorderInfo,
    RingEntry, SelectionAudit, SelectionAuditInfo, SketchSummary, TimelineInfo,
};
use crate::inspect::{InputInspector, InputProfile, InspectConfig, InspectVerdict};
use crate::metering::{exact_share, MeterCharge, MeterRow, MeterTable};
use crate::recorder::{FlightRecorder, RecordKind, RecorderConfig, MAX_BATCH_MEMBERS};
use crate::scrape::{ScrapeConfig, ScrapeHandle};
use crate::slo::{Outcome, SloConfig, SloMonitor, SloVerdict};
use crate::status::{
    hex_fp, BatchingStatus, CacheStatus, DriftSignatureStatus, FairnessStatus,
    InputSignatureStatus, LatencySketchStatus, MeteringStatus, RecorderStatus, ServerStatus,
    SloObjectiveStatus, TenantMeterStatus, TenantStatus, WorkerStatus,
};
use crate::trace::{self, RequestTrace};
use crate::{Result, ServeError};

/// Seed for the deterministic synthetic feature/weight matrices every
/// request binds against. Fixed so that, for a given (model, graph, k1, k2)
/// signature, hits and misses produce bitwise-identical outputs — and so a
/// serial rerun of the same request stream reproduces the served results.
const SERVE_SEED: u64 = 41;

/// How long a worker sleeps between queue polls when parked. The wake
/// protocol below normally wakes workers promptly; the timeout is the
/// belt-and-braces bound on any missed wakeup.
const PARK_TIMEOUT: Duration = Duration::from_millis(10);

/// On-host time-series ring tuning: a background sampler thread captures
/// a frame of the server's counters, gauges, and sketch quantiles (plus a
/// per-tenant lane from the metering ledger) every `interval` into a
/// fixed-capacity [`granii_telemetry::TimeSeriesRing`]. With the defaults
/// (240 frames x 250ms) the ring holds the last minute — enough for an
/// incident bundle to answer "what was trending before this fired".
#[derive(Debug, Clone)]
pub struct TimelineConfig {
    /// Whether to run the sampler thread at all (the ring itself always
    /// exists; disabled just means it stays empty).
    pub enabled: bool,
    /// Retained frames (ring capacity).
    pub capacity: usize,
    /// Sampling period.
    pub interval: Duration,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            enabled: true,
            capacity: 240,
            interval: Duration::from_millis(250),
        }
    }
}

/// Serving runtime configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Maximum queued (accepted but not yet running) requests; submits
    /// beyond this are shed with [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Maximum bound plans retained in the LRU cache.
    pub cache_capacity: usize,
    /// Maximum requests coalesced into one signature-keyed batch group
    /// (executed as a single multi-RHS iterate). `1` disables batching.
    pub max_batch: usize,
    /// Per-tenant admission share: one tenant (plan-signature fingerprint)
    /// may hold at most `max(1, queue_depth × fairness_share)` queued
    /// requests. Clamped to `[0, 1]`; `1.0` disables fairness shedding.
    pub fairness_share: f64,
    /// Export a per-request trace lane for every `N`-th request (0 disables
    /// sampling; has no effect unless telemetry is enabled). Unsampled
    /// requests carry no trace state at all.
    pub trace_sample_every: u64,
    /// Online cost-model drift detection tuning.
    pub drift: DriftConfig,
    /// Online input-drift detection tuning (the second lane, keyed on
    /// degree-distribution statistics instead of cost residuals).
    pub inspect: InspectConfig,
    /// Latency-SLO objectives and burn-rate monitoring tuning.
    pub slo: SloConfig,
    /// Always-on flight-recorder ring sizing.
    pub recorder: RecorderConfig,
    /// Automatic incident-capture policy (triggers, rate limits, artifact
    /// directory).
    pub incident: IncidentConfig,
    /// On-host time-series ring + sampler tuning.
    pub timeline: TimelineConfig,
    /// Prometheus-compatible scrape listener (`/metrics`, `/healthz`,
    /// `/readyz`). Disabled by default — serving stays network-free unless
    /// asked.
    pub scrape: ScrapeConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 64,
            cache_capacity: 64,
            max_batch: 8,
            fairness_share: 0.5,
            trace_sample_every: 0,
            drift: DriftConfig::default(),
            inspect: InspectConfig::default(),
            slo: SloConfig::default(),
            recorder: RecorderConfig::default(),
            incident: IncidentConfig::default(),
            timeline: TimelineConfig::default(),
            scrape: ScrapeConfig::default(),
        }
    }
}

/// One inference request: which model to run on which graph at which
/// embedding sizes, and how many iterations the selection should amortize
/// hoisted work over.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// GNN model family.
    pub model: ModelKind,
    /// The input graph (shared — requests are cheap to clone).
    pub graph: Arc<Graph>,
    /// Input embedding width.
    pub k1: usize,
    /// Output embedding width.
    pub k2: usize,
    /// Iteration count selection amortizes hoisted work over.
    pub iterations: usize,
    /// Optional per-request deadline, measured from submit. Checked when
    /// the request's batch group forms (for a group of one that is the
    /// dequeue): an expired request is not dropped but served degraded
    /// (default composition, no cost-model consultation) unless its
    /// signature's plan is already cached.
    pub timeout: Option<Duration>,
    /// Optional pinned cache signature. By default the plan key hashes the
    /// graph's content fingerprint, so a tenant whose graph mutates simply
    /// misses the cache and re-selects. A pinned signature says "this is
    /// the same logical graph" across mutations — the cache keeps serving
    /// the stale bound plan, which is exactly the blind spot the
    /// input-drift lane exists to close.
    pub signature: Option<u64>,
}

impl ServeRequest {
    /// A request with the paper's default iteration count and no deadline.
    pub fn new(model: ModelKind, graph: Arc<Graph>, k1: usize, k2: usize) -> Self {
        ServeRequest {
            model,
            graph,
            k1,
            k2,
            iterations: runtime::DEFAULT_ITERATIONS,
            timeout: None,
            signature: None,
        }
    }

    /// Sets the amortization iteration count.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets a deadline relative to submit time.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Pins the plan-cache signature to a tenant-stable identity instead of
    /// the graph's content fingerprint (see [`ServeRequest::signature`]).
    pub fn with_signature(mut self, signature: u64) -> Self {
        self.signature = Some(signature);
        self
    }

    fn plan_key(&self) -> PlanKey {
        (
            self.model,
            self.signature.unwrap_or_else(|| self.graph.fingerprint()),
            self.k1,
            self.k2,
        )
    }
}

/// Per-request wall-clock breakdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestTiming {
    /// Time spent queued before a worker picked the request up.
    pub queue_seconds: f64,
    /// Time spent choosing and binding a plan (zero on a cache hit).
    pub select_seconds: f64,
    /// Time spent in the steady-state `iterate` (for a batched request:
    /// the whole group's multi-RHS iterate — the wall time this request
    /// actually waited on execution).
    pub execute_seconds: f64,
    /// Submit-to-reply total.
    pub total_seconds: f64,
}

/// The outcome of a served request.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The composition that produced the output.
    pub composition: Composition,
    /// The executed layer output (`n x k2`).
    pub output: DenseMatrix,
    /// Wall-clock breakdown.
    pub timing: RequestTiming,
    /// Whether a cached bound plan served the request.
    pub cache_hit: bool,
    /// Whether the request fell back to the default composition (expired
    /// deadline or cost-model prediction failure).
    pub degraded: bool,
    /// Size of the batch group this request executed in (1 = serial).
    pub batch_size: usize,
}

/// Point-in-time serving counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests that completed with a response.
    pub completed: u64,
    /// Requests that failed with an error.
    pub failed: u64,
    /// Requests shed at submit because the queue was full.
    pub shed: u64,
    /// Requests shed by the per-tenant fairness bound (subset of `shed`).
    pub tenant_shed: u64,
    /// Requests served via the default-composition fallback.
    pub degraded: u64,
    /// Requests whose deadline had expired when their batch group formed.
    pub deadline_expired: u64,
    /// Batch groups of two or more requests executed as one multi-RHS
    /// iterate.
    pub batches: u64,
    /// Requests served inside such groups.
    pub batched_requests: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// Plan-cache evictions.
    pub cache_evictions: u64,
    /// Plan-cache entries dropped by drift flags or model hot-swaps.
    pub cache_invalidations: u64,
    /// Bound plans currently cached.
    pub cache_len: usize,
    /// Hit fraction over all cache lookups.
    pub cache_hit_rate: f64,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// Signatures flagged by the online drift detector (total flags).
    pub drift_flagged: u64,
    /// Signatures flagged by the input-drift lane (total flags).
    pub input_drift_flagged: u64,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    tenant_shed: AtomicU64,
    degraded: AtomicU64,
    deadline_expired: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    /// Cumulative over the server's lifetime — unlike the detector's own
    /// tally, this survives [`Server::replace_granii`] resets.
    drift_flagged: AtomicU64,
    /// Same lifetime semantics, for the input-drift lane.
    input_drift_flagged: AtomicU64,
}

/// Server-owned latency sketches, one per outcome class. Always recorded
/// (like the atomic [`Counters`]) so the status surface, SLO math, and
/// `serve_bench` get SLO-grade quantiles without telemetry being enabled;
/// the telemetry registry gets a gated mirror on the same names.
struct LatencySketches {
    hit: Sketch,
    miss: Sketch,
    degraded: Sketch,
}

impl LatencySketches {
    fn new() -> Self {
        LatencySketches {
            hit: Sketch::new(DEFAULT_SKETCH_ALPHA),
            miss: Sketch::new(DEFAULT_SKETCH_ALPHA),
            degraded: Sketch::new(DEFAULT_SKETCH_ALPHA),
        }
    }

    fn for_outcome(&self, outcome: Outcome) -> &Sketch {
        match outcome {
            Outcome::Hit => &self.hit,
            Outcome::Miss => &self.miss,
            Outcome::Degraded => &self.degraded,
        }
    }

    fn snapshots(&self) -> Vec<SketchSnapshot> {
        vec![
            self.hit.snapshot("serve.latency.hit"),
            self.miss.snapshot("serve.latency.miss"),
            self.degraded.snapshot("serve.latency.degraded"),
        ]
    }
}

/// Per-worker activity slots (status surface): nanoseconds spent processing
/// and requests handled, indexed by worker.
struct WorkerSlot {
    busy_ns: AtomicU64,
    requests: AtomicU64,
}

struct Job {
    id: u64,
    /// Plan key, computed once at submit (the fingerprint feeds tenant
    /// accounting and batch grouping).
    key: PlanKey,
    request: ServeRequest,
    enqueued: Instant,
    deadline: Option<Instant>,
    /// Stage stopwatch for 1-in-N sampled requests; `None` (the common
    /// case) adds nothing to the steady-state path.
    trace: Option<Box<RequestTrace>>,
    reply: mpsc::Sender<Result<ServeResponse>>,
}

/// Worker parking: the admission ring is lock-free, so idle workers need a
/// separate wait/wake rendezvous. A submitter wakes a worker only when the
/// sleeper count says one is parked (the uncontended fast path is two
/// atomic loads, no mutex); [`PARK_TIMEOUT`] bounds any lost wakeup.
struct Parking {
    lot: Mutex<()>,
    available: Condvar,
    sleepers: AtomicUsize,
}

struct Inner {
    /// Behind a `RwLock` so [`Server::replace_granii`] can hot-swap cost
    /// models; the per-request read is an uncontended lock + `Arc` clone.
    granii: RwLock<Arc<Granii>>,
    cache: PlanCache,
    drift: DriftDetector,
    inspect: InputInspector,
    slo: SloMonitor,
    latency: LatencySketches,
    /// Batch-group size distribution (recorded per formed group, including
    /// groups of one — sequential traffic honestly shows p50 = 1).
    batch_sizes: Sketch,
    /// Unique plan signatures observed (HyperLogLog; always recorded).
    distinct_signatures: DistinctCounter,
    /// Lock-free bounded MPMC admission ring. Capacity is
    /// `max(queue_depth, 1)`; a configured depth of 0 sheds before ever
    /// touching the ring.
    queue: ArrayQueue<Job>,
    tenants: TenantTable,
    shutdown: AtomicBool,
    /// Submits currently inside the admission window (shutdown-check →
    /// push). Workers refuse to exit while this is nonzero, closing the
    /// race where a submit that passed the shutdown check pushes onto a
    /// ring every worker has already abandoned.
    admitting: AtomicU64,
    parking: Parking,
    config: ServeConfig,
    counters: Counters,
    next_request_id: AtomicU64,
    started: Instant,
    workers: Vec<WorkerSlot>,
    /// Always-on flight recorder: every layer streams structured records
    /// into this lock-free ring, telemetry enabled or not.
    recorder: FlightRecorder,
    /// Incident policy + selection-audit table + captured bundles.
    incidents: IncidentCapturer,
    /// Monotone sequence for `serve.batch` spans on the batch trace lane
    /// (two workers can finish groups simultaneously; the exporter needs
    /// distinct seqs).
    batch_trace_seq: AtomicU64,
    /// Lock-free per-tenant resource ledger (see [`crate::metering`]).
    metering: MeterTable,
    /// On-host time-series ring (always present; populated by the sampler
    /// thread when `TimelineConfig::enabled`).
    timeline: Arc<TimeSeriesRing>,
}

impl Inner {
    fn granii(&self) -> Arc<Granii> {
        self.granii
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Wakes one parked worker, if any. The empty lock acquisition is the
    /// standard fence against the window between a parker's sleeper
    /// registration and its `wait`.
    fn wake_one(&self) {
        if self.parking.sleepers.load(Ordering::SeqCst) > 0 {
            drop(
                self.parking
                    .lot
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner),
            );
            self.parking.available.notify_one();
        }
    }

    fn wake_all(&self) {
        drop(
            self.parking
                .lot
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        self.parking.available.notify_all();
    }

    /// Parks the calling worker until woken or [`PARK_TIMEOUT`] elapses.
    /// Re-checks the queue after registering as a sleeper so a push that
    /// raced the registration is never slept through.
    fn park(&self) {
        let guard = self
            .parking
            .lot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.parking.sleepers.fetch_add(1, Ordering::SeqCst);
        if self.queue.is_empty() && !self.shutdown.load(Ordering::SeqCst) {
            let _ = self.parking.available.wait_timeout(guard, PARK_TIMEOUT);
        }
        self.parking.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// RAII guard for [`Inner::admitting`]: the counter must come back down on
/// every submit exit path, success and shed alike.
struct AdmitWindow<'a>(&'a AtomicU64);

impl Drop for AdmitWindow<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A handle to one in-flight request; [`Ticket::wait`] blocks for the reply.
pub struct Ticket {
    rx: mpsc::Receiver<Result<ServeResponse>>,
}

impl Ticket {
    /// Blocks until the request completes.
    pub fn wait(self) -> Result<ServeResponse> {
        self.rx.recv().unwrap_or(Err(ServeError::WorkerLost))
    }
}

/// A thread-safe serving runtime over one shared [`Granii`] instance.
///
/// Requests flow submit → lock-free bounded ring (per-tenant fairness
/// bound) → worker pool → signature-keyed batch groups → (plan cache, or
/// select + bind) → one multi-RHS `iterate` per group → reply. Dropping the
/// server shuts it down gracefully: queued requests are drained, workers
/// joined.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    /// The timeline sampler thread, when `TimelineConfig::enabled`.
    sampler: Option<SamplerHandle>,
    /// The scrape listener, when `ScrapeConfig::enabled` and the bind
    /// succeeded.
    scrape: Option<ScrapeHandle>,
}

impl Server {
    /// Starts the worker pool.
    pub fn start(granii: Arc<Granii>, config: ServeConfig) -> Self {
        let worker_count = config.workers.max(1);
        let inner = Arc::new(Inner {
            granii: RwLock::new(granii),
            cache: PlanCache::new(config.cache_capacity),
            drift: DriftDetector::new(config.drift),
            inspect: InputInspector::new(config.inspect),
            slo: SloMonitor::new(config.slo.clone()),
            latency: LatencySketches::new(),
            batch_sizes: Sketch::new(DEFAULT_SKETCH_ALPHA),
            distinct_signatures: DistinctCounter::new(),
            queue: ArrayQueue::new(config.queue_depth.max(1)),
            tenants: TenantTable::new(config.queue_depth, config.fairness_share),
            shutdown: AtomicBool::new(false),
            admitting: AtomicU64::new(0),
            parking: Parking {
                lot: Mutex::new(()),
                available: Condvar::new(),
                sleepers: AtomicUsize::new(0),
            },
            recorder: FlightRecorder::new(config.recorder),
            incidents: IncidentCapturer::new(config.incident.clone()),
            batch_trace_seq: AtomicU64::new(0),
            metering: MeterTable::new(),
            timeline: Arc::new(TimeSeriesRing::new(config.timeline.capacity)),
            config: config.clone(),
            counters: Counters::default(),
            next_request_id: AtomicU64::new(0),
            started: Instant::now(),
            workers: (0..worker_count)
                .map(|_| WorkerSlot {
                    busy_ns: AtomicU64::new(0),
                    requests: AtomicU64::new(0),
                })
                .collect(),
        });
        let workers = (0..worker_count)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("granii-serve-{i}"))
                    .spawn(move || worker_loop(&inner, i))
                    .expect("spawn serve worker")
            })
            .collect();
        let sampler = inner
            .config
            .timeline
            .enabled
            .then(|| start_timeline_sampler(&inner));
        let scrape = if inner.config.scrape.enabled {
            start_scrape_listener(&inner)
        } else {
            None
        };
        Server {
            inner,
            workers,
            sampler,
            scrape,
        }
    }

    /// Submits a request without blocking on its execution.
    ///
    /// The admission path is lock-free: a depth gate on the ring, a
    /// per-tenant fairness bound, then a CAS push. Assigns the request its
    /// id; every 1-in-`trace_sample_every` id (telemetry permitting)
    /// carries a [`RequestTrace`] that becomes a per-request lane in the
    /// Chrome trace.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is at capacity or the
    /// tenant is at its fairness bound (the request is shed — backpressure,
    /// never unbounded growth), or [`ServeError::ShuttingDown`] after
    /// shutdown began.
    pub fn submit(&self, request: ServeRequest) -> Result<Ticket> {
        let inner = &*self.inner;
        let now = Instant::now();
        let deadline = request.timeout.map(|t| now + t);
        let id = inner.next_request_id.fetch_add(1, Ordering::Relaxed);
        let trace = if trace::sampled(id, inner.config.trace_sample_every) {
            Some(Box::new(RequestTrace::new(id)))
        } else {
            None
        };
        inner.admitting.fetch_add(1, Ordering::SeqCst);
        let admit_window = AdmitWindow(&inner.admitting);
        if inner.shutdown.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        // The key is computed before the depth gate so every shed record
        // (and a shed-storm incident) names the signature it turned away.
        let key = request.plan_key();
        let depth = inner.queue.len();
        if depth >= inner.config.queue_depth {
            return Err(shed(inner, id, key, depth, "queue_full"));
        }
        if !inner.tenants.try_admit(key.1) {
            inner.counters.tenant_shed.fetch_add(1, Ordering::Relaxed);
            granii_telemetry::counter_add("serve.tenant_shed", 1);
            return Err(shed(inner, id, key, depth, "tenant_cap"));
        }
        let (tx, rx) = mpsc::channel();
        let job = Job {
            id,
            key,
            request,
            enqueued: now,
            deadline,
            trace,
            reply: tx,
        };
        if inner.queue.push(job).is_err() {
            // The ring filled between the depth gate and the push.
            inner.tenants.cancel_admit(key.1);
            return Err(shed(inner, id, key, inner.queue.len(), "queue_full"));
        }
        inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
        granii_telemetry::counter_add("serve.submitted", 1);
        let depth = inner.queue.len();
        inner.recorder.record(
            id,
            key.1,
            key.0.name(),
            RecordKind::Enqueue {
                depth: depth as u32,
            },
        );
        granii_telemetry::gauge_set("serve.queue_depth", depth as f64);
        event!("serve.enqueue", id = id, depth = depth);
        // Close the admission window before waking: the push must be
        // visible to any worker deciding whether it may exit.
        drop(admit_window);
        inner.wake_one();
        Ok(Ticket { rx })
    }

    /// Submits a request and blocks until it completes.
    ///
    /// # Errors
    ///
    /// Propagates submit errors and the request's execution outcome.
    pub fn process(&self, request: ServeRequest) -> Result<ServeResponse> {
        self.submit(request)?.wait()
    }

    /// Hot-swaps the underlying [`Granii`] instance (new cost models —
    /// e.g. after an offline retrain repaired a drift-flagged model). Every
    /// cached plan was selected under the old models, so the plan cache is
    /// flushed and the drift detector's residual history dropped; in-flight
    /// requests finish on the instance they started with. The replacement
    /// must target the same device as the original — worker engines are
    /// built once, at startup.
    pub fn replace_granii(&self, granii: Arc<Granii>) {
        *self
            .inner
            .granii
            .write()
            .unwrap_or_else(PoisonError::into_inner) = granii;
        self.inner.cache.clear();
        self.inner.drift.reset();
        self.inner.inspect.reset();
        self.inner.recorder.record(
            0,
            0,
            "",
            RecordKind::CacheInvalidate {
                cause: "model_swap",
            },
        );
        self.inner.recorder.record(0, 0, "", RecordKind::ModelSwap);
        event!("serve.model_swap");
    }

    /// Point-in-time snapshots of the per-outcome latency sketches
    /// (`serve.latency.hit` / `.miss` / `.degraded`). Always populated —
    /// the server records them unconditionally, telemetry or not — and
    /// mergeable, so a caller can fold them into one whole-server
    /// distribution with [`SketchSnapshot::merge`].
    pub fn latency_sketches(&self) -> Vec<SketchSnapshot> {
        self.inner.latency.snapshots()
    }

    /// Snapshot of the batch-group size distribution (`serve.batch.size`),
    /// recorded once per formed group — including groups of one, so
    /// sequential traffic honestly reports p50 = 1.
    pub fn batch_sketch(&self) -> SketchSnapshot {
        self.inner.batch_sizes.snapshot("serve.batch.size")
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServeStats {
        self.inner.stats()
    }

    /// Assembles the live status snapshot (see [`ServerStatus`]): queue and
    /// worker utilization, cache counters, batching and fairness state,
    /// degradation rates, the drift detector's per-signature residual
    /// table, and flight-recorder health.
    pub fn status(&self) -> ServerStatus {
        self.inner.status()
    }

    /// The incident bundles captured so far and still retained in memory,
    /// oldest-first (bounded by `IncidentConfig::keep_last`; every bundle
    /// is also written to `IncidentConfig::dir` when one is configured).
    pub fn incidents(&self) -> Vec<IncidentBundle> {
        self.inner.incidents.recent()
    }

    /// A non-destructive snapshot of the flight-recorder ring, oldest
    /// record first.
    pub fn flight_records(&self) -> Vec<crate::recorder::FlightRecord> {
        self.inner.recorder.snapshot()
    }

    /// Flight-recorder write/drop counters: `(written, dropped)`.
    pub fn recorder_counters(&self) -> (u64, u64) {
        (self.inner.recorder.written(), self.inner.recorder.dropped())
    }

    /// Per-tenant meter rows, engine-charged time descending (the ranked
    /// "top tenants" view; see [`crate::metering::MeterTable::rows`]).
    pub fn metering_rows(&self) -> Vec<MeterRow> {
        self.inner.metering.rows()
    }

    /// The server-wide metering totals row. The sum of every
    /// [`Server::metering_rows`] counter equals this row exactly — the
    /// ledger attributes integers, never averages.
    pub fn metering_totals(&self) -> MeterRow {
        self.inner.metering.totals()
    }

    /// A snapshot of the on-host time-series ring (empty when the sampler
    /// is disabled). Render with [`granii_telemetry::timeseries_json`].
    pub fn timeline_snapshot(&self) -> TimeSeriesSnapshot {
        self.inner.timeline.snapshot()
    }

    /// The scrape listener's bound address, when one is running (resolves
    /// a configured port 0 to the actual ephemeral port).
    pub fn scrape_addr(&self) -> Option<std::net::SocketAddr> {
        self.scrape.as_ref().map(ScrapeHandle::addr)
    }

    /// Shuts down gracefully: stops accepting requests, drains the queue,
    /// joins every worker. Equivalent to dropping the server.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Stop the observers first: the sampler reads counters the workers
        // are still writing (fine), but neither should outlive the server.
        if let Some(sampler) = self.sampler.take() {
            sampler.stop();
        }
        if let Some(scrape) = self.scrape.take() {
            scrape.stop();
        }
        self.inner.wake_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Inner {
    fn stats(&self) -> ServeStats {
        let c = &self.counters;
        ServeStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            tenant_shed: c.tenant_shed.load(Ordering::Relaxed),
            degraded: c.degraded.load(Ordering::Relaxed),
            deadline_expired: c.deadline_expired.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            batched_requests: c.batched_requests.load(Ordering::Relaxed),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_evictions: self.cache.evictions(),
            cache_invalidations: self.cache.invalidations(),
            cache_len: self.cache.len(),
            cache_hit_rate: self.cache.hit_rate(),
            queue_depth: self.queue.len(),
            drift_flagged: c.drift_flagged.load(Ordering::Relaxed),
            input_drift_flagged: c.input_drift_flagged.load(Ordering::Relaxed),
        }
    }

    /// `/readyz` semantics: accepting traffic, queue below the shed
    /// threshold, and no SLO objective actively burning its error budget.
    fn readiness(&self) -> std::result::Result<(), String> {
        if self.shutdown.load(Ordering::SeqCst) {
            return Err("shutting down".to_owned());
        }
        let depth = self.queue.len();
        if depth >= self.config.queue_depth {
            return Err(format!(
                "queue saturated ({depth}/{})",
                self.config.queue_depth
            ));
        }
        if let Some(row) = self.slo.rows().into_iter().find(|row| row.burning) {
            return Err(format!(
                "slo burning for outcome {}",
                row.objective.outcome.name()
            ));
        }
        Ok(())
    }

    /// Status assembly lives on `Inner` (not [`Server`]) so worker threads
    /// can embed a full snapshot in an incident bundle mid-request.
    fn status(&self) -> ServerStatus {
        let stats = self.stats();
        let uptime_seconds = self.started.elapsed().as_secs_f64();
        let completed = stats.completed.max(1) as f64;
        let batch_sketch = self.batch_sizes.snapshot("serve.batch.size");
        // One ledger walk feeds the metering section AND the per-tenant
        // request counts on the drift/input tables.
        let meter_rows = self.metering.rows();
        let meter_totals = self.metering.totals();
        let requests_for = |fingerprint: u64| {
            meter_rows
                .iter()
                .find(|row| row.fingerprint == fingerprint)
                .map(|row| row.requests)
        };
        ServerStatus {
            uptime_seconds,
            queue_depth: stats.queue_depth,
            queue_capacity: self.config.queue_depth,
            submitted: stats.submitted,
            completed: stats.completed,
            failed: stats.failed,
            shed: stats.shed,
            degraded: stats.degraded,
            deadline_expired: stats.deadline_expired,
            degraded_rate: if stats.completed == 0 {
                0.0
            } else {
                stats.degraded as f64 / completed
            },
            deadline_expired_rate: if stats.completed == 0 {
                0.0
            } else {
                stats.deadline_expired as f64 / completed
            },
            drift_flagged: stats.drift_flagged,
            input_drift_flagged: stats.input_drift_flagged,
            distinct_signatures: self.distinct_signatures.estimate(),
            batching: BatchingStatus {
                max_batch: self.config.max_batch,
                groups: batch_sketch.count,
                batches: stats.batches,
                batched_requests: stats.batched_requests,
                mean_size: batch_sketch.mean_ns(),
                p50_size: batch_sketch.p50_ns(),
                p95_size: batch_sketch.p95_ns(),
            },
            fairness: FairnessStatus {
                tenant_queue_cap: self.tenants.cap(),
                tenant_shed: stats.tenant_shed,
                tenants: self
                    .tenants
                    .rows()
                    .into_iter()
                    .map(|row| TenantStatus {
                        fingerprint: hex_fp(row.fingerprint),
                        queued: row.queued,
                        admitted: row.admitted,
                        shed: row.shed,
                    })
                    .collect(),
            },
            workers: self
                .workers
                .iter()
                .enumerate()
                .map(|(index, slot)| {
                    let busy_seconds = slot.busy_ns.load(Ordering::Relaxed) as f64 / 1e9;
                    WorkerStatus {
                        index,
                        requests: slot.requests.load(Ordering::Relaxed),
                        busy_seconds,
                        utilization: if uptime_seconds > 0.0 {
                            (busy_seconds / uptime_seconds).min(1.0)
                        } else {
                            0.0
                        },
                    }
                })
                .collect(),
            cache: CacheStatus {
                hits: stats.cache_hits,
                misses: stats.cache_misses,
                evictions: stats.cache_evictions,
                invalidations: stats.cache_invalidations,
                len: stats.cache_len,
                capacity: self.config.cache_capacity,
                hit_rate: stats.cache_hit_rate,
            },
            drift: {
                let mut rows = self.drift.rows();
                // Fingerprint-first ordering so `--status-out` artifacts
                // from different runs diff cleanly regardless of which
                // model family hit the detector first.
                rows.sort_by_key(|row| (row.key.1, row.key.0.name(), row.key.2, row.key.3));
                rows.into_iter()
                    .map(|row| {
                        let (model, fingerprint, k1, k2) = row.key;
                        DriftSignatureStatus {
                            model: model.name().to_owned(),
                            fingerprint: hex_fp(fingerprint),
                            k1,
                            k2,
                            ewma_residual: row.ewma_residual,
                            last_residual: row.last_residual,
                            samples: row.samples,
                            flags: row.flags,
                            cooldown: u64::from(row.cooldown),
                            tenant_requests: requests_for(fingerprint),
                        }
                    })
                    .collect()
            },
            input: {
                let mut rows = self.inspect.rows();
                rows.sort_by_key(|row| (row.key.1, row.key.0.name(), row.key.2, row.key.3));
                rows.into_iter()
                    .map(|row| {
                        let (model, fingerprint, k1, k2) = row.key;
                        InputSignatureStatus {
                            model: model.name().to_owned(),
                            fingerprint: hex_fp(fingerprint),
                            k1,
                            k2,
                            band_l1: row.band_l1,
                            cv_delta: row.cv_delta,
                            live_avg_degree: row.live.avg_degree,
                            live_degree_cv: row.live.degree_cv,
                            reference_degree_cv: row.reference.degree_cv,
                            samples: row.samples,
                            flags: row.flags,
                            cooldown: u64::from(row.cooldown),
                            tenant_requests: requests_for(fingerprint),
                        }
                    })
                    .collect()
            },
            slo: self
                .slo
                .rows()
                .into_iter()
                .map(|row| SloObjectiveStatus {
                    outcome: row.objective.outcome.name().to_owned(),
                    threshold_ms: row.objective.threshold_ms,
                    target: row.objective.target,
                    total: row.total,
                    violations: row.violations,
                    compliance: row.compliance,
                    burn_rate: row.burn_rate,
                    burning: row.burning,
                    windows_closed: row.windows_closed,
                })
                .collect(),
            latency: self
                .latency
                .snapshots()
                .into_iter()
                .map(|s| LatencySketchStatus {
                    outcome: s.name.rsplit('.').next().unwrap_or(&s.name).to_owned(),
                    count: s.count,
                    mean_ms: s.mean_ns() / 1e6,
                    p50_ms: s.p50_ns() / 1e6,
                    p95_ms: s.p95_ns() / 1e6,
                    p99_ms: s.p99_ns() / 1e6,
                    p999_ms: s.p999_ns() / 1e6,
                })
                .collect(),
            recorder: RecorderStatus {
                capacity: self.recorder.capacity() as u64,
                written: self.recorder.written(),
                dropped: self.recorder.dropped(),
                incidents: self.incidents.captured(),
                suppressed: self.incidents.suppressed(),
                events_dropped: granii_telemetry::events_dropped(),
                last_trigger: self.incidents.last_trigger(),
            },
            metering: MeteringStatus {
                total_requests: meter_totals.requests,
                total_charged_ms: meter_totals.charged_ns as f64 / 1e6,
                total_flops: meter_totals.flops as f64,
                total_bytes: meter_totals.bytes as f64,
                total_sheds: meter_totals.sheds,
                total_slo_violations: meter_totals.slo_violations,
                tenants: meter_rows
                    .into_iter()
                    .map(TenantMeterStatus::from)
                    .collect(),
            },
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Column handles for the global timeline lanes, registered once at
/// startup so the sampler tick itself is lookup-free.
struct TimelineCols {
    submitted: ColumnId,
    completed: ColumnId,
    failed: ColumnId,
    shed: ColumnId,
    degraded: ColumnId,
    cache_hits: ColumnId,
    cache_misses: ColumnId,
    queue_depth: ColumnId,
    cache_entries: ColumnId,
    charged_ms: ColumnId,
    hit_p95_ms: ColumnId,
    miss_p95_ms: ColumnId,
}

/// Spawns the timeline sampler: every tick captures one frame of global
/// counters/gauges/quantiles plus a per-tenant lane
/// (`tenant.<fingerprint>.charged_ms` / `.requests`) from the metering
/// ledger. The thread is an observer — it reads atomics and pushes into
/// the ring; nothing on the request path waits for it.
fn start_timeline_sampler(inner: &Arc<Inner>) -> SamplerHandle {
    let ring = Arc::clone(&inner.timeline);
    let cols = TimelineCols {
        submitted: ring.column("serve.submitted", SampleKind::Counter),
        completed: ring.column("serve.completed", SampleKind::Counter),
        failed: ring.column("serve.failed", SampleKind::Counter),
        shed: ring.column("serve.shed", SampleKind::Counter),
        degraded: ring.column("serve.degraded", SampleKind::Counter),
        cache_hits: ring.column("serve.cache_hits", SampleKind::Counter),
        cache_misses: ring.column("serve.cache_misses", SampleKind::Counter),
        queue_depth: ring.column("serve.queue_depth", SampleKind::Gauge),
        cache_entries: ring.column("serve.cache_entries", SampleKind::Gauge),
        charged_ms: ring.column("serve.charged_ms", SampleKind::Counter),
        hit_p95_ms: ring.column("serve.latency.hit.p95_ms", SampleKind::Gauge),
        miss_p95_ms: ring.column("serve.latency.miss.p95_ms", SampleKind::Gauge),
    };
    let inner = Arc::clone(inner);
    // Tenant columns register lazily, the first tick a tenant shows
    // traffic; the map makes every later tick lookup-only.
    let mut tenant_cols: HashMap<u64, (ColumnId, ColumnId)> = HashMap::new();
    let mut samples: Vec<(ColumnId, f64)> = Vec::with_capacity(32);
    start_sampler(inner.config.timeline.interval, move || {
        samples.clear();
        let stats = inner.stats();
        samples.push((cols.submitted, stats.submitted as f64));
        samples.push((cols.completed, stats.completed as f64));
        samples.push((cols.failed, stats.failed as f64));
        samples.push((cols.shed, stats.shed as f64));
        samples.push((cols.degraded, stats.degraded as f64));
        samples.push((cols.cache_hits, stats.cache_hits as f64));
        samples.push((cols.cache_misses, stats.cache_misses as f64));
        samples.push((cols.queue_depth, stats.queue_depth as f64));
        samples.push((cols.cache_entries, stats.cache_len as f64));
        samples.push((
            cols.charged_ms,
            inner.metering.totals().charged_ns as f64 / 1e6,
        ));
        samples.push((
            cols.hit_p95_ms,
            inner.latency.hit.snapshot("serve.latency.hit").p95_ns() / 1e6,
        ));
        samples.push((
            cols.miss_p95_ms,
            inner.latency.miss.snapshot("serve.latency.miss").p95_ns() / 1e6,
        ));
        inner.metering.for_each(|row| {
            let (charged, requests) = *tenant_cols.entry(row.fingerprint).or_insert_with(|| {
                let fp = hex_fp(row.fingerprint);
                (
                    ring.column(&format!("tenant.{fp}.charged_ms"), SampleKind::Counter),
                    ring.column(&format!("tenant.{fp}.requests"), SampleKind::Counter),
                )
            });
            samples.push((charged, row.charged_ns as f64 / 1e6));
            samples.push((requests, row.requests as f64));
        });
        ring.push_now(&samples);
    })
}

/// Binds the scrape listener. A bind failure (address in use, permission)
/// is reported as an event and the server runs without the endpoint —
/// observability must never take serving down.
fn start_scrape_listener(inner: &Arc<Inner>) -> Option<ScrapeHandle> {
    let metrics_inner = Arc::clone(inner);
    let ready_inner = Arc::clone(inner);
    match crate::scrape::start_scrape(
        &inner.config.scrape.addr,
        move || crate::scrape::render_prometheus(&metrics_inner.status()),
        move || ready_inner.readiness(),
    ) {
        Ok(handle) => {
            event!("serve.scrape_listen", addr = format!("{}", handle.addr()));
            Some(handle)
        }
        Err(e) => {
            event!("serve.scrape_bind_failed", error = format!("{e}"));
            None
        }
    }
}

/// Shed bookkeeping shared by every admission-reject path: counters, gauges
/// (a shed must not leave them stale), the shed event, the flight-recorder
/// record, and the shed-storm incident trigger.
fn shed(inner: &Inner, id: u64, key: PlanKey, depth: usize, reason: &'static str) -> ServeError {
    inner.counters.shed.fetch_add(1, Ordering::Relaxed);
    inner.metering.note_shed(key.1);
    granii_telemetry::counter_add("serve.shed", 1);
    granii_telemetry::gauge_set("serve.queue_depth", depth as f64);
    granii_telemetry::gauge_set("serve.cache_hit_rate", inner.cache.hit_rate());
    inner.recorder.record(
        id,
        key.1,
        key.0.name(),
        RecordKind::Shed {
            depth: depth as u32,
            reason,
        },
    );
    event!("serve.shed", id = id, depth = depth, reason = reason);
    if let Some(sheds) = inner.incidents.note_shed() {
        capture_incident(
            inner,
            IncidentTrigger::ShedStorm {
                sheds,
                window_seconds: inner.incidents.config().shed_window.as_secs_f64(),
            },
        );
    }
    ServeError::Overloaded {
        depth: inner.config.queue_depth,
    }
}

/// Blocks (parking with a timeout) until a job is available or shutdown has
/// drained everything. `None` means the worker may exit: shutdown is set,
/// the ring is empty, and no submit is mid-admission.
fn next_job(inner: &Inner) -> Option<Job> {
    loop {
        if let Some(job) = inner.queue.pop() {
            return Some(job);
        }
        if inner.shutdown.load(Ordering::SeqCst) && inner.admitting.load(Ordering::SeqCst) == 0 {
            // Final sweep: a push may have landed between the failed pop
            // above and the flag checks. After (shutdown ∧ admitting == 0)
            // is observed, no further push can succeed, so an empty ring
            // here is conclusive.
            return inner.queue.pop();
        }
        inner.park();
    }
}

fn worker_loop(inner: &Inner, index: usize) {
    // Each worker owns its engine: `Engine` accumulates a profile under a
    // mutex per kernel charge, so sharing one across workers would serialize
    // them — and the profile is drained per drain-cycle below to keep a
    // long-running server's memory flat.
    let engine = Engine::modeled(inner.granii().device());
    let exec = Exec::real(&engine);
    let max_batch = inner.config.max_batch.max(1);
    loop {
        let Some(first) = next_job(inner) else { return };
        // Continuous batching: opportunistically drain whatever else is
        // already queued, up to the batch bound. No waiting — an empty ring
        // means the batch is whatever arrived while we were busy.
        let mut drained = vec![first];
        while drained.len() < max_batch {
            match inner.queue.pop() {
                Some(job) => drained.push(job),
                None => break,
            }
        }
        for job in &drained {
            inner.tenants.release(job.key.1);
        }
        granii_telemetry::gauge_set("serve.queue_depth", inner.queue.len() as f64);
        // Coalesce by plan signature, preserving first-seen (queue) order.
        let mut groups: Vec<(PlanKey, Vec<Job>)> = Vec::new();
        for job in drained {
            match groups.iter_mut().find(|(k, _)| *k == job.key) {
                Some((_, members)) => members.push(job),
                None => groups.push((job.key, vec![job])),
            }
        }
        for (_, members) in groups {
            let n = members.len() as u64;
            let processing = Instant::now();
            process_group(inner, &exec, members);
            let slot = &inner.workers[index];
            slot.busy_ns
                .fetch_add(processing.elapsed().as_nanos() as u64, Ordering::Relaxed);
            slot.requests.fetch_add(n, Ordering::Relaxed);
        }
        // Keep the per-worker profile from growing without bound.
        engine.take_profile();
    }
}

/// Executes one signature-coalesced group: the serial path for a group of
/// one, the multi-RHS batched path otherwise (with a per-member serial
/// fallback if batched execution errors).
fn process_group(inner: &Inner, exec: &Exec, jobs: Vec<Job>) {
    let batch = jobs.len();
    inner.batch_sizes.record_ns(batch as u64);
    granii_telemetry::sketch_record_ns("serve.batch.size", batch as u64);
    // Every formed group — including groups of one — leaves a ring record
    // naming its signature and member ids: the incident timeline can always
    // answer "which batch carried the triggering request".
    let key = jobs[0].key;
    let mut members = [0u64; MAX_BATCH_MEMBERS];
    let tracked = batch.min(MAX_BATCH_MEMBERS);
    for (slot, job) in members.iter_mut().zip(jobs.iter()) {
        *slot = job.id;
    }
    inner.recorder.record(
        jobs[0].id,
        key.1,
        key.0.name(),
        RecordKind::BatchFormed {
            size: batch as u32,
            tracked: tracked as u32,
            members,
        },
    );
    if batch == 1 {
        let job = jobs.into_iter().next().expect("group of one");
        let id = job.id;
        let reply = job.reply.clone();
        let result = process_job(inner, exec, job);
        finish_job(inner, id, key, &reply, result);
        return;
    }
    inner.counters.batches.fetch_add(1, Ordering::Relaxed);
    inner
        .counters
        .batched_requests
        .fetch_add(batch as u64, Ordering::Relaxed);
    granii_telemetry::counter_add("serve.batches", 1);
    granii_telemetry::counter_add("serve.batched_requests", batch as u64);
    if let Err(jobs) = process_batch(inner, exec, jobs) {
        // Rare path (leader bind error, or a batched kernel error): fall
        // back to serving each member serially so one member's failure
        // cannot sink its whole group.
        for job in jobs {
            let id = job.id;
            let reply = job.reply.clone();
            let result = process_job(inner, exec, job);
            finish_job(inner, id, key, &reply, result);
        }
    }
}

/// The multi-RHS batched path: one cache interaction for the group (leader
/// lookup or miss-bind; followers accounted as shared hits), one
/// `iterate_batched` over column-stacked RHS blocks, per-member result
/// extraction and observability. Returns the jobs on failure so the caller
/// can retry them serially.
fn process_batch(
    inner: &Inner,
    exec: &Exec,
    mut jobs: Vec<Job>,
) -> std::result::Result<(), Vec<Job>> {
    let key = jobs[0].key;
    let batch = jobs.len();
    let formed = Instant::now();
    let _span = granii_telemetry::span!(
        "serve.batch",
        model = jobs[0].request.model.name(),
        size = batch,
    );
    // Per-member dequeue bookkeeping. The deadline is re-checked here, at
    // batch-formation time (not at ring pop): earlier groups from the same
    // drain may have executed in between, and that wait counts.
    let mut queue_seconds = Vec::with_capacity(batch);
    let mut expired = Vec::with_capacity(batch);
    for job in &mut jobs {
        if let Some(t) = job.trace.as_deref_mut() {
            t.mark_dequeued();
        }
        let waited = formed.duration_since(job.enqueued).as_secs_f64();
        granii_telemetry::histogram_record_seconds("serve.queue_wait", waited);
        event!("serve.dequeue", id = job.id, queue_seconds = waited);
        queue_seconds.push(waited);
        let is_expired = job.deadline.is_some_and(|d| formed >= d);
        if is_expired {
            inner
                .counters
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            granii_telemetry::counter_add("serve.deadline_expired", 1);
            inner
                .recorder
                .record(job.id, key.1, key.0.name(), RecordKind::DeadlineExpired);
        }
        expired.push(is_expired);
        inner.distinct_signatures.observe(key.1);
        granii_telemetry::distinct_observe("serve.distinct_signatures", key.1);
    }
    let profiles: Vec<Option<InputProfile>> = jobs
        .iter()
        .map(|job| {
            inner
                .inspect
                .config()
                .enabled
                .then(|| InputProfile::extract(&job.request.graph))
        })
        .collect();

    // Leader resolves the entry; followers ride it as shared cache hits.
    let (entry, leader_hit, leader_degraded, select_seconds) = match inner.cache.lookup(key) {
        Some(entry) => (entry, true, false, 0.0),
        None => {
            let (leader, rest) = jobs.split_at_mut(1);
            let leader = &mut leader[0];
            let _ = rest;
            match bind_miss(
                inner,
                exec,
                leader.id,
                &leader.request,
                key,
                expired[0],
                profiles[0],
                &mut leader.trace,
            ) {
                Ok((entry, degraded, secs)) => {
                    if let Some(p) = profiles[0] {
                        inner.inspect.rebind(key, p);
                    }
                    (entry, false, degraded, secs)
                }
                Err(_) => return Err(jobs),
            }
        }
    };
    inner.cache.note_shared_hits(batch as u64 - 1);
    if leader_hit {
        granii_telemetry::counter_add("serve.cache_hits", batch as u64);
        inner.recorder.record(
            jobs[0].id,
            key.1,
            key.0.name(),
            RecordKind::CacheHit {
                shared: batch as u32 - 1,
            },
        );
    } else {
        granii_telemetry::counter_add("serve.cache_misses", 1);
        granii_telemetry::counter_add("serve.cache_hits", batch as u64 - 1);
    }

    // Execute: one multi-RHS iterate for the whole group when the plan has
    // a batched lowering (every entry bound by this server pre-warmed its
    // wide buffers at bind time), per-member serial iterates under the same
    // entry lock otherwise (e.g. attention plans).
    let t_execute = Instant::now();
    let batch_start_us = granii_telemetry::now_us();
    for job in &mut jobs {
        if let Some(t) = job.trace.as_deref_mut() {
            t.mark_execute_start();
        }
    }
    let (composition, predicted_steady_seconds, outputs, charged, shares, execute_seconds) = {
        let mut cached = entry.lock().unwrap_or_else(PoisonError::into_inner);
        let batched = cached.bound.batch_supported() && cached.bound.batch_capacity() >= batch;
        if batched {
            let observed = match cached.bound.iterate_batched_observed(exec, batch) {
                Ok(observed) => observed,
                Err(_) => {
                    drop(cached);
                    return Err(jobs);
                }
            };
            let mut outputs = Vec::with_capacity(batch);
            for t in 0..batch {
                match cached.bound.output_block(t) {
                    Ok(block) => outputs.push(block),
                    Err(_) => {
                        drop(cached);
                        return Err(jobs);
                    }
                }
            }
            let wall = t_execute.elapsed().as_secs_f64();
            // Metering attribution: convert the group's engine charge to
            // integers ONCE, then hand each member an exact integer share
            // — the per-tenant ledger sums back to the group totals
            // bitwise (see `crate::metering::exact_share`).
            let group_charged_ns = (observed.charged_seconds * 1e9).round() as u64;
            let shares: Vec<(u64, u64, u64)> = (0..batch)
                .map(|member| {
                    (
                        exact_share(group_charged_ns, batch, member),
                        exact_share(observed.flops, batch, member),
                        exact_share(observed.bytes, batch, member),
                    )
                })
                .collect();
            (
                cached.composition,
                cached.predicted_steady_seconds,
                outputs,
                // Per-request modeled charge: the batched wrappers charge
                // the full group, each member carries an equal share (equal
                // to its serial charge — the drift lane sees no difference).
                vec![observed.charged_seconds / batch as f64; batch],
                shares,
                vec![wall; batch],
            )
        } else {
            let mut outputs = Vec::with_capacity(batch);
            let mut charged = Vec::with_capacity(batch);
            let mut shares = Vec::with_capacity(batch);
            let mut walls = Vec::with_capacity(batch);
            for _ in 0..batch {
                let t_member = Instant::now();
                let observed = match cached.bound.iterate_observed(exec) {
                    Ok(observed) => observed,
                    Err(_) => {
                        drop(cached);
                        return Err(jobs);
                    }
                };
                let output = match cached.bound.output() {
                    Ok(output) => output.clone(),
                    Err(_) => {
                        drop(cached);
                        return Err(jobs);
                    }
                };
                outputs.push(output);
                charged.push(observed.charged_seconds);
                shares.push((
                    (observed.charged_seconds * 1e9).round() as u64,
                    observed.flops,
                    observed.bytes,
                ));
                walls.push(t_member.elapsed().as_secs_f64());
            }
            (
                cached.composition,
                cached.predicted_steady_seconds,
                outputs,
                charged,
                shares,
                walls,
            )
        }
    };
    for job in &mut jobs {
        if let Some(t) = job.trace.as_deref_mut() {
            t.mark_execute_done();
            t.set_batch(key.1, batch as u64);
        }
    }
    // Batch-causal tracing: one `serve.batch` span per executed group on
    // the dedicated lane, carrying the group signature and member ids;
    // sampled members' execute children link back via `batch_group`.
    if granii_telemetry::enabled() {
        let member_ids: Vec<u64> = jobs.iter().map(|j| j.id).collect();
        trace::record_batch_span(
            key.1,
            key.0.name(),
            &member_ids,
            batch_start_us,
            granii_telemetry::now_us().saturating_sub(batch_start_us),
            inner.batch_trace_seq.fetch_add(1, Ordering::Relaxed),
        );
    }

    // Per-member observability and replies.
    for (i, job) in jobs.into_iter().enumerate() {
        let Job {
            id,
            request,
            enqueued,
            mut trace,
            reply,
            ..
        } = job;
        if let Some(predicted) = predicted_steady_seconds {
            observe_drift(inner, id, &request, key, charged[i], predicted);
        }
        if let Some(p) = profiles[i] {
            observe_input(inner, id, &request, key, &p);
        }
        let cache_hit = leader_hit || i > 0;
        let degraded = if i == 0 { leader_degraded } else { false };
        if let Some(t) = trace.take() {
            t.finish(request.model.name(), cache_hit, degraded);
        }
        let (charged_ns, flops, bytes) = shares[i];
        inner.metering.record(
            key.1,
            &MeterCharge {
                charged_ns,
                flops,
                bytes,
                queue_wait_ns: (queue_seconds[i] * 1e9) as u64,
                batch: batch as u32,
                cache_hit,
                degraded,
            },
        );
        let response = ServeResponse {
            composition,
            output: outputs[i].clone(),
            timing: RequestTiming {
                queue_seconds: queue_seconds[i],
                select_seconds: if i == 0 { select_seconds } else { 0.0 },
                execute_seconds: execute_seconds[i],
                total_seconds: enqueued.elapsed().as_secs_f64(),
            },
            cache_hit,
            degraded,
            batch_size: batch,
        };
        finish_job(inner, id, key, &reply, Ok(response));
    }
    Ok(())
}

/// Per-result bookkeeping and the reply send: completion/failure counters,
/// outcome-split latency sketches, SLO window accounting, flight-recorder
/// records (and the SLO-burn incident trigger), and events.
fn finish_job(
    inner: &Inner,
    id: u64,
    key: PlanKey,
    reply: &mpsc::Sender<Result<ServeResponse>>,
    result: Result<ServeResponse>,
) {
    match &result {
        Ok(response) => {
            inner.counters.completed.fetch_add(1, Ordering::Relaxed);
            if response.degraded {
                inner.counters.degraded.fetch_add(1, Ordering::Relaxed);
                granii_telemetry::counter_add("serve.degraded", 1);
            }
            granii_telemetry::counter_add("serve.completed", 1);
            granii_telemetry::histogram_record_seconds(
                "serve.request_latency",
                response.timing.total_seconds,
            );
            // Outcome-split latency: a healthy hit rate can hide a
            // pathological miss tail in the combined figures. The
            // histogram is the legacy log₂ view; the sketch carries the
            // SLO-grade quantiles (always recorded server-side, gated
            // mirror into the telemetry registry under the same name).
            let outcome = if response.degraded {
                Outcome::Degraded
            } else if response.cache_hit {
                Outcome::Hit
            } else {
                Outcome::Miss
            };
            let metric = match outcome {
                Outcome::Hit => "serve.latency.hit",
                Outcome::Miss => "serve.latency.miss",
                Outcome::Degraded => "serve.latency.degraded",
            };
            let latency_ns = if response.timing.total_seconds > 0.0 {
                (response.timing.total_seconds * 1e9) as u64
            } else {
                0
            };
            // Per-tenant SLO accounting: a completed request over its
            // outcome's objective threshold charges the tenant's
            // violation meter (the monitor below keeps the window math).
            if inner.slo.config().objectives.iter().any(|objective| {
                objective.outcome == outcome && latency_ns as f64 > objective.threshold_ms * 1e6
            }) {
                inner.metering.note_slo_violation(key.1);
            }
            granii_telemetry::histogram_record_seconds(metric, response.timing.total_seconds);
            inner.latency.for_outcome(outcome).record_ns(latency_ns);
            granii_telemetry::sketch_record_ns(metric, latency_ns);
            inner.recorder.record(
                id,
                key.1,
                key.0.name(),
                RecordKind::Complete {
                    outcome: outcome.name(),
                    latency_us: latency_ns / 1_000,
                    batch: response.batch_size as u32,
                    degraded: response.degraded,
                },
            );
            match inner.slo.record(outcome, latency_ns) {
                SloVerdict::Ok => {}
                SloVerdict::WindowClosed {
                    objective,
                    burn_rate,
                    crossed,
                } => {
                    let objective = &inner.slo.config().objectives[objective];
                    let name = objective.outcome.name();
                    granii_telemetry::gauge_set(&format!("serve.slo.burn.{name}"), burn_rate);
                    match crossed {
                        Some(true) => {
                            granii_telemetry::counter_add("serve.slo_breached", 1);
                            inner.recorder.record(
                                id,
                                key.1,
                                key.0.name(),
                                RecordKind::SloBurn {
                                    outcome: name,
                                    burn_rate,
                                    threshold_ms: objective.threshold_ms,
                                },
                            );
                            event!(
                                "serve.slo_burn",
                                outcome = name,
                                burn_rate = burn_rate,
                                threshold_ms = objective.threshold_ms,
                                target = objective.target,
                            );
                            // The request that closed the burning window is
                            // the incident's triggering signature.
                            capture_incident(
                                inner,
                                IncidentTrigger::SloBurn {
                                    outcome: name,
                                    burn_rate,
                                    threshold_ms: objective.threshold_ms,
                                    key,
                                },
                            );
                        }
                        Some(false) => {
                            inner.recorder.record(
                                id,
                                key.1,
                                key.0.name(),
                                RecordKind::SloRecover {
                                    outcome: name,
                                    burn_rate,
                                },
                            );
                            event!("serve.slo_recover", outcome = name, burn_rate = burn_rate,);
                        }
                        None => {}
                    }
                }
            }
            granii_telemetry::gauge_set("serve.cache_hit_rate", inner.cache.hit_rate());
            event!(
                "serve.complete",
                id = id,
                total_seconds = response.timing.total_seconds,
                cache_hit = u64::from(response.cache_hit),
                degraded = u64::from(response.degraded),
                batch_size = response.batch_size,
            );
        }
        Err(_) => {
            inner.counters.failed.fetch_add(1, Ordering::Relaxed);
            granii_telemetry::counter_add("serve.failed", 1);
            inner
                .recorder
                .record(id, key.1, key.0.name(), RecordKind::Failed);
            // The gauges must track reality on the failure path too —
            // a failed request still consumed a queue slot and a cache
            // lookup.
            granii_telemetry::gauge_set("serve.cache_hit_rate", inner.cache.hit_rate());
            granii_telemetry::gauge_set("serve.queue_depth", inner.queue.len() as f64);
            event!("serve.failed", id = id);
        }
    }
    // Receiver may have given up; a dead ticket is not a worker error.
    let _ = reply.send(result);
}

/// What `choose_composition` decided: the winner, whether it is the
/// degraded fallback, and every candidate's predicted cost (empty on the
/// degraded path — nothing was predicted).
type Chosen = (Composition, bool, Vec<(Composition, f64)>);

/// Picks the composition for a cache miss. Normal path: full cost-model
/// selection, returning every candidate's predicted cost alongside the
/// winner (the selection audit an incident bundle replays). Degraded path
/// (expired deadline, or the cost models cannot predict a candidate): the
/// plan's default composition — the first eligible candidate, which every
/// compiled model is guaranteed to have — with an empty prediction list
/// (nothing was predicted).
fn choose_composition(
    granii: &Granii,
    request: &ServeRequest,
    cfg: LayerConfig,
    expired: bool,
    id: u64,
) -> Result<Chosen> {
    if !expired {
        match granii.select_with_config(request.model, &request.graph, cfg, request.iterations) {
            Ok(selection) => {
                return Ok((selection.composition, false, selection.predicted));
            }
            Err(CoreError::MissingCostModel { .. }) => {
                event!("serve.degrade", id = id, reason = "missing_cost_model");
            }
            Err(e) => return Err(e.into()),
        }
    } else {
        event!("serve.degrade", id = id, reason = "deadline_expired");
    }
    let plan = granii.compiled(request.model, cfg)?;
    let eligible = plan.eligible(cfg.k_in, cfg.k_out);
    let first = eligible.first().ok_or(CoreError::NoCandidates {
        model: request.model.name().to_owned(),
    })?;
    Ok((first.composition, true, Vec::new()))
}

/// The cache-miss slow path: select (or degrade), build, bind, pre-warm the
/// multi-RHS batch buffers, and insert. Records the selection audit (chosen
/// composition, every candidate's predicted cost, and the input profile
/// that keyed the choice) so a later incident against this signature can
/// replay the decision. Returns the cached entry, whether the degraded
/// composition was used, and the select wall time.
#[allow(clippy::too_many_arguments)]
fn bind_miss(
    inner: &Inner,
    exec: &Exec,
    id: u64,
    request: &ServeRequest,
    key: PlanKey,
    expired: bool,
    profile: Option<InputProfile>,
    trace: &mut Option<Box<RequestTrace>>,
) -> Result<(Arc<Mutex<CachedPlan>>, bool, f64)> {
    let t_select = Instant::now();
    if let Some(t) = trace.as_deref_mut() {
        t.mark_select_start();
    }
    let cfg = LayerConfig::new(request.k1, request.k2);
    let granii = inner.granii();
    let (composition, degraded, predicted) =
        choose_composition(&granii, request, cfg, expired, id)?;
    let plan = granii.compiled(request.model, cfg)?;
    let candidate = plan
        .candidates
        .iter()
        .find(|c| c.composition == composition)
        .ok_or_else(|| {
            CoreError::InvalidIr(format!(
                "selected composition {} missing from compiled plan",
                composition.name()
            ))
        })?;
    // The drift detector's reference point: what the current cost
    // models claim one steady-state iteration of this plan costs.
    // Unpredictable (degraded path) → None, which opts the
    // signature out of drift tracking.
    let features = FeaturizedInput::extract(&request.graph, request.k1, request.k2);
    let predicted_steady_seconds = granii
        .cost_models()
        .predict_steady_state(&candidate.program, &features)
        .ok();
    let ctx = GraphCtx::new(&request.graph).map_err(CoreError::from)?;
    let h = DenseMatrix::random(request.graph.num_nodes(), request.k1, 1.0, SERVE_SEED);
    let plan_inputs = PlanInputs::for_model(request.model, cfg, &ctx, h, SERVE_SEED + 1);
    let exec_plan = ExecPlan::build(&candidate.program)?;
    let mut bound = exec_plan.bind(exec, &plan_inputs.as_program_inputs())?;
    if inner.config.max_batch > 1 {
        // Pre-warm the wide multi-RHS buffers while the miss is already
        // paying for allocation: steady-state batched hits then stay on the
        // zero-alloc contract, exactly like serial hits.
        bound.ensure_batch(inner.config.max_batch)?;
    }
    let entry = inner.cache.insert(
        key,
        CachedPlan {
            composition,
            bound,
            predicted_steady_seconds,
        },
    );
    if let Some(t) = trace.as_deref_mut() {
        t.mark_select_done();
    }
    let select_seconds = t_select.elapsed().as_secs_f64();
    inner.incidents.audits().record(
        key,
        SelectionAudit {
            composition: composition.name(),
            degraded,
            predicted: predicted.into_iter().map(|(c, s)| (c.name(), s)).collect(),
            profile,
            captured_at_us: granii_telemetry::now_us(),
        },
    );
    inner.recorder.record(
        id,
        key.1,
        key.0.name(),
        RecordKind::CacheMiss {
            select_us: (select_seconds * 1e6) as u64,
            degraded,
        },
    );
    Ok((entry, degraded, select_seconds))
}

/// Online drift check: compare the engine-charged cost of the iteration
/// just run (a member's equal share, for a batched group) against the cost
/// model's steady-state promise for this plan.
fn observe_drift(
    inner: &Inner,
    id: u64,
    request: &ServeRequest,
    key: PlanKey,
    charged_seconds: f64,
    predicted: f64,
) {
    if let DriftVerdict::Flagged { ewma_residual } =
        inner.drift.observe(key, charged_seconds, predicted)
    {
        inner.cache.invalidate(key);
        inner.counters.drift_flagged.fetch_add(1, Ordering::Relaxed);
        granii_telemetry::counter_add("serve.drift_flagged", 1);
        inner.recorder.record(
            id,
            key.1,
            key.0.name(),
            RecordKind::CacheInvalidate {
                cause: "drift_flag",
            },
        );
        inner.recorder.record(
            id,
            key.1,
            key.0.name(),
            RecordKind::DriftFlag { ewma_residual },
        );
        event!(
            "serve.drift",
            id = id,
            model = request.model.name(),
            fingerprint = hex_fp(key.1),
            k1 = request.k1,
            k2 = request.k2,
            ewma_residual = ewma_residual,
        );
        capture_incident(inner, IncidentTrigger::Drift { key, ewma_residual });
    }
}

/// Input-drift check: fold this request's degree statistics into the
/// signature's live profile and compare against what selection saw.
/// Orthogonal to the residual lane above — a stale plan executes its
/// *bound* graph, so its cost residual stays clean while the live input
/// walks away.
fn observe_input(inner: &Inner, id: u64, request: &ServeRequest, key: PlanKey, p: &InputProfile) {
    if let InspectVerdict::Flagged { band_l1, cv_delta } = inner.inspect.observe(key, p) {
        inner.cache.invalidate(key);
        inner
            .counters
            .input_drift_flagged
            .fetch_add(1, Ordering::Relaxed);
        granii_telemetry::counter_add("serve.input_drift_flagged", 1);
        // The flag is the rare path: the row walk for the offending
        // live-vs-reference deltas costs nothing in steady state.
        let (live_avg_degree, live_cv, reference_cv) = inner
            .inspect
            .rows()
            .into_iter()
            .find(|row| row.key == key)
            .map(|row| {
                (
                    row.live.avg_degree,
                    row.live.degree_cv,
                    row.reference.degree_cv,
                )
            })
            .unwrap_or((p.avg_degree, p.degree_cv, 0.0));
        inner.recorder.record(
            id,
            key.1,
            key.0.name(),
            RecordKind::CacheInvalidate {
                cause: "input_drift_flag",
            },
        );
        inner.recorder.record(
            id,
            key.1,
            key.0.name(),
            RecordKind::InputDriftFlag {
                band_l1,
                cv_delta,
                live_cv,
                reference_cv,
                live_avg_degree,
            },
        );
        event!(
            "serve.input_drift",
            id = id,
            model = request.model.name(),
            fingerprint = hex_fp(key.1),
            k1 = request.k1,
            k2 = request.k2,
            band_l1 = band_l1,
            cv_delta = cv_delta,
        );
        capture_incident(
            inner,
            IncidentTrigger::InputDrift {
                key,
                band_l1,
                cv_delta,
            },
        );
    }
}

/// The serial (group-of-one) path.
fn process_job(inner: &Inner, exec: &Exec, job: Job) -> Result<ServeResponse> {
    let Job {
        id,
        key,
        request,
        enqueued,
        deadline,
        mut trace,
        ..
    } = job;
    let _span = granii_telemetry::span!(
        "serve.request",
        model = request.model.name(),
        nodes = request.graph.num_nodes(),
    );
    let start = Instant::now();
    if let Some(t) = trace.as_deref_mut() {
        t.mark_dequeued();
    }
    let queue_seconds = start.duration_since(enqueued).as_secs_f64();
    granii_telemetry::histogram_record_seconds("serve.queue_wait", queue_seconds);
    event!("serve.dequeue", id = id, queue_seconds = queue_seconds);

    // Deadline policy: checked when the (singleton) group forms. An expired
    // request is still served — a late answer beats none — but skips the
    // cost models.
    let expired = deadline.is_some_and(|d| start >= d);
    if expired {
        inner
            .counters
            .deadline_expired
            .fetch_add(1, Ordering::Relaxed);
        granii_telemetry::counter_add("serve.deadline_expired", 1);
        inner
            .recorder
            .record(id, key.1, key.0.name(), RecordKind::DeadlineExpired);
    }

    inner.distinct_signatures.observe(key.1);
    granii_telemetry::distinct_observe("serve.distinct_signatures", key.1);
    // The input-drift lane inspects every request's graph (one O(nodes)
    // pass, allocation-free on the tracked counters) — the same statistics
    // selection itself keys on.
    let profile = inner
        .inspect
        .config()
        .enabled
        .then(|| InputProfile::extract(&request.graph));
    let (entry, cache_hit, degraded, select_seconds) = match inner.cache.lookup(key) {
        // Hit: the signature's plan is already bound — even an expired
        // request serves it at full quality.
        Some(entry) => {
            inner
                .recorder
                .record(id, key.1, key.0.name(), RecordKind::CacheHit { shared: 0 });
            (entry, true, false, 0.0)
        }
        None => {
            let (entry, degraded, select_seconds) =
                bind_miss(inner, exec, id, &request, key, expired, profile, &mut trace)?;
            // Selection just inspected the graph as it is now: pin it as
            // the input-drift reference for this signature.
            if let Some(p) = profile {
                inner.inspect.rebind(key, p);
            }
            (entry, false, degraded, select_seconds)
        }
    };

    let t_execute = Instant::now();
    if let Some(t) = trace.as_deref_mut() {
        t.mark_execute_start();
    }
    let (composition, output, observed, predicted_steady_seconds) = {
        let mut cached = entry.lock().unwrap_or_else(PoisonError::into_inner);
        let observed = cached.bound.iterate_observed(exec)?;
        let output = cached.bound.output()?.clone();
        (
            cached.composition,
            output,
            observed,
            cached.predicted_steady_seconds,
        )
    };
    if let Some(t) = trace.as_deref_mut() {
        t.mark_execute_done();
    }
    let execute_seconds = t_execute.elapsed().as_secs_f64();
    granii_telemetry::counter_add(
        if cache_hit {
            "serve.cache_hits"
        } else {
            "serve.cache_misses"
        },
        1,
    );

    if let Some(predicted) = predicted_steady_seconds {
        observe_drift(
            inner,
            id,
            &request,
            key,
            observed.charged_seconds,
            predicted,
        );
    }
    if let Some(p) = profile {
        observe_input(inner, id, &request, key, &p);
    }

    if let Some(t) = trace.take() {
        t.finish(request.model.name(), cache_hit, degraded);
    }

    inner.metering.record(
        key.1,
        &MeterCharge {
            charged_ns: (observed.charged_seconds * 1e9).round() as u64,
            flops: observed.flops,
            bytes: observed.bytes,
            queue_wait_ns: (queue_seconds * 1e9) as u64,
            batch: 1,
            cache_hit,
            degraded,
        },
    );

    Ok(ServeResponse {
        composition,
        output,
        timing: RequestTiming {
            queue_seconds,
            select_seconds,
            execute_seconds,
            total_seconds: enqueued.elapsed().as_secs_f64(),
        },
        cache_hit,
        degraded,
        batch_size: 1,
    })
}

/// Assembles and stores one incident bundle for `trigger`, subject to the
/// capturer's rate limits. Runs on whichever thread hit the trigger (a
/// worker for SLO burn and drift, a submitter for a shed storm) — capture
/// is rare by construction, so the status/sketch assembly cost never sits
/// on the steady-state path.
fn capture_incident(inner: &Inner, trigger: IncidentTrigger) {
    if !inner.incidents.admit() {
        return;
    }
    let seq = inner.incidents.next_seq();
    granii_telemetry::counter_add("serve.incidents", 1);
    event!("serve.incident", seq = seq, kind = trigger.kind());
    // Ring excerpt: the newest `ring_tail` records, oldest-first.
    let ring_all = inner.recorder.snapshot();
    let tail = inner.incidents.config().ring_tail;
    let ring: Vec<RingEntry> = ring_all[ring_all.len().saturating_sub(tail)..]
        .iter()
        .map(RingEntry::from_record)
        .collect();
    // The triggering signature's selection audit, when the table still
    // holds it (the audit table is separate from the plan cache precisely
    // because the flag invalidated the cache entry a moment ago).
    let selection = trigger.key().and_then(|key| {
        inner
            .incidents
            .audits()
            .get(key)
            .map(|audit| SelectionAuditInfo::from_audit(key, &audit))
    });
    // Sketches: the three per-outcome latency sketches, their merge (one
    // whole-server latency distribution), and the batch-size sketch.
    let mut sketches = Vec::new();
    let latency = inner.latency.snapshots();
    let mut merged = latency.first().cloned();
    for snapshot in latency.iter().skip(1) {
        if let Some(m) = merged.as_mut() {
            m.merge(snapshot);
        }
    }
    if let Some(mut m) = merged {
        m.name = "serve.latency.all".to_owned();
        sketches.push(SketchSummary::from_snapshot(&m));
    }
    sketches.extend(latency.iter().map(SketchSummary::from_snapshot));
    sketches.push(SketchSummary::from_snapshot(
        &inner.batch_sizes.snapshot("serve.batch.size"),
    ));
    let events = render_events(
        &granii_telemetry::snapshot_events(),
        inner.incidents.config().event_tail,
    );
    let bundle = IncidentBundle {
        seq,
        captured_at_us: granii_telemetry::now_us(),
        trigger: trigger.info(),
        recorder: RecorderInfo {
            capacity: inner.recorder.capacity() as u64,
            written: inner.recorder.written(),
            dropped: inner.recorder.dropped(),
        },
        ring,
        selection,
        sketches,
        events,
        events_dropped: granii_telemetry::events_dropped(),
        // The last minutes of the sampled timeline — empty ring (sampler
        // disabled, or the incident beat the first tick) attaches nothing.
        timeline: {
            let snap = inner.timeline.snapshot();
            (snap.frames() > 0).then(|| TimelineInfo::from_snapshot(&snap))
        },
        status: inner.status(),
    };
    inner.incidents.store(bundle);
}
