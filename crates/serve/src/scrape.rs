//! Prometheus-compatible scrape surface: `/metrics`, `/healthz`, `/readyz`.
//!
//! The serving runtime's observability was snapshot-shaped — files written
//! on demand. A real deployment wants the inverse: an operator points a
//! scraper (Prometheus, a curl in a cron job, a load balancer's readiness
//! probe) at the process and the process answers. This module is that
//! answer with **zero new dependencies**: a `std::net::TcpListener` on its
//! own thread speaking just enough HTTP/1.1 for scrapers, rendering the
//! live [`ServerStatus`] in the Prometheus text exposition format
//! (version 0.0.4) — counters, gauges, latency/batch sketch quantiles as
//! summaries, and per-tenant series labeled `tenant="<fingerprint>"` from
//! the metering ledger.
//!
//! The listener polls a nonblocking accept loop so shutdown never blocks
//! on a connection that isn't coming; per-connection reads are bounded and
//! time-limited so a slow client cannot wedge the thread. One scrape costs
//! one status assembly — nothing here touches the request hot path.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::status::ServerStatus;

/// Scrape-listener tuning.
#[derive(Debug, Clone)]
pub struct ScrapeConfig {
    /// Whether to start the listener at all.
    pub enabled: bool,
    /// Bind address; port 0 picks an ephemeral port (read it back via
    /// [`crate::Server::scrape_addr`]).
    pub addr: String,
}

impl Default for ScrapeConfig {
    fn default() -> Self {
        ScrapeConfig {
            enabled: false,
            addr: "127.0.0.1:0".to_owned(),
        }
    }
}

/// Owns the listener thread; reports the bound address and stops (joins)
/// on [`ScrapeHandle::stop`] or drop.
pub struct ScrapeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ScrapeHandle {
    /// The actually-bound socket address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the thread and joins it.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ScrapeHandle {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Starts the scrape listener. `metrics` renders the `/metrics` body on
/// each scrape; `ready` returns `Ok(())` when `/readyz` should say 200 and
/// `Err(reason)` for a 503 with the reason in the body.
///
/// # Errors
///
/// Propagates the bind error (address in use, permission).
pub fn start_scrape<M, R>(addr: &str, metrics: M, ready: R) -> std::io::Result<ScrapeHandle>
where
    M: Fn() -> String + Send + 'static,
    R: Fn() -> Result<(), String> + Send + 'static,
{
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("granii-scrape".to_owned())
        .spawn(move || {
            while !flag.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => serve_connection(stream, &metrics, &ready),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        })?;
    Ok(ScrapeHandle {
        addr,
        stop,
        thread: Some(thread),
    })
}

/// Reads one request, routes it, writes one response, closes. Any I/O
/// error just drops the connection — the scraper retries.
fn serve_connection<M, R>(mut stream: TcpStream, metrics: &M, ready: &R)
where
    M: Fn() -> String,
    R: Fn() -> Result<(), String>,
{
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 1024];
    let mut len = 0usize;
    // Read until the request line is complete (headers are irrelevant).
    while len < buf.len() {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(1).any(|w| w == b"\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request_line = match std::str::from_utf8(&buf[..len]) {
        Ok(text) => text.lines().next().unwrap_or(""),
        Err(_) => "",
    };
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);

    let (status_line, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_owned(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                // The Prometheus text exposition content type.
                "text/plain; version=0.0.4; charset=utf-8",
                metrics(),
            ),
            "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_owned()),
            "/readyz" => match ready() {
                Ok(()) => ("200 OK", "text/plain; charset=utf-8", "ready\n".to_owned()),
                Err(reason) => (
                    "503 Service Unavailable",
                    "text/plain; charset=utf-8",
                    format!("not ready: {reason}\n"),
                ),
            },
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_owned(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status_line}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

// ---------------------------------------------------------------------------
// Prometheus text-exposition rendering.
// ---------------------------------------------------------------------------

fn push_value(out: &mut String, v: f64) {
    use std::fmt::Write as _;
    // Scrapers reject NaN/inf samples from buggy exporters; emit 0 instead.
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    use std::fmt::Write as _;
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (key, val)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{key}=\"");
            for c in val.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    push_value(out, value);
    out.push('\n');
}

/// Renders a status snapshot in the Prometheus text exposition format
/// (counters, gauges, summaries, per-tenant labeled series). Pure function
/// of the snapshot so tests can check the format strictly.
pub fn render_prometheus(status: &ServerStatus) -> String {
    let mut out = String::with_capacity(8 * 1024);

    family(
        &mut out,
        "granii_serve_uptime_seconds",
        "gauge",
        "Seconds since the server started.",
    );
    sample(
        &mut out,
        "granii_serve_uptime_seconds",
        &[],
        status.uptime_seconds,
    );

    family(
        &mut out,
        "granii_serve_requests_total",
        "counter",
        "Requests by lifecycle state.",
    );
    for (state, value) in [
        ("submitted", status.submitted),
        ("completed", status.completed),
        ("failed", status.failed),
        ("shed", status.shed),
        ("degraded", status.degraded),
        ("deadline_expired", status.deadline_expired),
    ] {
        sample(
            &mut out,
            "granii_serve_requests_total",
            &[("state", state)],
            value as f64,
        );
    }

    family(
        &mut out,
        "granii_serve_queue_depth",
        "gauge",
        "Requests currently queued.",
    );
    sample(
        &mut out,
        "granii_serve_queue_depth",
        &[],
        status.queue_depth as f64,
    );
    family(
        &mut out,
        "granii_serve_queue_capacity",
        "gauge",
        "Configured admission queue bound.",
    );
    sample(
        &mut out,
        "granii_serve_queue_capacity",
        &[],
        status.queue_capacity as f64,
    );

    family(
        &mut out,
        "granii_serve_cache_lookups_total",
        "counter",
        "Plan-cache lookups by result.",
    );
    for (result, value) in [("hit", status.cache.hits), ("miss", status.cache.misses)] {
        sample(
            &mut out,
            "granii_serve_cache_lookups_total",
            &[("result", result)],
            value as f64,
        );
    }
    family(
        &mut out,
        "granii_serve_cache_evictions_total",
        "counter",
        "Plan-cache entries dropped by LRU pressure.",
    );
    sample(
        &mut out,
        "granii_serve_cache_evictions_total",
        &[],
        status.cache.evictions as f64,
    );
    family(
        &mut out,
        "granii_serve_cache_invalidations_total",
        "counter",
        "Plan-cache entries dropped by drift flags or model swaps.",
    );
    sample(
        &mut out,
        "granii_serve_cache_invalidations_total",
        &[],
        status.cache.invalidations as f64,
    );
    family(
        &mut out,
        "granii_serve_cache_entries",
        "gauge",
        "Bound plans currently cached.",
    );
    sample(
        &mut out,
        "granii_serve_cache_entries",
        &[],
        status.cache.len as f64,
    );

    family(
        &mut out,
        "granii_serve_distinct_signatures",
        "gauge",
        "Estimated distinct plan signatures served (HyperLogLog).",
    );
    sample(
        &mut out,
        "granii_serve_distinct_signatures",
        &[],
        status.distinct_signatures,
    );

    family(
        &mut out,
        "granii_serve_drift_flags_total",
        "counter",
        "Signature flags by drift lane.",
    );
    for (lane, value) in [
        ("cost_model", status.drift_flagged),
        ("input", status.input_drift_flagged),
    ] {
        sample(
            &mut out,
            "granii_serve_drift_flags_total",
            &[("lane", lane)],
            value as f64,
        );
    }

    family(
        &mut out,
        "granii_serve_worker_utilization",
        "gauge",
        "Busy share of uptime per worker.",
    );
    for w in &status.workers {
        let index = w.index.to_string();
        sample(
            &mut out,
            "granii_serve_worker_utilization",
            &[("worker", &index)],
            w.utilization,
        );
    }

    // Latency sketches as Prometheus summaries: quantile-labeled samples
    // plus the _sum/_count pair, one series set per outcome class.
    family(
        &mut out,
        "granii_serve_latency_ms",
        "summary",
        "Request latency quantiles (milliseconds) by outcome.",
    );
    for row in &status.latency {
        for (q, value) in [
            ("0.5", row.p50_ms),
            ("0.95", row.p95_ms),
            ("0.99", row.p99_ms),
            ("0.999", row.p999_ms),
        ] {
            sample(
                &mut out,
                "granii_serve_latency_ms",
                &[("outcome", &row.outcome), ("quantile", q)],
                value,
            );
        }
        sample(
            &mut out,
            "granii_serve_latency_ms_sum",
            &[("outcome", &row.outcome)],
            row.mean_ms * row.count as f64,
        );
        sample(
            &mut out,
            "granii_serve_latency_ms_count",
            &[("outcome", &row.outcome)],
            row.count as f64,
        );
    }

    family(
        &mut out,
        "granii_serve_batch_size",
        "summary",
        "Coalesced batch-group size quantiles.",
    );
    for (q, value) in [
        ("0.5", status.batching.p50_size),
        ("0.95", status.batching.p95_size),
    ] {
        sample(
            &mut out,
            "granii_serve_batch_size",
            &[("quantile", q)],
            value,
        );
    }
    sample(
        &mut out,
        "granii_serve_batch_size_sum",
        &[],
        status.batching.mean_size * status.batching.groups as f64,
    );
    sample(
        &mut out,
        "granii_serve_batch_size_count",
        &[],
        status.batching.groups as f64,
    );

    family(
        &mut out,
        "granii_serve_slo_violations_total",
        "counter",
        "Requests over their SLO threshold by outcome.",
    );
    for row in &status.slo {
        sample(
            &mut out,
            "granii_serve_slo_violations_total",
            &[("outcome", &row.outcome)],
            row.violations as f64,
        );
    }
    family(
        &mut out,
        "granii_serve_slo_burn_rate",
        "gauge",
        "Burn rate of the most recently closed SLO window by outcome.",
    );
    for row in &status.slo {
        sample(
            &mut out,
            "granii_serve_slo_burn_rate",
            &[("outcome", &row.outcome)],
            row.burn_rate,
        );
    }
    family(
        &mut out,
        "granii_serve_slo_burning",
        "gauge",
        "Whether the objective's last window was at or above the alert burn (0/1).",
    );
    for row in &status.slo {
        sample(
            &mut out,
            "granii_serve_slo_burning",
            &[("outcome", &row.outcome)],
            if row.burning { 1.0 } else { 0.0 },
        );
    }

    family(
        &mut out,
        "granii_serve_recorder_records_total",
        "counter",
        "Flight-recorder records written and dropped.",
    );
    for (state, value) in [
        ("written", status.recorder.written),
        ("dropped", status.recorder.dropped),
    ] {
        sample(
            &mut out,
            "granii_serve_recorder_records_total",
            &[("state", state)],
            value as f64,
        );
    }
    family(
        &mut out,
        "granii_serve_incidents_total",
        "counter",
        "Incident bundles captured and triggers suppressed.",
    );
    for (state, value) in [
        ("captured", status.recorder.incidents),
        ("suppressed", status.recorder.suppressed),
    ] {
        sample(
            &mut out,
            "granii_serve_incidents_total",
            &[("state", state)],
            value as f64,
        );
    }

    // Per-tenant series from the metering ledger, tenant-labeled with the
    // hex fingerprint — the "which tenant is burning the budget" answer.
    family(
        &mut out,
        "granii_serve_tenant_requests_total",
        "counter",
        "Completed requests per tenant fingerprint.",
    );
    for t in &status.metering.tenants {
        sample(
            &mut out,
            "granii_serve_tenant_requests_total",
            &[("tenant", &t.fingerprint)],
            t.requests as f64,
        );
    }
    family(
        &mut out,
        "granii_serve_tenant_charged_ms_total",
        "counter",
        "Engine-charged milliseconds attributed per tenant.",
    );
    for t in &status.metering.tenants {
        sample(
            &mut out,
            "granii_serve_tenant_charged_ms_total",
            &[("tenant", &t.fingerprint)],
            t.charged_ms,
        );
    }
    family(
        &mut out,
        "granii_serve_tenant_flops_total",
        "counter",
        "Floating-point operations attributed per tenant.",
    );
    for t in &status.metering.tenants {
        sample(
            &mut out,
            "granii_serve_tenant_flops_total",
            &[("tenant", &t.fingerprint)],
            t.flops,
        );
    }
    family(
        &mut out,
        "granii_serve_tenant_bytes_total",
        "counter",
        "Bytes (read + written) attributed per tenant.",
    );
    for t in &status.metering.tenants {
        sample(
            &mut out,
            "granii_serve_tenant_bytes_total",
            &[("tenant", &t.fingerprint)],
            t.bytes,
        );
    }
    family(
        &mut out,
        "granii_serve_tenant_sheds_total",
        "counter",
        "Requests shed before execution per tenant.",
    );
    for t in &status.metering.tenants {
        sample(
            &mut out,
            "granii_serve_tenant_sheds_total",
            &[("tenant", &t.fingerprint)],
            t.sheds as f64,
        );
    }
    family(
        &mut out,
        "granii_serve_tenant_slo_violations_total",
        "counter",
        "SLO-threshold violations per tenant.",
    );
    for t in &status.metering.tenants {
        sample(
            &mut out,
            "granii_serve_tenant_slo_violations_total",
            &[("tenant", &t.fingerprint)],
            t.slo_violations as f64,
        );
    }
    family(
        &mut out,
        "granii_serve_tenant_batch_share",
        "gauge",
        "Mean fraction of an execute occupied per request, per tenant (1 = serial).",
    );
    for t in &status.metering.tenants {
        sample(
            &mut out,
            "granii_serve_tenant_batch_share",
            &[("tenant", &t.fingerprint)],
            t.mean_batch_share,
        );
    }
    family(
        &mut out,
        "granii_serve_tenant_hit_rate",
        "gauge",
        "Plan-cache hit rate per tenant.",
    );
    for t in &status.metering.tenants {
        sample(
            &mut out,
            "granii_serve_tenant_hit_rate",
            &[("tenant", &t.fingerprint)],
            t.hit_rate,
        );
    }
    family(
        &mut out,
        "granii_serve_tenant_queue_wait_ms",
        "gauge",
        "Mean queue wait per completed request, per tenant (milliseconds).",
    );
    for t in &status.metering.tenants {
        sample(
            &mut out,
            "granii_serve_tenant_queue_wait_ms",
            &[("tenant", &t.fingerprint)],
            t.mean_queue_wait_ms,
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect to scrape listener");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a header/body split");
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn listener_routes_metrics_health_and_readiness() {
        let ready = Arc::new(AtomicBool::new(false));
        let ready_view = Arc::clone(&ready);
        let handle = start_scrape(
            "127.0.0.1:0",
            || "# TYPE up gauge\nup 1\n".to_owned(),
            move || {
                if ready_view.load(Ordering::Relaxed) {
                    Ok(())
                } else {
                    Err("queue saturated".to_owned())
                }
            },
        )
        .expect("bind scrape listener");
        let addr = handle.addr();

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");

        let (head, body) = get(addr, "/readyz");
        assert!(head.starts_with("HTTP/1.1 503"), "{head}");
        assert!(body.contains("queue saturated"), "{body}");
        ready.store(true, Ordering::Relaxed);
        let (head, body) = get(addr, "/readyz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ready\n");

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        assert!(body.contains("up 1"));

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        handle.stop();
        assert!(
            TcpStream::connect(addr).is_err()
                || TcpStream::connect(addr)
                    .map(|mut s| {
                        let _ = write!(s, "GET /healthz HTTP/1.1\r\n\r\n");
                        let mut buf = String::new();
                        s.set_read_timeout(Some(Duration::from_millis(200)))
                            .unwrap();
                        s.read_to_string(&mut buf).unwrap_or(0) == 0
                    })
                    .unwrap_or(true),
            "stopped listener no longer serves"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let mut out = String::new();
        sample(&mut out, "m", &[("k", "a\"b\\c\nd")], 1.0);
        assert_eq!(out, "m{k=\"a\\\"b\\\\c\\nd\"} 1\n");
    }

    #[test]
    fn non_finite_values_render_as_zero() {
        let mut out = String::new();
        sample(&mut out, "m", &[], f64::NAN);
        assert_eq!(out, "m 0\n");
    }
}
