use std::fmt;

use granii_core::CoreError;

/// Errors surfaced to serving clients.
///
/// Degradable conditions (cost-model prediction failures, expired deadlines)
/// deliberately do *not* appear here — those fall back to the plan's default
/// composition and complete the request (see the crate docs). Only structural
/// problems fail a request.
#[derive(Debug)]
pub enum ServeError {
    /// The bounded request queue was full at submit time; the request was
    /// shed without being enqueued. Back off and retry.
    Overloaded {
        /// The queue depth at which the request was rejected.
        depth: usize,
    },
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The worker processing the request disappeared before replying
    /// (only possible if a worker thread panicked).
    WorkerLost,
    /// Compilation, binding, or execution failed.
    Core(CoreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth } => {
                write!(f, "request queue full at depth {depth}; request shed")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::WorkerLost => write!(f, "worker exited before replying"),
            ServeError::Core(e) => write!(f, "serving request failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

/// Convenience alias for serve-layer results.
pub type Result<T> = std::result::Result<T, ServeError>;
