//! Declarative latency SLOs with error-budget burn-rate monitoring.
//!
//! An objective says "`target` of `outcome` requests finish within
//! `threshold_ms`" — e.g. 99% of cache hits under 100 ms. The interesting
//! operational quantity is not the instantaneous compliance but the **burn
//! rate**: the ratio of the observed violation fraction to the budgeted one
//! (`1 − target`). Burn 1.0 spends the error budget exactly as provisioned;
//! burn 2.0 exhausts a 30-day budget in 15 days; sustained burn above the
//! alert threshold is the page-worthy signal (the standard SRE
//! multi-window-burn formulation, collapsed to one tumbling window here).
//!
//! The monitor keeps exact per-objective violation counters fed on the
//! request completion path (two relaxed atomic adds — nothing the
//! steady-state zero-alloc contract can see) and closes a tumbling window
//! every `window` requests per objective: the window's burn rate becomes
//! the objective's current reading, crossing the alert threshold upward
//! emits a `serve.slo_burn` event, and recovering below it emits
//! `serve.slo_recover`. Long-run quantiles for the same outcomes come from
//! the latency sketches ([`granii_telemetry::Sketch`]) the server records
//! next to these counters — the sketches answer "what *is* the p999", the
//! budget counters answer "are we violating what we *promised*".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Request outcome classes, mirroring the outcome-split latency metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Served from a cached bound plan.
    Hit,
    /// Selected and bound a fresh plan.
    Miss,
    /// Fell back to the default composition.
    Degraded,
}

impl Outcome {
    /// Stable lowercase name (metric suffixes, status rows).
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Hit => "hit",
            Outcome::Miss => "miss",
            Outcome::Degraded => "degraded",
        }
    }
}

/// One latency objective: `target` fraction of `outcome` requests must
/// finish within `threshold_ms`.
#[derive(Debug, Clone, Copy)]
pub struct LatencyObjective {
    /// Which outcome class the objective covers.
    pub outcome: Outcome,
    /// Latency threshold in milliseconds.
    pub threshold_ms: f64,
    /// Required compliant fraction in (0, 1), e.g. `0.99`.
    pub target: f64,
}

impl LatencyObjective {
    /// Convenience constructor.
    pub fn new(outcome: Outcome, threshold_ms: f64, target: f64) -> Self {
        LatencyObjective {
            outcome,
            threshold_ms,
            target: target.clamp(0.0, 0.9999),
        }
    }
}

/// Tuning for the SLO monitor.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Master switch; when false, `record` is a no-op.
    pub enabled: bool,
    /// The objectives to track.
    pub objectives: Vec<LatencyObjective>,
    /// Requests per tumbling burn-rate window (per objective).
    pub window: u64,
    /// Burn rate at or above which a window counts as burning (event +
    /// breached state). 1.0 = budget spent exactly as provisioned.
    pub burn_alert: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            enabled: true,
            objectives: vec![
                LatencyObjective::new(Outcome::Hit, 100.0, 0.99),
                LatencyObjective::new(Outcome::Miss, 500.0, 0.99),
                LatencyObjective::new(Outcome::Degraded, 1000.0, 0.95),
            ],
            window: 64,
            burn_alert: 2.0,
        }
    }
}

/// What `record` decided for one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloVerdict {
    /// Counters updated; no window closed (or nothing changed).
    Ok,
    /// A window just closed. The caller should refresh the `serve.slo.*`
    /// gauges, and emit a burn/recover event when `crossed` is set.
    WindowClosed {
        /// Index into [`SloConfig::objectives`].
        objective: usize,
        /// The closed window's burn rate.
        burn_rate: f64,
        /// `Some(true)`: crossed into burning; `Some(false)`: recovered;
        /// `None`: no state change.
        crossed: Option<bool>,
    },
}

/// Cumulative per-objective counters (lock-free recording path).
struct ObjCounters {
    total: AtomicU64,
    violations: AtomicU64,
}

/// Window bookkeeping (touched only at window close).
#[derive(Debug, Clone, Copy, Default)]
struct ObjWindow {
    window_start_total: u64,
    window_start_violations: u64,
    burn_rate: f64,
    burning: bool,
    windows_closed: u64,
}

/// One row of the SLO table exposed on the status surface.
#[derive(Debug, Clone, Copy)]
pub struct SloRow {
    /// The objective this row tracks.
    pub objective: LatencyObjective,
    /// Requests observed for the objective's outcome.
    pub total: u64,
    /// Requests over the latency threshold.
    pub violations: u64,
    /// Lifetime compliant fraction (1 when no requests observed).
    pub compliance: f64,
    /// Burn rate of the most recently closed window.
    pub burn_rate: f64,
    /// Whether the last closed window was at or above the alert burn.
    pub burning: bool,
    /// Tumbling windows closed so far.
    pub windows_closed: u64,
}

/// Per-outcome latency-SLO monitor. One instance lives in the server's
/// shared state; [`SloMonitor::record`] is called once per completed
/// request with its outcome and total latency.
pub struct SloMonitor {
    config: SloConfig,
    counters: Vec<ObjCounters>,
    windows: Mutex<Vec<ObjWindow>>,
}

impl SloMonitor {
    /// Creates a monitor for the configured objectives.
    pub fn new(config: SloConfig) -> Self {
        let n = config.objectives.len();
        SloMonitor {
            config,
            counters: (0..n)
                .map(|_| ObjCounters {
                    total: AtomicU64::new(0),
                    violations: AtomicU64::new(0),
                })
                .collect(),
            windows: Mutex::new(vec![ObjWindow::default(); n]),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Feeds one completed request. The fast path is two relaxed atomic
    /// adds; the window arithmetic only runs on the request that fills a
    /// window.
    pub fn record(&self, outcome: Outcome, latency_ns: u64) -> SloVerdict {
        if !self.config.enabled {
            return SloVerdict::Ok;
        }
        let window = self.config.window.max(1);
        for (index, objective) in self.config.objectives.iter().enumerate() {
            if objective.outcome != outcome {
                continue;
            }
            let counters = &self.counters[index];
            let violated = latency_ns as f64 / 1e6 > objective.threshold_ms;
            if violated {
                counters.violations.fetch_add(1, Ordering::Relaxed);
            }
            let total = counters.total.fetch_add(1, Ordering::Relaxed) + 1;
            if !total.is_multiple_of(window) {
                return SloVerdict::Ok;
            }
            // Window boundary: compute the burn of the window that just
            // closed from the counter deltas since the previous boundary.
            let violations = counters.violations.load(Ordering::Relaxed);
            let mut windows = self.lock_windows();
            let state = &mut windows[index];
            let window_total = total.saturating_sub(state.window_start_total);
            let window_violations = violations.saturating_sub(state.window_start_violations);
            state.window_start_total = total;
            state.window_start_violations = violations;
            state.windows_closed += 1;
            let budget = (1.0 - objective.target).max(1e-6);
            let violation_fraction = if window_total == 0 {
                0.0
            } else {
                window_violations as f64 / window_total as f64
            };
            state.burn_rate = violation_fraction / budget;
            let burning = state.burn_rate >= self.config.burn_alert;
            let crossed = if burning != state.burning {
                state.burning = burning;
                Some(burning)
            } else {
                None
            };
            return SloVerdict::WindowClosed {
                objective: index,
                burn_rate: state.burn_rate,
                crossed,
            };
        }
        SloVerdict::Ok
    }

    /// Snapshot of every objective, in configuration order.
    pub fn rows(&self) -> Vec<SloRow> {
        let windows = self.lock_windows();
        self.config
            .objectives
            .iter()
            .enumerate()
            .map(|(index, objective)| {
                let total = self.counters[index].total.load(Ordering::Relaxed);
                let violations = self.counters[index].violations.load(Ordering::Relaxed);
                let state = windows[index];
                SloRow {
                    objective: *objective,
                    total,
                    violations,
                    compliance: if total == 0 {
                        1.0
                    } else {
                        1.0 - violations as f64 / total as f64
                    },
                    burn_rate: state.burn_rate,
                    burning: state.burning,
                    windows_closed: state.windows_closed,
                }
            })
            .collect()
    }

    fn lock_windows(&self) -> std::sync::MutexGuard<'_, Vec<ObjWindow>> {
        self.windows.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(threshold_ms: f64, target: f64, window: u64, alert: f64) -> SloMonitor {
        SloMonitor::new(SloConfig {
            enabled: true,
            objectives: vec![LatencyObjective::new(Outcome::Hit, threshold_ms, target)],
            window,
            burn_alert: alert,
        })
    }

    #[test]
    fn compliant_traffic_never_burns() {
        let m = monitor(10.0, 0.99, 8, 2.0);
        for _ in 0..64 {
            let verdict = m.record(Outcome::Hit, 1_000_000); // 1 ms
            if let SloVerdict::WindowClosed {
                burn_rate, crossed, ..
            } = verdict
            {
                assert_eq!(burn_rate, 0.0);
                assert_eq!(crossed, None);
            }
        }
        let rows = m.rows();
        assert_eq!(rows[0].violations, 0);
        assert_eq!(rows[0].compliance, 1.0);
        assert!(!rows[0].burning);
        assert_eq!(rows[0].windows_closed, 8);
    }

    #[test]
    fn violation_storm_crosses_and_recovers() {
        // 1% budget, window 10: a fully-violating window burns at 100×.
        let m = monitor(10.0, 0.99, 10, 2.0);
        let mut crossings = Vec::new();
        for _ in 0..10 {
            if let SloVerdict::WindowClosed { crossed, .. } = m.record(Outcome::Hit, 50_000_000) {
                crossings.push(crossed);
            }
        }
        assert_eq!(crossings, vec![Some(true)]);
        assert!(m.rows()[0].burning);
        // A fully-compliant window recovers.
        let mut recovered = Vec::new();
        for _ in 0..10 {
            if let SloVerdict::WindowClosed { crossed, .. } = m.record(Outcome::Hit, 1_000_000) {
                recovered.push(crossed);
            }
        }
        assert_eq!(recovered, vec![Some(false)]);
        assert!(!m.rows()[0].burning);
        assert_eq!(m.rows()[0].violations, 10);
    }

    #[test]
    fn burn_rate_is_violation_fraction_over_budget() {
        // 5% budget, window 20, 2 violations → 10% violating → burn 2.0.
        let m = monitor(10.0, 0.95, 20, 100.0);
        let mut burn = None;
        for i in 0..20 {
            let ns = if i < 2 { 50_000_000 } else { 1_000_000 };
            if let SloVerdict::WindowClosed { burn_rate, .. } = m.record(Outcome::Hit, ns) {
                burn = Some(burn_rate);
            }
        }
        let burn = burn.expect("window closed");
        assert!((burn - 2.0).abs() < 1e-9, "{burn}");
    }

    #[test]
    fn outcomes_are_tracked_independently() {
        let m = SloMonitor::new(SloConfig {
            enabled: true,
            objectives: vec![
                LatencyObjective::new(Outcome::Hit, 10.0, 0.99),
                LatencyObjective::new(Outcome::Miss, 100.0, 0.99),
            ],
            window: 4,
            burn_alert: 2.0,
        });
        for _ in 0..8 {
            m.record(Outcome::Hit, 1_000_000);
            m.record(Outcome::Miss, 500_000_000); // 500 ms: violates
        }
        let rows = m.rows();
        assert_eq!(rows[0].violations, 0);
        assert_eq!(rows[1].violations, 8);
        assert!(!rows[0].burning);
        assert!(rows[1].burning);
    }

    #[test]
    fn disabled_monitor_is_inert() {
        let m = SloMonitor::new(SloConfig {
            enabled: false,
            ..SloConfig::default()
        });
        for _ in 0..200 {
            assert_eq!(m.record(Outcome::Hit, u64::MAX), SloVerdict::Ok);
        }
        assert_eq!(m.rows()[0].total, 0);
    }
}
