//! Per-tenant resource metering: who is burning the budget, exactly.
//!
//! GRANII's premise is that per-input inspection drives per-input cost —
//! which means two tenants issuing the same request *rate* can consume
//! wildly different engine time (SENSEi, arXiv:2306.15155). The
//! [`MeterTable`] attributes every engine charge, flop, and byte back to
//! the tenant fingerprint that caused it, alongside queue wait, batch
//! share, cache behavior, sheds, degradations, and SLO violations.
//!
//! The table is lock-free and sits on the worker hot path, so it borrows
//! the [`crate::fairness`] slot discipline: a fixed array of slots claimed
//! by fingerprint CAS, linear-probed from `fp % slots`, with one shared
//! overflow slot beyond the probe window. Every counter is a relaxed
//! `AtomicU64` — recording a request is a handful of uncontended adds and
//! never allocates, so the zero-alloc cache-hit contract survives with the
//! ledger always on.
//!
//! **Attribution is exact, not approximate.** A coalesced batch's charge is
//! converted to integer nanoseconds *once*; members receive `total / n`
//! with the remainder folded into the group leader ([`exact_share`]), and
//! the identical integers are added to both the tenant slot and the global
//! totals slot. Because `u64` addition is exact and order-free, the sum of
//! per-tenant charges equals the server-total charge *bitwise* — the
//! invariant `crates/serve/tests/metering.rs` proptests across batched,
//! serial, degraded, and shed paths.

use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed tenant-slot count (matches the fairness table: serving workloads
/// have a small signature working set).
const METER_SLOTS: usize = 64;

/// Linear-probe distance before falling back to the overflow slot.
const PROBE_LIMIT: usize = 8;

/// One tenant's accumulated meters. `fp == 0` means unclaimed.
#[derive(Default)]
struct MeterSlot {
    fp: AtomicU64,
    requests: AtomicU64,
    batched_requests: AtomicU64,
    charged_ns: AtomicU64,
    flops: AtomicU64,
    bytes: AtomicU64,
    queue_wait_ns: AtomicU64,
    batch_share_ppm: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    sheds: AtomicU64,
    degraded: AtomicU64,
    slo_violations: AtomicU64,
}

impl MeterSlot {
    fn row(&self, fingerprint: u64) -> MeterRow {
        MeterRow {
            fingerprint,
            requests: self.requests.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            charged_ns: self.charged_ns.load(Ordering::Relaxed),
            flops: self.flops.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            queue_wait_ns: self.queue_wait_ns.load(Ordering::Relaxed),
            batch_share_ppm: self.batch_share_ppm.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            slo_violations: self.slo_violations.load(Ordering::Relaxed),
        }
    }

    fn saw_traffic(&self) -> bool {
        self.requests.load(Ordering::Relaxed) > 0 || self.sheds.load(Ordering::Relaxed) > 0
    }
}

/// What one finished request cost its tenant (integer units so the ledger
/// identity holds bitwise — see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct MeterCharge {
    /// This member's exact share of the engine-charged nanoseconds.
    pub charged_ns: u64,
    /// This member's exact share of the attributed flops.
    pub flops: u64,
    /// This member's exact share of the attributed bytes (read + written).
    pub bytes: u64,
    /// Nanoseconds the request waited between admission and dequeue.
    pub queue_wait_ns: u64,
    /// Size of the coalesced group the request executed in (1 = serial).
    pub batch: u32,
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// Whether the degraded (default-composition) path served it.
    pub degraded: bool,
}

/// Point-in-time snapshot of one tenant's meters.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeterRow {
    /// The tenant's plan-signature fingerprint (`0` aggregates overflow
    /// tenants; in [`MeterTable::totals`] it is the server-wide sum).
    pub fingerprint: u64,
    /// Requests completed for this tenant.
    pub requests: u64,
    /// Completed requests that executed inside a coalesced batch (size>1).
    pub batched_requests: u64,
    /// Exact engine-charged nanoseconds attributed to this tenant.
    pub charged_ns: u64,
    /// Exact flops attributed to this tenant.
    pub flops: u64,
    /// Exact bytes attributed to this tenant.
    pub bytes: u64,
    /// Total nanoseconds this tenant's requests spent queued.
    pub queue_wait_ns: u64,
    /// Accumulated `1e6 / batch` per request; divide by `requests` for the
    /// mean fraction of an execute this tenant's requests occupied.
    pub batch_share_ppm: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses (selection + bind paid).
    pub cache_misses: u64,
    /// Requests shed before execution (queue full, tenant cap, ring race).
    pub sheds: u64,
    /// Requests served by the degraded path.
    pub degraded: u64,
    /// Completed requests that violated their SLO objective's threshold.
    pub slo_violations: u64,
}

impl MeterRow {
    /// Charged time in seconds.
    pub fn charged_seconds(&self) -> f64 {
        self.charged_ns as f64 / 1e9
    }

    /// Mean fraction of an execute occupied per request (1.0 = always
    /// serial, 0.125 = always riding 8-wide batches).
    pub fn mean_batch_share(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.batch_share_ppm as f64 / 1e6 / self.requests as f64
        }
    }

    /// Mean queue wait in milliseconds per completed request.
    pub fn mean_queue_wait_ms(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.queue_wait_ns as f64 / 1e6 / self.requests as f64
        }
    }

    /// Cache hit rate over completed requests.
    pub fn hit_rate(&self) -> f64 {
        let looked = self.cache_hits + self.cache_misses;
        if looked == 0 {
            0.0
        } else {
            self.cache_hits as f64 / looked as f64
        }
    }
}

/// Splits a group total exactly across `n` members: every member receives
/// `total / n` and member 0 (the group leader) absorbs the remainder, so
/// the shares always sum to `total` bitwise.
pub fn exact_share(total: u64, n: usize, member: usize) -> u64 {
    let n = n.max(1) as u64;
    let base = total / n;
    if member == 0 {
        base + total % n
    } else {
        base
    }
}

/// Lock-free per-tenant metering ledger (see module docs).
pub struct MeterTable {
    slots: Box<[MeterSlot]>,
    overflow: MeterSlot,
    /// Server-wide sums, fed the identical integers as the tenant slots.
    totals: MeterSlot,
}

impl Default for MeterTable {
    fn default() -> Self {
        Self::new()
    }
}

impl MeterTable {
    /// Builds an empty ledger.
    pub fn new() -> Self {
        MeterTable {
            slots: (0..METER_SLOTS).map(|_| MeterSlot::default()).collect(),
            overflow: MeterSlot::default(),
            totals: MeterSlot::default(),
        }
    }

    /// Finds (or CAS-claims) the slot for `fp`; overflow beyond the probe
    /// window. Identical discipline to [`crate::fairness::TenantTable`].
    fn slot(&self, fp: u64) -> &MeterSlot {
        if fp == 0 {
            return &self.overflow;
        }
        let n = self.slots.len();
        let start = (fp % n as u64) as usize;
        for probe in 0..PROBE_LIMIT {
            let slot = &self.slots[(start + probe) % n];
            match slot.fp.load(Ordering::Acquire) {
                cur if cur == fp => return slot,
                0 => match slot
                    .fp
                    .compare_exchange(0, fp, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => return slot,
                    Err(winner) if winner == fp => return slot,
                    Err(_) => {} // someone else's tenant; keep probing
                },
                _ => {}
            }
        }
        &self.overflow
    }

    /// Meters one completed request for tenant `fp`. The same integers land
    /// in the tenant slot and the totals slot, so the ledger identity
    /// (sum of tenants == totals, bitwise) holds by construction.
    pub fn record(&self, fp: u64, charge: &MeterCharge) {
        let batch = charge.batch.max(1);
        let share_ppm = 1_000_000 / u64::from(batch);
        for slot in [self.slot(fp), &self.totals] {
            slot.requests.fetch_add(1, Ordering::Relaxed);
            if batch > 1 {
                slot.batched_requests.fetch_add(1, Ordering::Relaxed);
            }
            slot.charged_ns
                .fetch_add(charge.charged_ns, Ordering::Relaxed);
            slot.flops.fetch_add(charge.flops, Ordering::Relaxed);
            slot.bytes.fetch_add(charge.bytes, Ordering::Relaxed);
            slot.queue_wait_ns
                .fetch_add(charge.queue_wait_ns, Ordering::Relaxed);
            slot.batch_share_ppm.fetch_add(share_ppm, Ordering::Relaxed);
            if charge.cache_hit {
                slot.cache_hits.fetch_add(1, Ordering::Relaxed);
            } else {
                slot.cache_misses.fetch_add(1, Ordering::Relaxed);
            }
            if charge.degraded {
                slot.degraded.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Meters one shed for tenant `fp` (the request never executed).
    pub fn note_shed(&self, fp: u64) {
        self.slot(fp).sheds.fetch_add(1, Ordering::Relaxed);
        self.totals.sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Meters one SLO-threshold violation for tenant `fp`.
    pub fn note_slo_violation(&self, fp: u64) {
        self.slot(fp).slo_violations.fetch_add(1, Ordering::Relaxed);
        self.totals.slo_violations.fetch_add(1, Ordering::Relaxed);
    }

    /// The server-wide sums (fingerprint reads 0).
    pub fn totals(&self) -> MeterRow {
        self.totals.row(0)
    }

    /// Visits every tenant that saw traffic (claimed slots, then the
    /// overflow aggregate) without allocating — [`MeterRow`] is `Copy`.
    /// Built for the sampler thread's per-tenant timeline columns.
    pub fn for_each(&self, mut f: impl FnMut(MeterRow)) {
        for slot in self.slots.iter() {
            let fp = slot.fp.load(Ordering::Acquire);
            if fp != 0 {
                f(slot.row(fp));
            }
        }
        if self.overflow.saw_traffic() {
            f(self.overflow.row(0));
        }
    }

    /// Snapshot of every tenant that saw traffic, ranked by charged time
    /// descending (the "top tenants" order), fingerprint ascending on ties.
    pub fn rows(&self) -> Vec<MeterRow> {
        let mut rows = Vec::new();
        self.for_each(|row| rows.push(row));
        rows.sort_by(|a, b| {
            b.charged_ns
                .cmp(&a.charged_ns)
                .then(a.fingerprint.cmp(&b.fingerprint))
        });
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_share_sums_to_total_for_awkward_divisions() {
        for (total, n) in [
            (0u64, 1),
            (1, 3),
            (7, 3),
            (1_000_000_007, 8),
            (u64::MAX, 17),
        ] {
            let sum: u64 = (0..n)
                .map(|m| exact_share(total, n, m))
                .fold(0u64, |acc, s| acc.wrapping_add(s));
            assert_eq!(sum, total, "total {total} over {n} members");
            // The leader absorbs the remainder; everyone else is equal.
            for m in 1..n {
                assert_eq!(exact_share(total, n, m), total / n as u64);
            }
        }
    }

    #[test]
    fn tenant_sums_equal_totals_bitwise() {
        let table = MeterTable::new();
        // Three tenants, mixed batched/serial/degraded traffic with awkward
        // charge figures that would lose bits through f64 averaging.
        let mut expected_charged = 0u64;
        for (i, fp) in [0xaaaa_u64, 0xbbbb, 0xcccc].into_iter().enumerate() {
            for r in 0..5u64 {
                let total = 1_000_000_007 * (i as u64 + 1) + r;
                let n = [1usize, 3, 8][(r as usize) % 3];
                for member in 0..n {
                    let charge = MeterCharge {
                        charged_ns: exact_share(total, n, member),
                        flops: exact_share(total * 3, n, member),
                        bytes: exact_share(total * 5, n, member),
                        queue_wait_ns: r * 17,
                        batch: n as u32,
                        cache_hit: member % 2 == 0,
                        degraded: r == 4,
                    };
                    table.record(fp, &charge);
                }
                expected_charged += total;
            }
        }
        table.note_shed(0xaaaa);
        table.note_slo_violation(0xbbbb);

        let rows = table.rows();
        let totals = table.totals();
        assert_eq!(totals.charged_ns, expected_charged, "no charge lost");
        for (sum, total) in [
            (
                rows.iter().map(|r| r.requests).sum::<u64>(),
                totals.requests,
            ),
            (rows.iter().map(|r| r.charged_ns).sum(), totals.charged_ns),
            (rows.iter().map(|r| r.flops).sum(), totals.flops),
            (rows.iter().map(|r| r.bytes).sum(), totals.bytes),
            (
                rows.iter().map(|r| r.queue_wait_ns).sum(),
                totals.queue_wait_ns,
            ),
            (
                rows.iter().map(|r| r.batch_share_ppm).sum(),
                totals.batch_share_ppm,
            ),
            (rows.iter().map(|r| r.cache_hits).sum(), totals.cache_hits),
            (
                rows.iter().map(|r| r.cache_misses).sum(),
                totals.cache_misses,
            ),
            (rows.iter().map(|r| r.sheds).sum(), totals.sheds),
            (rows.iter().map(|r| r.degraded).sum(), totals.degraded),
            (
                rows.iter().map(|r| r.slo_violations).sum(),
                totals.slo_violations,
            ),
        ] {
            assert_eq!(sum, total, "per-tenant sums equal server totals bitwise");
        }
    }

    #[test]
    fn rows_rank_by_charged_time_descending() {
        let table = MeterTable::new();
        for (fp, charged) in [(1u64, 10u64), (2, 30), (3, 20)] {
            table.record(
                fp,
                &MeterCharge {
                    charged_ns: charged,
                    batch: 1,
                    ..MeterCharge::default()
                },
            );
        }
        let order: Vec<u64> = table.rows().iter().map(|r| r.fingerprint).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn overflow_tenants_aggregate_and_stay_counted() {
        let table = MeterTable::new();
        for fp in 1..=500u64 {
            table.record(
                fp,
                &MeterCharge {
                    charged_ns: 7,
                    batch: 1,
                    ..MeterCharge::default()
                },
            );
        }
        let rows = table.rows();
        assert!(
            rows.len() <= METER_SLOTS + 1,
            "bounded rows: {}",
            rows.len()
        );
        assert_eq!(
            rows.iter().map(|r| r.requests).sum::<u64>(),
            500,
            "overflow keeps every request counted"
        );
        assert_eq!(table.totals().charged_ns, 500 * 7);
    }

    #[test]
    fn concurrent_recording_preserves_the_ledger_identity() {
        let table = MeterTable::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let table = &table;
                s.spawn(move || {
                    for i in 0..250u64 {
                        table.record(
                            0x1000 + (i % 5),
                            &MeterCharge {
                                charged_ns: t * 1_000 + i,
                                flops: i * 3,
                                bytes: i * 5,
                                queue_wait_ns: i,
                                batch: ((i % 4) + 1) as u32,
                                cache_hit: i % 2 == 0,
                                degraded: i % 7 == 0,
                            },
                        );
                    }
                });
            }
        });
        let rows = table.rows();
        let totals = table.totals();
        assert_eq!(totals.requests, 1000);
        assert_eq!(
            rows.iter().map(|r| r.charged_ns).sum::<u64>(),
            totals.charged_ns
        );
        assert_eq!(rows.iter().map(|r| r.flops).sum::<u64>(), totals.flops);
        assert_eq!(rows.iter().map(|r| r.bytes).sum::<u64>(), totals.bytes);
    }
}
