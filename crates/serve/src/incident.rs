//! Automatic incident capture: when a detector fires, photograph the
//! moments around it before the evidence scrolls away.
//!
//! The serving runtime already *detects* trouble — cost-model drift, input
//! drift, SLO burn, shed storms — but detection alone leaves the operator
//! with a counter and no context. The incident capturer turns a trigger
//! into a correlated **bundle**: the flight-recorder ring around the
//! anomaly ([`crate::recorder`]), the full [`ServerStatus`], merged
//! latency/batch sketch quantiles, a non-destructive snapshot of recent
//! structured events, and — the paper's own question — the triggering
//! signature's **selection audit**: which composition was chosen, what
//! every candidate's predicted cost was, and the input statistics that
//! keyed the choice. One JSON artifact answers "which input statistics
//! drove the primitive selection that misbehaved".
//!
//! Capture is rate-limited (cooldown + max-per-window) so a burn storm
//! cannot flood the disk: triggers beyond the limit are counted as
//! suppressed, and the always-on ring means the *next* admitted capture
//! still carries the history. The audit table is deliberately separate
//! from the plan cache — a drift flag invalidates the cache entry *before*
//! capture runs, so the audit must survive its plan.

use std::collections::VecDeque;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::cache::PlanKey;
use crate::inspect::InputProfile;
use crate::recorder::{FlightRecord, RecordKind};
use crate::status::ServerStatus;

/// Bounded size of the selection-audit table (signatures). Oldest entries
/// evict first; 256 signatures of a few hundred bytes is noise next to the
/// bound plans themselves.
pub const AUDIT_CAPACITY: usize = 256;

/// Incident-capture tuning.
#[derive(Debug, Clone)]
pub struct IncidentConfig {
    /// Master switch; when false no trigger captures anything.
    pub enabled: bool,
    /// Directory bundles are written to (`incident-NNN-<kind>.json`).
    /// `None` keeps bundles in memory only ([`IncidentCapturer::recent`]).
    pub dir: Option<PathBuf>,
    /// Minimum gap between two captures.
    pub cooldown: Duration,
    /// Maximum captures per [`IncidentConfig::window`].
    pub max_per_window: u32,
    /// The tumbling rate-limit window.
    pub window: Duration,
    /// Sheds within [`IncidentConfig::shed_window`] that count as a shed
    /// storm (0 disables the shed trigger).
    pub shed_threshold: u64,
    /// The shed-storm counting window.
    pub shed_window: Duration,
    /// Newest flight-recorder records included in a bundle.
    pub ring_tail: usize,
    /// Newest telemetry events included in a bundle.
    pub event_tail: usize,
    /// Bundles retained in memory (newest-last).
    pub keep_last: usize,
}

impl Default for IncidentConfig {
    fn default() -> Self {
        IncidentConfig {
            enabled: true,
            dir: None,
            cooldown: Duration::from_secs(2),
            max_per_window: 4,
            window: Duration::from_secs(60),
            shed_threshold: 64,
            shed_window: Duration::from_secs(1),
            ring_tail: 256,
            event_tail: 64,
            keep_last: 8,
        }
    }
}

/// What fired. Carries whatever the trigger site knows, including the plan
/// signature when the trigger is signature-scoped.
#[derive(Debug, Clone)]
pub enum IncidentTrigger {
    /// An SLO window closed at or above the alert burn rate.
    SloBurn {
        /// Outcome class of the burning objective.
        outcome: &'static str,
        /// The closed window's burn rate.
        burn_rate: f64,
        /// The objective's latency threshold in milliseconds.
        threshold_ms: f64,
        /// Plan signature of the request that closed the window.
        key: PlanKey,
    },
    /// The cost-model drift lane flagged a signature.
    Drift {
        /// The flagged signature.
        key: PlanKey,
        /// Smoothed residual at flag time.
        ewma_residual: f64,
    },
    /// The input-drift lane flagged a signature.
    InputDrift {
        /// The flagged signature.
        key: PlanKey,
        /// Degree-band L1 distance at flag time.
        band_l1: f64,
        /// Absolute degree-CV delta at flag time.
        cv_delta: f64,
    },
    /// Sheds crossed the configured rate threshold.
    ShedStorm {
        /// Sheds counted inside the window.
        sheds: u64,
        /// The counting window in seconds.
        window_seconds: f64,
    },
}

impl IncidentTrigger {
    /// Stable snake_case trigger kind.
    pub fn kind(&self) -> &'static str {
        match self {
            IncidentTrigger::SloBurn { .. } => "slo_burn",
            IncidentTrigger::Drift { .. } => "drift",
            IncidentTrigger::InputDrift { .. } => "input_drift",
            IncidentTrigger::ShedStorm { .. } => "shed_storm",
        }
    }

    /// The plan signature the trigger is about, when it is about one.
    pub fn key(&self) -> Option<PlanKey> {
        match self {
            IncidentTrigger::SloBurn { key, .. }
            | IncidentTrigger::Drift { key, .. }
            | IncidentTrigger::InputDrift { key, .. } => Some(*key),
            IncidentTrigger::ShedStorm { .. } => None,
        }
    }

    pub(crate) fn info(&self) -> TriggerInfo {
        let (model, fingerprint, k1, k2) = match self.key() {
            Some((model, fp, k1, k2)) => (model.name().to_owned(), hex(fp), k1 as u64, k2 as u64),
            None => (String::new(), String::new(), 0, 0),
        };
        let (value, detail) = match self {
            IncidentTrigger::SloBurn {
                outcome,
                burn_rate,
                threshold_ms,
                ..
            } => (
                *burn_rate,
                format!("{outcome} objective burned {burn_rate:.2}x over {threshold_ms:.1}ms"),
            ),
            IncidentTrigger::Drift { ewma_residual, .. } => (
                *ewma_residual,
                format!("cost-model residual ewma {ewma_residual:.3} (ln-space)"),
            ),
            IncidentTrigger::InputDrift {
                band_l1, cv_delta, ..
            } => (
                *band_l1,
                format!("input drift: band_l1 {band_l1:.3}, cv_delta {cv_delta:.3}"),
            ),
            IncidentTrigger::ShedStorm {
                sheds,
                window_seconds,
            } => (
                *sheds as f64,
                format!("{sheds} sheds within {window_seconds:.1}s"),
            ),
        };
        TriggerInfo {
            kind: self.kind().to_owned(),
            model,
            fingerprint,
            k1,
            k2,
            value,
            detail,
        }
    }
}

/// The selection decision behind one signature's cached plan, captured at
/// bind time (the only moment the per-candidate costs exist).
#[derive(Debug, Clone)]
pub struct SelectionAudit {
    /// Chosen composition name.
    pub composition: String,
    /// Whether the degraded (default-composition) path chose it.
    pub degraded: bool,
    /// Every candidate's predicted steady-state seconds, selection order.
    pub predicted: Vec<(String, f64)>,
    /// The input statistics selection keyed on (absent when the inspector
    /// is disabled).
    pub profile: Option<InputProfile>,
    /// Microseconds since the trace epoch when the plan was bound.
    pub captured_at_us: u64,
}

/// Bounded per-signature table of [`SelectionAudit`]s, FIFO-evicted.
/// Separate from the plan cache on purpose: invalidation precedes capture.
#[derive(Default)]
pub struct AuditTable {
    entries: Mutex<VecDeque<(PlanKey, SelectionAudit)>>,
}

impl AuditTable {
    /// Records (or replaces) `key`'s audit; evicts oldest beyond
    /// [`AUDIT_CAPACITY`].
    pub fn record(&self, key: PlanKey, audit: SelectionAudit) {
        let mut entries = self.lock();
        entries.retain(|(k, _)| *k != key);
        if entries.len() >= AUDIT_CAPACITY {
            entries.pop_front();
        }
        entries.push_back((key, audit));
    }

    /// The most recent audit for `key`, if still retained.
    pub fn get(&self, key: PlanKey) -> Option<SelectionAudit> {
        self.lock()
            .iter()
            .rev()
            .find(|(k, _)| *k == key)
            .map(|(_, a)| a.clone())
    }

    /// Audits currently retained.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<(PlanKey, SelectionAudit)>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

fn hex(fingerprint: u64) -> String {
    crate::status::hex_fp(fingerprint)
}

// ---------------------------------------------------------------------------
// Bundle schema (all fields JSON-plain; fingerprints are 16-hex strings —
// the JSON layer is f64-backed and would mangle u64s above 2^53).
// ---------------------------------------------------------------------------

/// The trigger, flattened for the artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TriggerInfo {
    /// `slo_burn` / `drift` / `input_drift` / `shed_storm`.
    pub kind: String,
    /// Model family of the triggering signature (`""` when none).
    pub model: String,
    /// Triggering signature as 16-hex (`""` when none).
    pub fingerprint: String,
    /// Input embedding width of the triggering signature (0 when none).
    pub k1: u64,
    /// Output embedding width of the triggering signature (0 when none).
    pub k2: u64,
    /// Headline number (burn rate, band L1, residual, shed count).
    pub value: f64,
    /// One-line human summary.
    pub detail: String,
}

/// One flight-recorder record, flattened for the artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RingEntry {
    /// Global monotone record index.
    pub seq: u64,
    /// Microseconds since the trace epoch.
    pub ts_us: u64,
    /// Record kind (snake_case, see [`RecordKind::name`]).
    pub kind: String,
    /// Request id (0 when not request-scoped).
    pub id: u64,
    /// Model family (`""` when not signature-scoped).
    pub model: String,
    /// Signature as 16-hex (`""` when not signature-scoped).
    pub fingerprint: String,
    /// Batch-group size (batch_formed / complete records, else 0).
    pub batch: u64,
    /// Member request ids (batch_formed records, else empty; truncated at
    /// [`crate::recorder::MAX_BATCH_MEMBERS`]).
    pub members: Vec<u64>,
    /// Kind-specific payload, human-readable.
    pub note: String,
}

impl RingEntry {
    /// Flattens one recorder record.
    pub fn from_record(r: &FlightRecord) -> Self {
        let (batch, members, note) = match r.kind {
            RecordKind::Enqueue { depth } => (0, Vec::new(), format!("depth={depth}")),
            RecordKind::Shed { depth, reason } => {
                (0, Vec::new(), format!("depth={depth} reason={reason}"))
            }
            RecordKind::BatchFormed {
                size,
                tracked,
                members,
            } => (
                u64::from(size),
                members[..tracked as usize].to_vec(),
                format!("size={size}"),
            ),
            RecordKind::CacheHit { shared } => (0, Vec::new(), format!("shared={shared}")),
            RecordKind::CacheMiss {
                select_us,
                degraded,
            } => (
                0,
                Vec::new(),
                format!("select_us={select_us} degraded={degraded}"),
            ),
            RecordKind::CacheInvalidate { cause } => (0, Vec::new(), format!("cause={cause}")),
            RecordKind::DriftFlag { ewma_residual } => {
                (0, Vec::new(), format!("ewma_residual={ewma_residual:.4}"))
            }
            RecordKind::InputDriftFlag {
                band_l1,
                cv_delta,
                live_cv,
                reference_cv,
                live_avg_degree,
            } => (
                0,
                Vec::new(),
                format!(
                    "band_l1={band_l1:.4} cv_delta={cv_delta:.4} live_cv={live_cv:.4} \
                     reference_cv={reference_cv:.4} live_avg_degree={live_avg_degree:.3}"
                ),
            ),
            RecordKind::SloBurn {
                outcome,
                burn_rate,
                threshold_ms,
            } => (
                0,
                Vec::new(),
                format!("outcome={outcome} burn_rate={burn_rate:.2} threshold_ms={threshold_ms}"),
            ),
            RecordKind::SloRecover { outcome, burn_rate } => (
                0,
                Vec::new(),
                format!("outcome={outcome} burn_rate={burn_rate:.2}"),
            ),
            RecordKind::DeadlineExpired => (0, Vec::new(), String::new()),
            RecordKind::Complete {
                outcome,
                latency_us,
                batch,
                degraded,
            } => (
                u64::from(batch),
                Vec::new(),
                format!("outcome={outcome} latency_us={latency_us} degraded={degraded}"),
            ),
            RecordKind::Failed => (0, Vec::new(), String::new()),
            RecordKind::ModelSwap => (0, Vec::new(), String::new()),
        };
        RingEntry {
            seq: r.seq,
            ts_us: r.ts_us,
            kind: r.kind.name().to_owned(),
            id: r.id,
            model: r.model.to_owned(),
            fingerprint: if r.fingerprint == 0 {
                String::new()
            } else {
                hex(r.fingerprint)
            },
            batch,
            members,
            note,
        }
    }
}

/// One candidate composition and its predicted cost.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateCost {
    /// Composition name.
    pub composition: String,
    /// Predicted steady-state seconds per iteration.
    pub predicted_seconds: f64,
}

/// The input statistics selection keyed on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InputStats {
    /// Degree-band fractions `[empty, low, mid, high, hub]`.
    pub bands: Vec<f64>,
    /// Average out-degree.
    pub avg_degree: f64,
    /// Degree coefficient of variation.
    pub degree_cv: f64,
    /// Adjacency density.
    pub density: f64,
}

/// The triggering signature's selection audit, flattened for the artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectionAuditInfo {
    /// Model family.
    pub model: String,
    /// Signature as 16-hex.
    pub fingerprint: String,
    /// Input embedding width.
    pub k1: u64,
    /// Output embedding width.
    pub k2: u64,
    /// Chosen composition.
    pub composition: String,
    /// Whether the degraded path chose it.
    pub degraded: bool,
    /// Per-candidate predicted costs, selection order.
    pub predicted: Vec<CandidateCost>,
    /// The input statistics behind the choice (absent when the inspector
    /// was disabled at bind time).
    pub input: Option<InputStats>,
    /// Microseconds since the trace epoch when the plan was bound.
    pub captured_at_us: u64,
}

impl SelectionAuditInfo {
    /// Flattens a stored audit for `key`.
    pub fn from_audit(key: PlanKey, audit: &SelectionAudit) -> Self {
        SelectionAuditInfo {
            model: key.0.name().to_owned(),
            fingerprint: hex(key.1),
            k1: key.2 as u64,
            k2: key.3 as u64,
            composition: audit.composition.clone(),
            degraded: audit.degraded,
            predicted: audit
                .predicted
                .iter()
                .map(|(name, seconds)| CandidateCost {
                    composition: name.clone(),
                    predicted_seconds: *seconds,
                })
                .collect(),
            input: audit.profile.map(|p| InputStats {
                bands: p.bands.to_vec(),
                avg_degree: p.avg_degree,
                degree_cv: p.degree_cv,
                density: p.density,
            }),
            captured_at_us: audit.captured_at_us,
        }
    }
}

/// Merged sketch quantiles (milliseconds for latency, raw for batch size).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SketchSummary {
    /// Sketch name.
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Mean in nanoseconds (latency) or raw units (batch size).
    pub mean_ns: f64,
    /// Median.
    pub p50_ns: f64,
    /// 95th percentile.
    pub p95_ns: f64,
    /// 99th percentile.
    pub p99_ns: f64,
    /// 99.9th percentile.
    pub p999_ns: f64,
}

impl SketchSummary {
    /// Summarizes one sketch snapshot.
    pub fn from_snapshot(s: &granii_telemetry::SketchSnapshot) -> Self {
        SketchSummary {
            name: s.name.clone(),
            count: s.count,
            mean_ns: s.mean_ns(),
            p50_ns: s.p50_ns(),
            p95_ns: s.p95_ns(),
            p99_ns: s.p99_ns(),
            p999_ns: s.p999_ns(),
        }
    }
}

/// Flight-recorder health at capture time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecorderInfo {
    /// Ring capacity in records.
    pub capacity: u64,
    /// Records ever claimed.
    pub written: u64,
    /// Records dropped on slot collision.
    pub dropped: u64,
}

/// One column of the on-host time-series ring, flattened for the artifact.
/// `null` entries mark frames captured before the column first existed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineColumnInfo {
    /// Column name (e.g. `serve.completed`, `tenant.<fp>.charged_ms`).
    pub name: String,
    /// `counter` or `gauge`.
    pub kind: String,
    /// One value per retained frame, oldest-first.
    pub values: Vec<Option<f64>>,
}

/// The tail of the on-host time-series ring at capture: the last minutes
/// of sampled counters/gauges leading up to the incident, so the artifact
/// answers "what was trending before this fired" without an external TSDB.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineInfo {
    /// Frame timestamps, nanoseconds since the trace epoch, oldest-first.
    pub at_ns: Vec<u64>,
    /// Sampled columns, in registration order.
    pub columns: Vec<TimelineColumnInfo>,
}

impl TimelineInfo {
    /// Flattens a ring snapshot (NaN backfill becomes `null`).
    pub fn from_snapshot(snap: &granii_telemetry::TimeSeriesSnapshot) -> Self {
        TimelineInfo {
            at_ns: snap.at_ns.clone(),
            columns: snap
                .columns
                .iter()
                .map(|c| TimelineColumnInfo {
                    name: c.name.clone(),
                    kind: c.kind.name().to_owned(),
                    values: c
                        .values
                        .iter()
                        .map(|v| if v.is_finite() { Some(*v) } else { None })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Number of retained frames.
    pub fn frames(&self) -> usize {
        self.at_ns.len()
    }
}

/// One correlated incident artifact. Serializes to a single JSON object;
/// `granii incident-show` renders it as a human-readable timeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncidentBundle {
    /// Incident number within this server (1-based).
    pub seq: u64,
    /// Microseconds since the trace epoch at capture.
    pub captured_at_us: u64,
    /// What fired.
    pub trigger: TriggerInfo,
    /// Flight-recorder health at capture.
    pub recorder: RecorderInfo,
    /// The ring excerpt, oldest-first (bounded by `ring_tail`).
    pub ring: Vec<RingEntry>,
    /// The triggering signature's selection audit, when one is retained.
    pub selection: Option<SelectionAuditInfo>,
    /// Merged latency sketch + batch-size sketch quantiles.
    pub sketches: Vec<SketchSummary>,
    /// Recent structured telemetry events, oldest-first, rendered as
    /// `name key=value ...` lines (empty when telemetry is disabled).
    pub events: Vec<String>,
    /// Telemetry events dropped by the bounded sink so far.
    pub events_dropped: u64,
    /// The time-series ring tail at capture (`None` in bundles captured
    /// before the timeline existed, or when the sampler is disabled).
    pub timeline: Option<TimelineInfo>,
    /// The full live status snapshot.
    pub status: ServerStatus,
}

impl IncidentBundle {
    /// Serializes to JSON. Infallible for this struct: every field is a
    /// number, string, bool, or list/object of such.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("IncidentBundle serializes")
    }

    /// Parses a bundle previously produced by [`IncidentBundle::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the underlying parse/shape error message.
    pub fn from_json(json: &str) -> std::result::Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

impl fmt::Display for IncidentBundle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "incident #{} · trigger {} · captured at {:.3}s",
            self.seq,
            self.trigger.kind,
            self.captured_at_us as f64 / 1e6
        )?;
        writeln!(f, "  detail    {}", self.trigger.detail)?;
        writeln!(
            f,
            "  signature {}",
            if self.trigger.fingerprint.is_empty() {
                "-".to_owned()
            } else {
                format!(
                    "{} {} {}x{}",
                    self.trigger.model, self.trigger.fingerprint, self.trigger.k1, self.trigger.k2
                )
            }
        )?;
        writeln!(
            f,
            "  recorder  {} written | {} dropped | ring capacity {}",
            self.recorder.written, self.recorder.dropped, self.recorder.capacity
        )?;
        if let Some(sel) = &self.selection {
            writeln!(
                f,
                "  selection {} chose {}{}",
                sel.fingerprint,
                sel.composition,
                if sel.degraded { " (degraded)" } else { "" }
            )?;
            if let Some(input) = &sel.input {
                writeln!(
                    f,
                    "    input   bands {:?} | avg_degree {:.3} | degree_cv {:.3} | density {:.6}",
                    input
                        .bands
                        .iter()
                        .map(|b| (b * 1000.0).round() / 1000.0)
                        .collect::<Vec<_>>(),
                    input.avg_degree,
                    input.degree_cv,
                    input.density
                )?;
            }
            for c in &sel.predicted {
                writeln!(
                    f,
                    "    cost    {:<28} {:>12.9}s{}",
                    c.composition,
                    c.predicted_seconds,
                    if c.composition == sel.composition {
                        "  <- chosen"
                    } else {
                        ""
                    }
                )?;
            }
        }
        for s in &self.sketches {
            writeln!(
                f,
                "  sketch    {:<20} n={:<8} p50 {:.0} p95 {:.0} p99 {:.0} p999 {:.0}",
                s.name, s.count, s.p50_ns, s.p95_ns, s.p99_ns, s.p999_ns
            )?;
        }
        if let Some(timeline) = &self.timeline {
            writeln!(
                f,
                "  timeline  {} frames x {} columns",
                timeline.frames(),
                timeline.columns.len()
            )?;
        }
        writeln!(
            f,
            "  ring      {} records ({} telemetry events attached, {} dropped)",
            self.ring.len(),
            self.events.len(),
            self.events_dropped
        )?;
        let t0 = self.ring.first().map(|r| r.ts_us).unwrap_or(0);
        for r in &self.ring {
            let rel_ms = r.ts_us.saturating_sub(t0) as f64 / 1e3;
            write!(f, "    +{rel_ms:>9.3}ms  #{:<6} {:<17}", r.seq, r.kind)?;
            if r.id != 0 || r.kind == "enqueue" || r.kind == "complete" {
                write!(f, " id={}", r.id)?;
            }
            if !r.fingerprint.is_empty() {
                write!(f, " sig={}", r.fingerprint)?;
            }
            if !r.members.is_empty() {
                write!(f, " members={:?}", r.members)?;
            }
            if !r.note.is_empty() {
                write!(f, " {}", r.note)?;
            }
            writeln!(f)?;
        }
        writeln!(f, "  status    (at capture)")?;
        write!(f, "{}", self.status)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The capturer: rate limiting, shed-storm counting, bundle retention.
// ---------------------------------------------------------------------------

struct CaptureState {
    last_capture: Option<Instant>,
    window_start: Option<Instant>,
    in_window: u32,
    shed_window_start: Option<Instant>,
    shed_in_window: u64,
    recent: VecDeque<IncidentBundle>,
    last_trigger: String,
}

/// Owns incident policy and retention. The server builds bundles (it owns
/// the state a bundle correlates); the capturer decides *whether* (rate
/// limits, shed-storm counting) and *where* (memory + optional directory).
pub struct IncidentCapturer {
    config: IncidentConfig,
    audits: AuditTable,
    state: Mutex<CaptureState>,
    captured: AtomicU64,
    suppressed: AtomicU64,
}

impl IncidentCapturer {
    /// Creates a capturer with the given policy.
    pub fn new(config: IncidentConfig) -> Self {
        IncidentCapturer {
            config,
            audits: AuditTable::default(),
            state: Mutex::new(CaptureState {
                last_capture: None,
                window_start: None,
                in_window: 0,
                shed_window_start: None,
                shed_in_window: 0,
                recent: VecDeque::new(),
                last_trigger: String::new(),
            }),
            captured: AtomicU64::new(0),
            suppressed: AtomicU64::new(0),
        }
    }

    /// The active policy.
    pub fn config(&self) -> &IncidentConfig {
        &self.config
    }

    /// The selection-audit table.
    pub fn audits(&self) -> &AuditTable {
        &self.audits
    }

    /// Rate-limit gate: whether a capture may proceed *now*. A `true`
    /// consumes budget (cooldown restarts, window count increments); a
    /// `false` bumps the suppressed counter.
    pub fn admit(&self) -> bool {
        self.admit_at(Instant::now())
    }

    fn admit_at(&self, now: Instant) -> bool {
        if !self.config.enabled {
            return false;
        }
        let mut state = self.lock();
        if let Some(last) = state.last_capture {
            if now.duration_since(last) < self.config.cooldown {
                drop(state);
                self.suppressed.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
        let window_expired = state
            .window_start
            .is_none_or(|start| now.duration_since(start) >= self.config.window);
        if window_expired {
            state.window_start = Some(now);
            state.in_window = 0;
        }
        if state.in_window >= self.config.max_per_window {
            drop(state);
            self.suppressed.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        state.in_window += 1;
        state.last_capture = Some(now);
        true
    }

    /// Counts one shed; `Some(count)` when the count just crossed the
    /// shed-storm threshold (the caller should fire a
    /// [`IncidentTrigger::ShedStorm`]). The window re-arms after a trigger.
    pub fn note_shed(&self) -> Option<u64> {
        if !self.config.enabled || self.config.shed_threshold == 0 {
            return None;
        }
        let now = Instant::now();
        let mut state = self.lock();
        let expired = state
            .shed_window_start
            .is_none_or(|start| now.duration_since(start) >= self.config.shed_window);
        if expired {
            state.shed_window_start = Some(now);
            state.shed_in_window = 0;
        }
        state.shed_in_window += 1;
        if state.shed_in_window == self.config.shed_threshold {
            let count = state.shed_in_window;
            // Re-arm: a sustained storm fires again only after another
            // threshold's worth of sheds (the capture cooldown gates disk).
            state.shed_window_start = Some(now);
            state.shed_in_window = 0;
            Some(count)
        } else {
            None
        }
    }

    /// Retains a captured bundle (memory, and disk when `dir` is set).
    pub fn store(&self, bundle: IncidentBundle) {
        if let Some(dir) = &self.config.dir {
            let path = dir.join(format!(
                "incident-{:03}-{}.json",
                bundle.seq, bundle.trigger.kind
            ));
            let write =
                std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, bundle.to_json()));
            if write.is_err() {
                granii_telemetry::counter_add("serve.incident.io_error", 1);
            }
        }
        let mut state = self.lock();
        state.last_trigger = bundle.trigger.kind.clone();
        state.recent.push_back(bundle);
        while state.recent.len() > self.config.keep_last.max(1) {
            state.recent.pop_front();
        }
    }

    /// Hands out the next incident number (1-based).
    pub fn next_seq(&self) -> u64 {
        self.captured.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Bundles captured so far.
    pub fn captured(&self) -> u64 {
        self.captured.load(Ordering::Relaxed)
    }

    /// Triggers suppressed by the rate limits so far.
    pub fn suppressed(&self) -> u64 {
        self.suppressed.load(Ordering::Relaxed)
    }

    /// Kind of the most recently captured trigger (`""` when none).
    pub fn last_trigger(&self) -> String {
        self.lock().last_trigger.clone()
    }

    /// The retained bundles, oldest-first.
    pub fn recent(&self) -> Vec<IncidentBundle> {
        self.lock().recent.iter().cloned().collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CaptureState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Renders recent telemetry events (taken with the non-destructive
/// [`granii_telemetry::snapshot_events`]) as `name key=value` lines.
pub fn render_events(events: &[granii_telemetry::EventRecord], tail: usize) -> Vec<String> {
    events
        .iter()
        .skip(events.len().saturating_sub(tail))
        .map(|e| {
            let mut line = format!("{} ts_us={}", e.name, e.ts_us);
            for (key, value) in &e.fields {
                use granii_telemetry::AttrValue;
                match value {
                    AttrValue::U64(v) => {
                        line.push_str(&format!(" {key}={v}"));
                    }
                    AttrValue::F64(v) => {
                        line.push_str(&format!(" {key}={v}"));
                    }
                    AttrValue::Str(v) => {
                        line.push_str(&format!(" {key}={v}"));
                    }
                }
            }
            line
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::{BatchingStatus, CacheStatus, FairnessStatus};
    use granii_gnn::spec::ModelKind;

    fn zero_status() -> ServerStatus {
        ServerStatus {
            uptime_seconds: 1.0,
            queue_depth: 0,
            queue_capacity: 64,
            submitted: 10,
            completed: 9,
            failed: 0,
            shed: 1,
            degraded: 0,
            deadline_expired: 0,
            degraded_rate: 0.0,
            deadline_expired_rate: 0.0,
            drift_flagged: 0,
            input_drift_flagged: 1,
            distinct_signatures: 1.0,
            batching: BatchingStatus::default(),
            fairness: FairnessStatus::default(),
            workers: Vec::new(),
            cache: CacheStatus {
                hits: 8,
                misses: 2,
                evictions: 0,
                invalidations: 1,
                len: 1,
                capacity: 64,
                hit_rate: 0.8,
            },
            drift: Vec::new(),
            input: Vec::new(),
            slo: Vec::new(),
            latency: Vec::new(),
            recorder: crate::status::RecorderStatus::default(),
            metering: crate::status::MeteringStatus::default(),
        }
    }

    fn key() -> PlanKey {
        (ModelKind::Gcn, 0x5eed_f00d, 64, 32)
    }

    fn sample_bundle() -> IncidentBundle {
        let trigger = IncidentTrigger::InputDrift {
            key: key(),
            band_l1: 0.41,
            cv_delta: 2.2,
        };
        IncidentBundle {
            seq: 1,
            captured_at_us: 1_500_000,
            trigger: trigger.info(),
            recorder: RecorderInfo {
                capacity: 4096,
                written: 123,
                dropped: 0,
            },
            ring: vec![RingEntry::from_record(&FlightRecord {
                seq: 9,
                ts_us: 1_400_000,
                id: 7,
                fingerprint: 0x5eed_f00d,
                model: "gcn",
                kind: RecordKind::InputDriftFlag {
                    band_l1: 0.41,
                    cv_delta: 2.2,
                    live_cv: 3.0,
                    reference_cv: 0.8,
                    live_avg_degree: 9.5,
                },
            })],
            selection: Some(SelectionAuditInfo::from_audit(
                key(),
                &SelectionAudit {
                    composition: "gspmm_fused".to_owned(),
                    degraded: false,
                    predicted: vec![
                        ("gspmm_fused".to_owned(), 0.0011),
                        ("gemm_then_gspmm".to_owned(), 0.0042),
                    ],
                    profile: Some(InputProfile {
                        bands: [0.0, 0.9, 0.1, 0.0, 0.0],
                        avg_degree: 3.5,
                        degree_cv: 0.8,
                        density: 0.01,
                    }),
                    captured_at_us: 900_000,
                },
            )),
            sketches: Vec::new(),
            events: vec!["serve.input_drift ts_us=1400000 id=7".to_owned()],
            events_dropped: 0,
            timeline: Some(TimelineInfo {
                at_ns: vec![1_000_000, 2_000_000],
                columns: vec![TimelineColumnInfo {
                    name: "serve.completed".to_owned(),
                    kind: "counter".to_owned(),
                    values: vec![None, Some(9.0)],
                }],
            }),
            status: zero_status(),
        }
    }

    #[test]
    fn bundle_round_trips_through_json() {
        let bundle = sample_bundle();
        let parsed = IncidentBundle::from_json(&bundle.to_json()).unwrap();
        assert_eq!(parsed.seq, 1);
        assert_eq!(parsed.trigger.kind, "input_drift");
        assert_eq!(
            parsed.trigger.fingerprint,
            format!("{:016x}", 0x5eed_f00du64)
        );
        assert!((parsed.trigger.value - 0.41).abs() < 1e-12);
        assert_eq!(parsed.ring.len(), 1);
        assert_eq!(parsed.ring[0].kind, "input_drift_flag");
        assert_eq!(parsed.ring[0].id, 7);
        let sel = parsed.selection.as_ref().expect("selection audit present");
        assert_eq!(sel.composition, "gspmm_fused");
        assert_eq!(sel.predicted.len(), 2);
        assert!((sel.predicted[1].predicted_seconds - 0.0042).abs() < 1e-12);
        let input = sel.input.as_ref().expect("input stats present");
        assert_eq!(input.bands.len(), 5);
        assert!((input.degree_cv - 0.8).abs() < 1e-12);
        assert_eq!(parsed.events.len(), 1);
        assert_eq!(parsed.status.submitted, 10);
        let timeline = parsed.timeline.as_ref().expect("timeline attached");
        assert_eq!(timeline.frames(), 2);
        assert_eq!(timeline.columns[0].name, "serve.completed");
        assert_eq!(timeline.columns[0].kind, "counter");
        assert_eq!(timeline.columns[0].values, vec![None, Some(9.0)]);
    }

    #[test]
    fn bundles_without_a_timeline_still_parse() {
        // Bundles captured before the time-series ring existed carry no
        // `timeline` key; the field must deserialize to None, not error.
        let mut bundle = sample_bundle();
        bundle.timeline = None;
        let json = bundle.to_json();
        assert!(!json.contains("\"at_ns\""));
        let parsed = IncidentBundle::from_json(&json).unwrap();
        assert!(parsed.timeline.is_none());
    }

    #[test]
    fn timeline_renders_trigger_signature_and_costs() {
        let text = sample_bundle().to_string();
        assert!(text.contains("trigger input_drift"));
        assert!(text.contains(&format!("{:016x}", 0x5eed_f00du64)));
        assert!(text.contains("<- chosen"));
        assert!(text.contains("input_drift_flag"));
        assert!(text.contains("band_l1"));
    }

    #[test]
    fn cooldown_rate_limits_captures() {
        let capturer = IncidentCapturer::new(IncidentConfig {
            cooldown: Duration::from_secs(3600),
            max_per_window: 100,
            ..IncidentConfig::default()
        });
        assert!(capturer.admit());
        assert!(!capturer.admit(), "cooldown must suppress");
        assert!(!capturer.admit());
        assert_eq!(capturer.suppressed(), 2);
    }

    #[test]
    fn max_per_window_caps_a_burst() {
        let capturer = IncidentCapturer::new(IncidentConfig {
            cooldown: Duration::ZERO,
            max_per_window: 2,
            window: Duration::from_secs(3600),
            ..IncidentConfig::default()
        });
        assert!(capturer.admit());
        assert!(capturer.admit());
        assert!(!capturer.admit(), "window budget exhausted");
        assert_eq!(capturer.suppressed(), 1);
    }

    #[test]
    fn disabled_capturer_admits_nothing() {
        let capturer = IncidentCapturer::new(IncidentConfig {
            enabled: false,
            ..IncidentConfig::default()
        });
        assert!(!capturer.admit());
        assert_eq!(capturer.note_shed(), None);
    }

    #[test]
    fn shed_storm_threshold_fires_once_per_armed_window() {
        let capturer = IncidentCapturer::new(IncidentConfig {
            shed_threshold: 3,
            shed_window: Duration::from_secs(3600),
            ..IncidentConfig::default()
        });
        assert_eq!(capturer.note_shed(), None);
        assert_eq!(capturer.note_shed(), None);
        assert_eq!(capturer.note_shed(), Some(3), "third shed crosses");
        // Re-armed: the next crossing needs another full threshold.
        assert_eq!(capturer.note_shed(), None);
        assert_eq!(capturer.note_shed(), None);
        assert_eq!(capturer.note_shed(), Some(3));
    }

    #[test]
    fn store_retains_bounded_recent_and_last_trigger() {
        let capturer = IncidentCapturer::new(IncidentConfig {
            keep_last: 2,
            ..IncidentConfig::default()
        });
        for i in 0..4 {
            let mut bundle = sample_bundle();
            bundle.seq = capturer.next_seq();
            assert_eq!(bundle.seq, i + 1);
            capturer.store(bundle);
        }
        let recent = capturer.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].seq, 3);
        assert_eq!(recent[1].seq, 4);
        assert_eq!(capturer.last_trigger(), "input_drift");
        assert_eq!(capturer.captured(), 4);
    }

    #[test]
    fn audit_table_replaces_and_evicts_fifo() {
        let table = AuditTable::default();
        let audit = |name: &str| SelectionAudit {
            composition: name.to_owned(),
            degraded: false,
            predicted: Vec::new(),
            profile: None,
            captured_at_us: 0,
        };
        table.record(key(), audit("first"));
        table.record(key(), audit("second"));
        assert_eq!(table.len(), 1, "same key replaces");
        assert_eq!(table.get(key()).unwrap().composition, "second");
        for i in 0..AUDIT_CAPACITY as u64 {
            table.record((ModelKind::Gcn, 0x1000 + i, 8, 8), audit("filler"));
        }
        assert_eq!(table.len(), AUDIT_CAPACITY);
        assert!(
            table.get(key()).is_none(),
            "oldest entry evicted beyond capacity"
        );
    }
}
