//! Always-on flight recorder: a lock-free, bounded, overwriting ring of
//! fixed-size records every serve layer streams into.
//!
//! The admission queue ([`crossbeam::queue::ArrayQueue`]) is the wrong
//! shape for a black box: its pop is *destructive* and a full ring rejects
//! the producer. A flight recorder wants the opposite on both counts —
//! writers must never block or fail the request path (the newest record
//! overwrites the oldest), and readers must be able to photograph the ring
//! *without consuming it* (incident capture racing a metrics scrape must
//! not steal each other's records). So this is a separate primitive built
//! on the same Vyukov-style sequence-stamped slots:
//!
//! - A single atomic `next` counter hands every record a global, monotone
//!   index; the record lands in slot `index % capacity`.
//! - Each slot carries a seqlock stamp encoding both *which* index it holds
//!   and *whether a writer is mid-copy*: `0` = never written,
//!   `2·index + 1` = a writer is copying record `index` in,
//!   `2·index + 2` = record `index` is published.
//! - A writer CASes the slot from its observed even (quiescent) stamp to
//!   the odd "writing" stamp, memcpys the record, then publishes the even
//!   stamp. If the CAS fails — another lap's writer owns the slot right
//!   now — the record is **dropped** (monotone `dropped` counter), never
//!   torn and never blocked on. With a capacity of thousands this needs a
//!   writer to be descheduled for a full lap of the ring; drops are a
//!   counter you alert on, not an expected code path.
//! - A reader snapshots by, per slot: load stamp, copy the slot bytes,
//!   re-load the stamp. Equal even stamps mean the copy is a consistent
//!   published record (the classic seqlock validation); anything else means
//!   a writer interleaved and the slot is skipped — it will be a *newer*
//!   record on the next snapshot anyway.
//!
//! Records are `Copy` and fixed-size ([`FlightRecord`], ~120 B): the hot
//! path is one `fetch_add`, one CAS, one memcpy — no allocation, which is
//! what lets the recorder stay **always on** (unlike telemetry, which is
//! opt-in) and keep `serve/tests/zero_alloc_hits.rs` honest.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Member request ids tracked per batch-formation record. Groups larger
/// than this (max_batch above 8) still record their true `size`; only the
/// id list truncates.
pub const MAX_BATCH_MEMBERS: usize = 8;

/// What happened, with the fixed-size payload each record type carries.
/// Every variant is `Copy` — no heap, no strings beyond `&'static str`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecordKind {
    /// Request accepted into the admission ring.
    Enqueue {
        /// Queue depth just after the push.
        depth: u32,
    },
    /// Request shed at admission.
    Shed {
        /// Queue depth at the shed decision.
        depth: u32,
        /// `"queue_full"` or `"tenant_cap"`.
        reason: &'static str,
    },
    /// A signature-coalesced batch group formed (including groups of one).
    BatchFormed {
        /// True group size.
        size: u32,
        /// How many leading member ids `members` holds.
        tracked: u32,
        /// Member request ids, first `tracked` valid.
        members: [u64; MAX_BATCH_MEMBERS],
    },
    /// Plan-cache hit for a group leader.
    CacheHit {
        /// Followers riding the same entry as shared hits.
        shared: u32,
    },
    /// Plan-cache miss: selection + bind ran.
    CacheMiss {
        /// Select + bind wall time in microseconds.
        select_us: u64,
        /// Whether the degraded (default-composition) path was taken.
        degraded: bool,
    },
    /// A cached plan was invalidated.
    CacheInvalidate {
        /// `"drift"`, `"input_drift"`, or `"model_swap"`.
        cause: &'static str,
    },
    /// Cost-model drift lane flagged the signature.
    DriftFlag {
        /// Smoothed ln(measured) − ln(predicted) residual at flag time.
        ewma_residual: f64,
    },
    /// Input-drift lane flagged the signature, with the offending
    /// `InputProfile` deltas.
    InputDriftFlag {
        /// Degree-band L1 distance at flag time.
        band_l1: f64,
        /// Absolute degree-CV delta at flag time.
        cv_delta: f64,
        /// Live (EWMA) degree CV.
        live_cv: f64,
        /// Selection-time reference degree CV.
        reference_cv: f64,
        /// Live (EWMA) average degree.
        live_avg_degree: f64,
    },
    /// An SLO window closed at or above the alert burn rate.
    SloBurn {
        /// Outcome class (`hit` / `miss` / `degraded`).
        outcome: &'static str,
        /// The closed window's burn rate.
        burn_rate: f64,
        /// The objective's latency threshold in milliseconds.
        threshold_ms: f64,
    },
    /// An SLO window closed back below the alert burn rate.
    SloRecover {
        /// Outcome class.
        outcome: &'static str,
        /// The closed window's burn rate.
        burn_rate: f64,
    },
    /// The request's deadline had expired when its batch group formed.
    DeadlineExpired,
    /// Request completed with a response.
    Complete {
        /// Outcome class (`hit` / `miss` / `degraded`).
        outcome: &'static str,
        /// Submit-to-reply latency in microseconds.
        latency_us: u64,
        /// Size of the batch group it executed in.
        batch: u32,
        /// Whether it fell back to the default composition.
        degraded: bool,
    },
    /// Request failed with an error.
    Failed,
    /// `Server::replace_granii` hot-swapped the models.
    ModelSwap,
}

impl RecordKind {
    /// Stable snake_case name (bundle JSON, timeline rendering).
    pub fn name(&self) -> &'static str {
        match self {
            RecordKind::Enqueue { .. } => "enqueue",
            RecordKind::Shed { .. } => "shed",
            RecordKind::BatchFormed { .. } => "batch_formed",
            RecordKind::CacheHit { .. } => "cache_hit",
            RecordKind::CacheMiss { .. } => "cache_miss",
            RecordKind::CacheInvalidate { .. } => "cache_invalidate",
            RecordKind::DriftFlag { .. } => "drift_flag",
            RecordKind::InputDriftFlag { .. } => "input_drift_flag",
            RecordKind::SloBurn { .. } => "slo_burn",
            RecordKind::SloRecover { .. } => "slo_recover",
            RecordKind::DeadlineExpired => "deadline_expired",
            RecordKind::Complete { .. } => "complete",
            RecordKind::Failed => "failed",
            RecordKind::ModelSwap => "model_swap",
        }
    }
}

/// One flight-recorder record: fixed-size, `Copy`, no heap.
#[derive(Debug, Clone, Copy)]
pub struct FlightRecord {
    /// Global monotone record index, stamped by the ring at record time.
    pub seq: u64,
    /// Microseconds since the process trace epoch, stamped at record time.
    pub ts_us: u64,
    /// Request id this record is about (0 when not request-scoped).
    pub id: u64,
    /// Plan-signature fingerprint (0 when not signature-scoped).
    pub fingerprint: u64,
    /// Model family name (`""` when not signature-scoped).
    pub model: &'static str,
    /// What happened.
    pub kind: RecordKind,
}

/// Recorder tuning.
#[derive(Debug, Clone, Copy)]
pub struct RecorderConfig {
    /// Ring capacity in records (fixed at construction; each slot is
    /// ~120 bytes). The default keeps roughly the last 4096 serve moments.
    pub capacity: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig { capacity: 4096 }
    }
}

/// Slot stamps: `0` never written, `2·idx + 1` writer mid-copy of record
/// `idx`, `2·idx + 2` record `idx` published.
struct Slot {
    stamp: AtomicU64,
    record: UnsafeCell<MaybeUninit<FlightRecord>>,
}

/// The always-on flight recorder (see module docs for the protocol).
pub struct FlightRecorder {
    /// Total records claimed (= published + dropped).
    next: AtomicU64,
    /// Records dropped because another lap's writer owned the slot.
    /// Monotone.
    dropped: AtomicU64,
    slots: Box<[Slot]>,
}

// SAFETY: slot payloads are `Copy` plain-old-data guarded by the seqlock
// stamp protocol — writers get exclusive slot access between the odd-stamp
// CAS and the even-stamp publish, and readers validate their copy against
// the stamp before trusting it.
unsafe impl Send for FlightRecorder {}
unsafe impl Sync for FlightRecorder {}

impl FlightRecorder {
    /// Creates a recorder with `config.capacity` slots (minimum 1).
    pub fn new(config: RecorderConfig) -> Self {
        let capacity = config.capacity.max(1);
        FlightRecorder {
            next: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slots: (0..capacity)
                .map(|_| Slot {
                    stamp: AtomicU64::new(0),
                    record: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
        }
    }

    /// Ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever claimed (published + dropped). Monotone.
    pub fn written(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Records dropped because a lapped writer still owned the target slot.
    /// Monotone.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Streams one record into the ring. Never blocks, never allocates:
    /// one `fetch_add`, one CAS, one fixed-size copy. On the astronomically
    /// rare slot collision (a writer descheduled for a whole lap of the
    /// ring) the record is dropped and counted instead of torn.
    pub fn record(&self, id: u64, fingerprint: u64, model: &'static str, kind: RecordKind) {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(idx % self.slots.len() as u64) as usize];
        let writing = 2 * idx + 1;
        let cur = slot.stamp.load(Ordering::Relaxed);
        // Claimable only when quiescent (even) and older than us. An odd
        // stamp is a mid-copy writer; a stamp beyond ours means a *later*
        // lap already owns the slot (we were descheduled for a full lap and
        // our record is stale either way).
        if cur % 2 == 1
            || cur > writing
            || slot
                .stamp
                .compare_exchange(cur, writing, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let record = FlightRecord {
            seq: idx,
            ts_us: granii_telemetry::now_us(),
            id,
            fingerprint,
            model,
            kind,
        };
        // SAFETY: the successful odd-stamp CAS above gives this thread sole
        // write access to the slot until the publishing store below.
        unsafe { (*slot.record.get()).write(record) };
        slot.stamp.store(writing + 1, Ordering::Release);
    }

    /// Non-destructive snapshot: every consistently-published record,
    /// sorted oldest-first by global index. Concurrent writers are fine —
    /// a slot mid-overwrite is skipped (its replacement shows up in the
    /// next snapshot); no record is ever consumed or torn.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let s1 = slot.stamp.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue; // never written, or a writer is mid-copy
            }
            // SAFETY: seqlock read. The raw copy may race a writer — which
            // is why it goes through `read_volatile` into a `MaybeUninit`
            // that is only trusted after the stamp re-check proves no
            // writer touched the slot in between (same discipline as the
            // vendored ArrayQueue's cell protocol, reader-side).
            let copy = unsafe { std::ptr::read_volatile(slot.record.get()) };
            fence(Ordering::Acquire); // copy completes before the re-check
            let s2 = slot.stamp.load(Ordering::Relaxed);
            if s1 != s2 {
                continue; // a writer interleaved; skip the torn copy
            }
            // SAFETY: equal even stamps bracket the copy, so it is the
            // fully-published record the first load saw.
            out.push(unsafe { copy.assume_init() });
        }
        out.sort_unstable_by_key(|r| r.seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_come_back_in_order_with_payloads() {
        let r = FlightRecorder::new(RecorderConfig { capacity: 16 });
        r.record(7, 0xabc, "gcn", RecordKind::Enqueue { depth: 3 });
        r.record(
            8,
            0xabc,
            "gcn",
            RecordKind::Shed {
                depth: 64,
                reason: "queue_full",
            },
        );
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].seq, 0);
        assert_eq!(snap[0].id, 7);
        assert_eq!(snap[0].kind, RecordKind::Enqueue { depth: 3 });
        assert_eq!(snap[1].kind.name(), "shed");
        assert_eq!(r.written(), 2);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn wraparound_keeps_the_newest_capacity_records() {
        let cap = 8u64;
        let r = FlightRecorder::new(RecorderConfig {
            capacity: cap as usize,
        });
        for i in 0..3 * cap {
            r.record(i, 0, "", RecordKind::Enqueue { depth: i as u32 });
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), cap as usize);
        let seqs: Vec<u64> = snap.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (2 * cap..3 * cap).collect::<Vec<_>>());
        // Payloads track their seq (no slot served a stale lap).
        for rec in &snap {
            assert_eq!(rec.id, rec.seq);
        }
        assert_eq!(r.written(), 3 * cap);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn snapshot_is_non_destructive() {
        let r = FlightRecorder::new(RecorderConfig::default());
        r.record(1, 0, "", RecordKind::ModelSwap);
        assert_eq!(r.snapshot().len(), 1);
        assert_eq!(r.snapshot().len(), 1, "snapshot must not consume");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let r = FlightRecorder::new(RecorderConfig { capacity: 0 });
        assert_eq!(r.capacity(), 1);
        r.record(0, 0, "", RecordKind::Failed);
        r.record(1, 0, "", RecordKind::Failed);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].seq, 1);
    }
}
