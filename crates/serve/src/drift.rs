//! Online cost-model drift detection (per plan-cache signature).
//!
//! Selection quality rests entirely on the cost models ranking candidates
//! correctly (paper §VI-G). A model that was accurate at training time can
//! quietly stop matching reality — retrained on bad data, deployed for the
//! wrong device, or simply stale. The audit layer (`granii.verify`) can
//! measure the resulting regret offline, but a serving process needs to
//! notice *while running*, from signals it already has.
//!
//! The detector watches, per cached plan signature, the log-space residual
//! between what the cost model promised and what execution actually cost:
//!
//! ```text
//! r = ln(measured_steady_seconds) − ln(predicted_steady_seconds)
//! ```
//!
//! Both sides are steady-state (per-iteration) figures: the prediction sums
//! only non-hoisted steps ([`granii_core::cost::CostModelSet::predict_steady_state`])
//! and the measurement is the engine-charged cost of one
//! [`granii_core::execplan::BoundPlan::iterate`]. Log space mirrors how the
//! models are trained (they regress `ln(latency)`) and makes the threshold a
//! *ratio*: `|r| > ln(2)` means off by more than 2×, in either direction.
//!
//! Each signature keeps an EWMA of the residual. When the smoothed residual
//! exceeds the threshold for `k_consecutive` observations (after a
//! `min_samples` warmup), the signature is **flagged**: the server bumps
//! `serve.drift_flagged`, emits a structured `serve.drift` event, and
//! invalidates the signature's plan-cache entry so the next request
//! re-selects. A per-signature cooldown keeps a persistently-broken model
//! from turning every request into a flag + invalidation storm.

use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

use crate::cache::PlanKey;

/// Tuning knobs for the drift detector. Defaults are deliberately
/// conservative: a flag requires the smoothed residual to sit beyond a 2×
/// ratio for three consecutive requests after a three-request warmup.
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// Master switch; when false, `observe` records nothing.
    pub enabled: bool,
    /// EWMA smoothing factor in (0, 1]; higher reacts faster.
    pub alpha: f64,
    /// Flag when `|ewma residual| > threshold` (log-space, so `ln(2)` means
    /// "off by more than 2×").
    pub threshold: f64,
    /// Observations required before the residual is eligible to flag.
    pub min_samples: u32,
    /// Consecutive above-threshold observations required to flag.
    pub k_consecutive: u32,
    /// Observations to ignore for flagging after a flag (rate-limits re-flag
    /// storms while the operator repairs the model).
    pub cooldown: u32,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            enabled: true,
            alpha: 0.3,
            threshold: std::f64::consts::LN_2,
            min_samples: 3,
            k_consecutive: 3,
            cooldown: 32,
        }
    }
}

/// Per-signature residual state. Survives plan-cache invalidation on
/// purpose: the cooldown must keep counting across the re-selection the
/// flag triggered, otherwise a still-broken model re-flags immediately.
#[derive(Debug, Clone, Copy)]
struct SigState {
    ewma: f64,
    last_residual: f64,
    samples: u64,
    consecutive: u32,
    cooldown: u32,
    flags: u64,
}

/// What `observe` decided for one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftVerdict {
    /// Residual recorded; signature within tolerance (or still warming up /
    /// cooling down).
    Ok,
    /// Signature just crossed the flagging criteria: the caller should
    /// invalidate its plan-cache entry and emit the drift event. Carries the
    /// smoothed residual at flag time.
    Flagged { ewma_residual: f64 },
}

/// One row of the drift table exposed on the status surface.
#[derive(Debug, Clone, Copy)]
pub struct DriftRow {
    /// The plan signature this row tracks.
    pub key: PlanKey,
    /// Smoothed log-space residual (positive: slower than predicted).
    pub ewma_residual: f64,
    /// Most recent raw residual.
    pub last_residual: f64,
    /// Residual observations recorded.
    pub samples: u64,
    /// Times this signature has been flagged.
    pub flags: u64,
    /// Remaining cooldown observations (0 = eligible to flag).
    pub cooldown: u32,
}

/// Per-signature EWMA residual tracker. One instance lives in the server's
/// shared state; `observe` is called once per successfully served request
/// that has a steady-state prediction.
pub struct DriftDetector {
    config: DriftConfig,
    states: Mutex<BTreeMap<PlanKey, SigState>>,
}

impl DriftDetector {
    /// Creates a detector with the given tuning.
    pub fn new(config: DriftConfig) -> Self {
        DriftDetector {
            config,
            states: Mutex::new(BTreeMap::new()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Feeds one (measured, predicted) steady-state pair for `key`.
    /// Non-positive or non-finite inputs are ignored — a zero-cost
    /// measurement carries no ratio information.
    pub fn observe(
        &self,
        key: PlanKey,
        measured_seconds: f64,
        predicted_seconds: f64,
    ) -> DriftVerdict {
        if !self.config.enabled {
            return DriftVerdict::Ok;
        }
        if !(measured_seconds.is_finite()
            && measured_seconds > 0.0
            && predicted_seconds.is_finite()
            && predicted_seconds > 0.0)
        {
            return DriftVerdict::Ok;
        }
        let residual = measured_seconds.ln() - predicted_seconds.ln();
        let mut states = self.lock();
        let state = states.entry(key).or_insert(SigState {
            ewma: residual,
            last_residual: residual,
            samples: 0,
            consecutive: 0,
            cooldown: 0,
            flags: 0,
        });
        state.samples += 1;
        state.last_residual = residual;
        if state.samples > 1 {
            state.ewma = self.config.alpha * residual + (1.0 - self.config.alpha) * state.ewma;
        }
        if state.cooldown > 0 {
            state.cooldown -= 1;
            state.consecutive = 0;
            return DriftVerdict::Ok;
        }
        let over = state.ewma.abs() > self.config.threshold;
        if over && state.samples >= u64::from(self.config.min_samples) {
            state.consecutive += 1;
        } else {
            state.consecutive = 0;
        }
        if state.consecutive >= self.config.k_consecutive.max(1) {
            state.consecutive = 0;
            state.cooldown = self.config.cooldown;
            state.flags += 1;
            DriftVerdict::Flagged {
                ewma_residual: state.ewma,
            }
        } else {
            DriftVerdict::Ok
        }
    }

    /// Total flags raised across all signatures.
    pub fn total_flags(&self) -> u64 {
        self.lock().values().map(|s| s.flags).sum()
    }

    /// Snapshot of every tracked signature, sorted by key (status surface).
    pub fn rows(&self) -> Vec<DriftRow> {
        self.lock()
            .iter()
            .map(|(key, s)| DriftRow {
                key: *key,
                ewma_residual: s.ewma,
                last_residual: s.last_residual,
                samples: s.samples,
                flags: s.flags,
                cooldown: s.cooldown,
            })
            .collect()
    }

    /// Drops all per-signature state (model hot-swap: residual history from
    /// the old model says nothing about the new one).
    pub fn reset(&self) {
        self.lock().clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<PlanKey, SigState>> {
        self.states.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granii_gnn::spec::ModelKind;

    fn key() -> PlanKey {
        (ModelKind::Gcn, 0xfeed, 64, 32)
    }

    fn detector(k: u32, cooldown: u32) -> DriftDetector {
        DriftDetector::new(DriftConfig {
            enabled: true,
            alpha: 0.3,
            threshold: std::f64::consts::LN_2,
            min_samples: 3,
            k_consecutive: k,
            cooldown,
        })
    }

    #[test]
    fn accurate_model_never_flags() {
        let d = detector(3, 8);
        for _ in 0..200 {
            // 20% off: inside the 2x threshold.
            assert_eq!(d.observe(key(), 1.2e-3, 1.0e-3), DriftVerdict::Ok);
        }
        assert_eq!(d.total_flags(), 0);
    }

    #[test]
    fn sustained_mismatch_flags_after_warmup_plus_k() {
        let d = detector(3, 8);
        let mut flagged_at = None;
        for i in 1..=20u32 {
            if let DriftVerdict::Flagged { ewma_residual } = d.observe(key(), 1.0, 1.0e-6) {
                assert!(ewma_residual > std::f64::consts::LN_2);
                flagged_at = Some(i);
                break;
            }
        }
        // min_samples = 3 and k = 3 overlap: observations 3, 4, 5 are both
        // past warmup and consecutive, so the flag lands on observation 5.
        assert_eq!(flagged_at, Some(5));
    }

    #[test]
    fn cooldown_rate_limits_reflag_storms() {
        let d = detector(1, 10);
        let mut flags = 0u64;
        for _ in 0..30 {
            if matches!(d.observe(key(), 1.0, 1.0e-6), DriftVerdict::Flagged { .. }) {
                flags += 1;
            }
        }
        // Observation 3 flags (warmup), then 10 cooldown observations
        // swallow 4..=13, observation 14 flags again, cooldown swallows
        // 15..=24, observation 25 flags: 3 flags in 30 observations, not 28.
        assert_eq!(flags, 3);
        assert_eq!(d.total_flags(), 3);
    }

    #[test]
    fn recovery_clears_consecutive_counter() {
        let d = detector(3, 0);
        // Two above-threshold observations past warmup (2.5x off: residual
        // ~0.92, just over the ln 2 threshold)...
        for _ in 0..4 {
            d.observe(key(), 2.5e-3, 1.0e-3);
        }
        // ...then one accurate observation drags the EWMA under the
        // threshold (0.7 * 0.92 ~ 0.64 < ln 2) before the third consecutive
        // breach accrues, so the streak resets and nothing ever flags.
        let mut flagged = false;
        for _ in 0..50 {
            if matches!(
                d.observe(key(), 1.0e-3, 1.0e-3),
                DriftVerdict::Flagged { .. }
            ) {
                flagged = true;
            }
        }
        assert!(!flagged, "EWMA decayed back under threshold; no flag");
        let rows = d.rows();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].ewma_residual.abs() < std::f64::consts::LN_2);
        assert_eq!(rows[0].flags, 0);
    }

    #[test]
    fn disabled_detector_is_inert() {
        let d = DriftDetector::new(DriftConfig {
            enabled: false,
            ..DriftConfig::default()
        });
        for _ in 0..20 {
            assert_eq!(d.observe(key(), 1.0, 1.0e-9), DriftVerdict::Ok);
        }
        assert!(d.rows().is_empty());
    }

    #[test]
    fn degenerate_inputs_are_ignored() {
        let d = detector(1, 0);
        for _ in 0..10 {
            assert_eq!(d.observe(key(), 0.0, 1.0), DriftVerdict::Ok);
            assert_eq!(d.observe(key(), 1.0, 0.0), DriftVerdict::Ok);
            assert_eq!(d.observe(key(), f64::NAN, 1.0), DriftVerdict::Ok);
        }
        assert!(d.rows().is_empty());
    }
}
