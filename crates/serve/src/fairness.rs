//! Per-tenant admission fairness for the lock-free submit path.
//!
//! A tenant is a plan signature's graph fingerprint (pinned via
//! [`crate::ServeRequest::with_signature`] or derived from the graph's
//! content). Without a per-tenant bound, one hot tenant can fill the entire
//! admission queue and starve everyone else *before* the queue-depth check
//! ever sheds — the classic head-of-line capture problem. The
//! [`TenantTable`] bounds how many queued (admitted but not yet dequeued)
//! requests any single tenant may hold: `max(1, queue_depth × share)`.
//!
//! The table itself is lock-free, matching the admission path it sits on: a
//! fixed array of slots claimed by fingerprint CAS, linear-probed from
//! `fingerprint % slots`. Tenants beyond the probe window share one
//! overflow slot (they are still bounded, just collectively) — serving
//! workloads have a small working set of signatures, so in practice every
//! tenant gets its own slot.

use std::sync::atomic::{AtomicU64, Ordering};

/// One tenant's admission accounting. `fp == 0` means unclaimed (the
/// all-zero fingerprint, should a graph ever hash to it, shares the
/// overflow slot — a capacity nuance, never a correctness one).
struct TenantSlot {
    fp: AtomicU64,
    queued: AtomicU64,
    admitted: AtomicU64,
    shed: AtomicU64,
}

impl TenantSlot {
    fn new() -> Self {
        TenantSlot {
            fp: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }
}

/// Point-in-time snapshot of one tenant's admission counters.
#[derive(Debug, Clone, Copy)]
pub struct TenantRow {
    /// The tenant's plan-signature fingerprint (`0` aggregates tenants that
    /// overflowed the fixed table).
    pub fingerprint: u64,
    /// Requests currently queued for this tenant.
    pub queued: u64,
    /// Requests admitted over the server's lifetime.
    pub admitted: u64,
    /// Requests shed by the per-tenant bound (a subset of the server's
    /// total shed count).
    pub shed: u64,
}

/// Lock-free per-tenant admission bounds and counters (see module docs).
pub struct TenantTable {
    slots: Box<[TenantSlot]>,
    overflow: TenantSlot,
    /// Maximum queued requests per tenant.
    cap: u64,
}

/// Fixed tenant-slot count; fingerprints that cannot claim a slot within
/// the probe window share the overflow slot.
const TENANT_SLOTS: usize = 64;

/// Linear-probe distance before giving up and using the overflow slot.
const PROBE_LIMIT: usize = 8;

impl TenantTable {
    /// Builds a table bounding each tenant to `max(1, queue_depth × share)`
    /// queued requests. `share` is clamped to `[0, 1]`.
    pub fn new(queue_depth: usize, share: f64) -> Self {
        let share = share.clamp(0.0, 1.0);
        let cap = ((queue_depth as f64 * share).ceil() as u64).max(1);
        TenantTable {
            slots: (0..TENANT_SLOTS).map(|_| TenantSlot::new()).collect(),
            overflow: TenantSlot::new(),
            cap,
        }
    }

    /// The per-tenant queued bound.
    pub fn cap(&self) -> u64 {
        self.cap
    }

    /// Finds (or claims, by CAS on the fingerprint itself) the slot for
    /// `fp`, falling back to the shared overflow slot when the probe window
    /// is exhausted.
    fn slot(&self, fp: u64) -> &TenantSlot {
        if fp == 0 {
            return &self.overflow;
        }
        let n = self.slots.len();
        let start = (fp % n as u64) as usize;
        for probe in 0..PROBE_LIMIT {
            let slot = &self.slots[(start + probe) % n];
            match slot.fp.load(Ordering::Acquire) {
                cur if cur == fp => return slot,
                0 => match slot
                    .fp
                    .compare_exchange(0, fp, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => return slot,
                    Err(winner) if winner == fp => return slot,
                    Err(_) => {} // someone else's tenant; keep probing
                },
                _ => {}
            }
        }
        &self.overflow
    }

    /// Attempts to admit one request for tenant `fp`: increments the
    /// tenant's queued count unless it is already at the bound. Returns
    /// whether the request may proceed to the queue push; on `false` the
    /// tenant's shed counter has been bumped.
    pub fn try_admit(&self, fp: u64) -> bool {
        let slot = self.slot(fp);
        let mut queued = slot.queued.load(Ordering::Relaxed);
        loop {
            if queued >= self.cap {
                slot.shed.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            match slot.queued.compare_exchange_weak(
                queued,
                queued + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    slot.admitted.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Err(q) => queued = q,
            }
        }
    }

    /// Releases one queued count for tenant `fp` — called when the request
    /// leaves the queue (worker dequeue).
    pub fn release(&self, fp: u64) {
        let slot = self.slot(fp);
        // Saturating: a release without a matching admit is a logic error,
        // but wedging the counter at u64::MAX would be worse.
        let _ = slot
            .queued
            .fetch_update(Ordering::AcqRel, Ordering::Relaxed, |q| q.checked_sub(1));
    }

    /// Undoes a successful [`TenantTable::try_admit`] that never reached the
    /// queue (push raced a full ring): the queued count comes back down and
    /// the admit is re-counted as a shed.
    pub fn cancel_admit(&self, fp: u64) {
        let slot = self.slot(fp);
        let _ = slot
            .queued
            .fetch_update(Ordering::AcqRel, Ordering::Relaxed, |q| q.checked_sub(1));
        let _ = slot
            .admitted
            .fetch_update(Ordering::AcqRel, Ordering::Relaxed, |a| a.checked_sub(1));
        slot.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of every claimed tenant (plus the overflow aggregate when it
    /// has seen traffic), sorted by fingerprint for stable status output.
    pub fn rows(&self) -> Vec<TenantRow> {
        let mut rows: Vec<TenantRow> = self
            .slots
            .iter()
            .filter(|s| s.fp.load(Ordering::Acquire) != 0)
            .map(|s| TenantRow {
                fingerprint: s.fp.load(Ordering::Acquire),
                queued: s.queued.load(Ordering::Relaxed),
                admitted: s.admitted.load(Ordering::Relaxed),
                shed: s.shed.load(Ordering::Relaxed),
            })
            .collect();
        let overflow_admitted = self.overflow.admitted.load(Ordering::Relaxed);
        let overflow_shed = self.overflow.shed.load(Ordering::Relaxed);
        if overflow_admitted > 0 || overflow_shed > 0 {
            rows.push(TenantRow {
                fingerprint: 0,
                queued: self.overflow.queued.load(Ordering::Relaxed),
                admitted: overflow_admitted,
                shed: overflow_shed,
            });
        }
        rows.sort_by_key(|r| r.fingerprint);
        rows
    }

    /// Total fairness sheds across every tenant (including overflow).
    pub fn total_shed(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.shed.load(Ordering::Relaxed))
            .sum::<u64>()
            + self.overflow.shed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_bound_sheds_only_the_hot_tenant() {
        // depth 8, share 0.5 → each tenant may hold 4 queued requests.
        let table = TenantTable::new(8, 0.5);
        assert_eq!(table.cap(), 4);
        for _ in 0..4 {
            assert!(table.try_admit(0xaaaa));
        }
        assert!(!table.try_admit(0xaaaa), "hot tenant is at its bound");
        assert!(table.try_admit(0xbbbb), "other tenants are unaffected");
        table.release(0xaaaa);
        assert!(table.try_admit(0xaaaa), "released slot re-admits");
        let rows = table.rows();
        let hot = rows.iter().find(|r| r.fingerprint == 0xaaaa).unwrap();
        assert_eq!(hot.admitted, 5);
        assert_eq!(hot.shed, 1);
        assert_eq!(hot.queued, 4);
        assert_eq!(table.total_shed(), 1);
    }

    #[test]
    fn share_floor_always_admits_one() {
        let table = TenantTable::new(0, 0.5);
        assert_eq!(table.cap(), 1);
        assert!(table.try_admit(7));
        assert!(!table.try_admit(7));
    }

    #[test]
    fn cancel_admit_reverts_the_counters() {
        let table = TenantTable::new(8, 1.0);
        assert!(table.try_admit(42));
        table.cancel_admit(42);
        let row = table
            .rows()
            .into_iter()
            .find(|r| r.fingerprint == 42)
            .unwrap();
        assert_eq!(row.queued, 0);
        assert_eq!(row.admitted, 0);
        assert_eq!(row.shed, 1);
    }

    #[test]
    fn concurrent_admissions_never_exceed_the_bound() {
        use std::sync::atomic::AtomicU64;
        let table = TenantTable::new(64, 0.25); // cap 16
        let admitted = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let table = &table;
                let admitted = &admitted;
                s.spawn(move || {
                    for _ in 0..100 {
                        if table.try_admit(9) {
                            admitted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let row = table
            .rows()
            .into_iter()
            .find(|r| r.fingerprint == 9)
            .unwrap();
        assert_eq!(row.queued, admitted.load(Ordering::Relaxed));
        assert!(row.queued <= table.cap());
        assert_eq!(row.admitted + row.shed, 400);
    }

    #[test]
    fn many_tenants_fall_back_to_the_overflow_aggregate() {
        let table = TenantTable::new(1024, 1.0);
        // Far more distinct fingerprints than slots: everything still
        // admits, and the rows stay bounded.
        for fp in 1..=500u64 {
            assert!(table.try_admit(fp));
        }
        let rows = table.rows();
        assert!(rows.len() <= TENANT_SLOTS + 1);
        let total_queued: u64 = rows.iter().map(|r| r.queued).sum();
        assert_eq!(total_queued, 500);
    }
}
