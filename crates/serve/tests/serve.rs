//! Serving-runtime acceptance tests (ISSUE 4): load shedding under a full
//! queue, default-composition fallback with a corrupted cost model, deadline
//! degradation, steady-state cache hit rate, LRU eviction, and bitwise
//! deterministic outputs across cache hits, misses, and server restarts.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use granii_core::cost::CostModelSet;
use granii_core::{Granii, GraniiOptions};
use granii_gnn::spec::ModelKind;
use granii_graph::datasets::{Dataset, Scale};
use granii_graph::Graph;
use granii_matrix::device::DeviceKind;
use granii_serve::{ServeConfig, ServeError, ServeRequest, Server};

/// One fast-trained H100 instance shared by every test in this binary.
fn granii() -> Arc<Granii> {
    static GRANII: OnceLock<Arc<Granii>> = OnceLock::new();
    GRANII
        .get_or_init(|| {
            Arc::new(
                Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast())
                    .expect("fast offline training"),
            )
        })
        .clone()
}

/// A GRANII instance whose cost models cannot predict anything: every
/// prediction fails with `MissingCostModel`, the degradation trigger.
fn broken_granii() -> Arc<Granii> {
    Arc::new(Granii::with_cost_models(CostModelSet::new(
        DeviceKind::H100,
        BTreeMap::new(),
        BTreeMap::new(),
    )))
}

fn tiny(dataset: Dataset) -> Arc<Graph> {
    Arc::new(dataset.load(Scale::Tiny).expect("tiny dataset"))
}

#[test]
fn serves_a_request_end_to_end() {
    let server = Server::start(granii(), ServeConfig::default());
    let graph = tiny(Dataset::CoAuthorsCiteseer);
    let n = graph.num_nodes();
    let response = server
        .process(ServeRequest::new(ModelKind::Gcn, graph, 64, 128))
        .expect("request completes");
    assert_eq!(response.output.shape(), (n, 128));
    assert!(response.output.as_slice().iter().all(|v| v.is_finite()));
    assert!(!response.degraded);
    assert!(!response.cache_hit, "first request of a signature misses");
    assert!(response.timing.total_seconds >= response.timing.execute_seconds);
    let stats = server.stats();
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 0);
    server.shutdown();
}

#[test]
fn repeated_workload_exceeds_90_percent_hit_rate() {
    let server = Server::start(
        granii(),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    // Three distinct signatures, each requested 40 times sequentially: only
    // the first request of each signature can miss.
    let signatures = [
        (ModelKind::Gcn, tiny(Dataset::CoAuthorsCiteseer), 64, 128),
        (ModelKind::Gin, tiny(Dataset::Mycielskian17), 128, 64),
        (ModelKind::Sgc, tiny(Dataset::CoAuthorsCiteseer), 32, 32),
    ];
    for round in 0..40 {
        for (model, graph, k1, k2) in &signatures {
            let response = server
                .process(ServeRequest::new(*model, graph.clone(), *k1, *k2))
                .expect("request completes");
            if round > 0 {
                assert!(response.cache_hit, "round {round} must hit");
            }
        }
    }
    let stats = server.stats();
    assert_eq!(stats.completed, 120);
    assert_eq!(stats.cache_misses, 3, "one miss per signature");
    assert_eq!(stats.cache_hits, 117);
    assert!(
        stats.cache_hit_rate > 0.9,
        "steady-state hit rate {} must exceed 90%",
        stats.cache_hit_rate
    );
    server.shutdown();
}

#[test]
fn full_queue_sheds_with_overloaded_not_abort() {
    // Depth 0 makes shedding deterministic: every submit finds a full queue.
    let server = Server::start(
        granii(),
        ServeConfig {
            workers: 1,
            queue_depth: 0,
            ..ServeConfig::default()
        },
    );
    let graph = tiny(Dataset::CoAuthorsCiteseer);
    for _ in 0..10 {
        match server.submit(ServeRequest::new(ModelKind::Gcn, graph.clone(), 64, 128)) {
            Err(ServeError::Overloaded { depth }) => assert_eq!(depth, 0),
            other => panic!("expected Overloaded, got {other:?}", other = other.err()),
        }
    }
    let stats = server.stats();
    assert_eq!(stats.shed, 10);
    assert_eq!(stats.submitted, 0);
    server.shutdown();
}

#[test]
fn saturated_queue_sheds_excess_and_completes_the_rest() {
    // One worker, shallow queue, a burst far faster than service: some
    // requests are shed, every accepted one completes, nothing panics.
    let server = Server::start(
        granii(),
        ServeConfig {
            workers: 1,
            queue_depth: 2,
            ..ServeConfig::default()
        },
    );
    let graph = tiny(Dataset::CoAuthorsCiteseer);
    let mut tickets = Vec::new();
    let mut shed = 0u64;
    for _ in 0..64 {
        match server.submit(ServeRequest::new(ModelKind::Gcn, graph.clone(), 64, 128)) {
            Ok(ticket) => tickets.push(ticket),
            Err(ServeError::Overloaded { .. }) => shed += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    let accepted = tickets.len() as u64;
    for ticket in tickets {
        let response = ticket.wait().expect("accepted request completes");
        assert!(response.output.as_slice().iter().all(|v| v.is_finite()));
    }
    let stats = server.stats();
    assert_eq!(accepted + shed, 64);
    assert_eq!(stats.completed, accepted);
    assert_eq!(stats.shed, shed);
    assert_eq!(stats.failed, 0);
    server.shutdown();
}

#[test]
fn corrupted_cost_model_degrades_every_miss_but_completes_every_request() {
    let server = Server::start(broken_granii(), ServeConfig::default());
    // GCN at 48x96 has rival candidates, so selection genuinely needs the
    // (missing) cost models; two signatures, several repeats each.
    let signatures = [
        (tiny(Dataset::CoAuthorsCiteseer), 48, 96),
        (tiny(Dataset::Mycielskian17), 96, 48),
    ];
    for _ in 0..5 {
        for (graph, k1, k2) in &signatures {
            let response = server
                .process(ServeRequest::new(ModelKind::Gcn, graph.clone(), *k1, *k2))
                .expect("degraded request still completes");
            assert!(response.output.as_slice().iter().all(|v| v.is_finite()));
            if !response.cache_hit {
                assert!(response.degraded, "a miss without cost models degrades");
            }
        }
    }
    let stats = server.stats();
    assert_eq!(stats.completed, 10);
    assert_eq!(stats.failed, 0);
    assert_eq!(
        stats.degraded, stats.cache_misses,
        "degraded counter must match the fallback count (one per miss)"
    );
    assert_eq!(stats.cache_misses, 2, "one miss per signature");
    server.shutdown();
}

#[test]
fn expired_deadline_serves_degraded_instead_of_failing() {
    let server = Server::start(granii(), ServeConfig::default());
    let graph = tiny(Dataset::Mycielskian17);
    // A zero timeout is always expired by dequeue time.
    let response = server
        .process(
            ServeRequest::new(ModelKind::Gcn, graph.clone(), 48, 96).with_timeout(Duration::ZERO),
        )
        .expect("expired request is served, not dropped");
    assert!(
        response.degraded,
        "expired miss uses the default composition"
    );
    let stats = server.stats();
    assert_eq!(stats.deadline_expired, 1);
    assert_eq!(stats.degraded, 1);

    // Once the plan is cached, even an expired request serves at full
    // quality: the cache makes the deadline moot.
    let hit = server
        .process(ServeRequest::new(ModelKind::Gcn, graph, 48, 96).with_timeout(Duration::ZERO))
        .expect("request completes");
    assert!(hit.cache_hit);
    assert!(!hit.degraded);
    assert_eq!(server.stats().degraded, 1);
    server.shutdown();
}

#[test]
fn lru_eviction_keeps_cache_at_capacity() {
    let server = Server::start(
        granii(),
        ServeConfig {
            workers: 1,
            cache_capacity: 2,
            ..ServeConfig::default()
        },
    );
    let graph = tiny(Dataset::CoAuthorsCiteseer);
    // Four distinct signatures through a capacity-2 cache.
    for k2 in [16, 32, 64, 128] {
        server
            .process(ServeRequest::new(ModelKind::Gcn, graph.clone(), 64, k2))
            .expect("request completes");
    }
    let stats = server.stats();
    assert_eq!(stats.cache_len, 2);
    assert_eq!(stats.cache_evictions, 2);
    // The most recent signature is still cached; the oldest is not.
    server
        .process(ServeRequest::new(ModelKind::Gcn, graph.clone(), 64, 128))
        .expect("request completes");
    assert_eq!(server.stats().cache_hits, 1);
    server
        .process(ServeRequest::new(ModelKind::Gcn, graph, 64, 16))
        .expect("request completes");
    assert_eq!(
        server.stats().cache_misses,
        5,
        "evicted signature re-misses"
    );
    server.shutdown();
}

#[test]
fn outputs_are_bitwise_identical_across_hits_misses_and_restarts() {
    let graph = tiny(Dataset::Mycielskian17);
    let request = || ServeRequest::new(ModelKind::Gin, graph.clone(), 32, 48);

    let server = Server::start(granii(), ServeConfig::default());
    let miss = server.process(request()).expect("miss completes");
    let hit = server.process(request()).expect("hit completes");
    assert!(!miss.cache_hit);
    assert!(hit.cache_hit);
    assert_eq!(miss.composition, hit.composition);
    assert_eq!(
        miss.output.as_slice(),
        hit.output.as_slice(),
        "cached iterate must reproduce the miss-time output bitwise"
    );
    server.shutdown();

    // A fresh server (fresh cache, fresh workers) reproduces the same bits.
    let server2 = Server::start(granii(), ServeConfig::default());
    let replay = server2.process(request()).expect("replay completes");
    assert_eq!(miss.output.as_slice(), replay.output.as_slice());
    server2.shutdown();
}

#[test]
fn shutdown_drains_queued_requests() {
    let server = Server::start(
        granii(),
        ServeConfig {
            workers: 1,
            queue_depth: 16,
            ..ServeConfig::default()
        },
    );
    let graph = tiny(Dataset::CoAuthorsCiteseer);
    let tickets: Vec<_> = (0..4)
        .map(|_| {
            server
                .submit(ServeRequest::new(ModelKind::Gcn, graph.clone(), 64, 128))
                .expect("queue has room")
        })
        .collect();
    server.shutdown();
    for ticket in tickets {
        ticket
            .wait()
            .expect("queued request served before shutdown");
    }
}
