//! Continuous-batching acceptance tests (ISSUE 7): signature-coalesced
//! groups must produce bitwise the same outputs as serial execution, mixed
//! hit/miss/degraded bursts must keep per-request outcome semantics, and
//! the batch/fairness counters must surface on the status snapshot.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use granii_core::cost::CostModelSet;
use granii_core::{Granii, GraniiOptions};
use granii_gnn::spec::ModelKind;
use granii_graph::datasets::{Dataset, Scale};
use granii_graph::Graph;
use granii_matrix::device::DeviceKind;
use granii_serve::{ServeConfig, ServeRequest, Server, Ticket};

/// One fast-trained H100 instance shared by every test in this binary.
fn granii() -> Arc<Granii> {
    static GRANII: OnceLock<Arc<Granii>> = OnceLock::new();
    GRANII
        .get_or_init(|| {
            Arc::new(
                Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast())
                    .expect("fast offline training"),
            )
        })
        .clone()
}

/// A GRANII instance whose cost models cannot predict anything: every
/// prediction fails with `MissingCostModel`, the degradation trigger.
fn broken_granii() -> Arc<Granii> {
    Arc::new(Granii::with_cost_models(CostModelSet::new(
        DeviceKind::H100,
        BTreeMap::new(),
        BTreeMap::new(),
    )))
}

fn tiny(dataset: Dataset) -> Arc<Graph> {
    Arc::new(dataset.load(Scale::Tiny).expect("tiny dataset"))
}

/// Submits `burst` copies of `request` as fast as possible and waits for all
/// of them. With one worker busy on the first job, the rest pile up in the
/// ring and get drained as signature-coalesced groups.
fn burst(server: &Server, request: &ServeRequest, n: usize) -> Vec<granii_serve::ServeResponse> {
    let tickets: Vec<Ticket> = (0..n)
        .map(|_| server.submit(request.clone()).expect("burst submit"))
        .collect();
    tickets
        .into_iter()
        .map(|t| t.wait().expect("burst request completes"))
        .collect()
}

#[test]
fn batched_outputs_are_bitwise_identical_to_serial() {
    let server = Server::start(
        granii(),
        ServeConfig {
            workers: 1,
            max_batch: 8,
            ..ServeConfig::default()
        },
    );
    let graph = tiny(Dataset::CoAuthorsCiteseer);
    let request = ServeRequest::new(ModelKind::Gcn, graph, 32, 64);

    // Serial reference: a lone request is a group of one (the serial path).
    let reference = server.process(request.clone()).expect("serial reference");
    assert_eq!(reference.batch_size, 1);

    // Burst rounds until at least one real batch (≥2) formed. With one
    // worker and execution far slower than submission this is all but
    // guaranteed on the first round; the loop removes the "all but".
    let mut batched_seen = false;
    for _ in 0..50 {
        for response in burst(&server, &request, 12) {
            assert_eq!(
                response.output.as_slice(),
                reference.output.as_slice(),
                "batched output (group of {}) must be bitwise identical to serial",
                response.batch_size
            );
            assert_eq!(response.composition, reference.composition);
            assert!(!response.degraded);
            batched_seen |= response.batch_size >= 2;
        }
        if batched_seen {
            break;
        }
    }
    assert!(batched_seen, "no batch of two or more ever formed");
    let stats = server.stats();
    assert!(stats.batches >= 1);
    assert!(stats.batched_requests >= 2);
    assert_eq!(stats.failed, 0);
    server.shutdown();
}

#[test]
fn mixed_signature_bursts_batch_per_signature_and_stay_bitwise() {
    let server = Server::start(
        granii(),
        ServeConfig {
            workers: 1,
            max_batch: 8,
            queue_depth: 128,
            // Two tenants share the queue evenly; neither hits its bound in
            // this test's bursts.
            fairness_share: 0.5,
            ..ServeConfig::default()
        },
    );
    let a = ServeRequest::new(ModelKind::Gcn, tiny(Dataset::CoAuthorsCiteseer), 32, 64);
    let b = ServeRequest::new(ModelKind::Sgc, tiny(Dataset::Mycielskian17), 16, 32);
    let ref_a = server.process(a.clone()).expect("reference a");
    let ref_b = server.process(b.clone()).expect("reference b");

    // Interleave the two signatures in one burst: the dispatcher must
    // coalesce per signature, never across.
    let tickets: Vec<(bool, Ticket)> = (0..24)
        .map(|i| {
            let request = if i % 2 == 0 { &a } else { &b };
            (i % 2 == 0, server.submit(request.clone()).expect("submit"))
        })
        .collect();
    for (is_a, ticket) in tickets {
        let response = ticket.wait().expect("completes");
        let reference = if is_a { &ref_a } else { &ref_b };
        assert_eq!(response.output.as_slice(), reference.output.as_slice());
        assert_eq!(response.composition, reference.composition);
        assert!(response.cache_hit, "both signatures were warmed");
    }
    let stats = server.stats();
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.completed, 26);
    server.shutdown();
}

#[test]
fn degraded_and_expired_requests_keep_their_outcomes_inside_bursts() {
    // Broken cost models: every miss degrades to the default composition.
    let server = Server::start(
        broken_granii(),
        ServeConfig {
            workers: 1,
            max_batch: 8,
            ..ServeConfig::default()
        },
    );
    let request = ServeRequest::new(ModelKind::Gcn, tiny(Dataset::CoAuthorsCiteseer), 32, 64);
    let responses = burst(&server, &request, 10);
    // Exactly one request (the signature's first — the batch leader or the
    // lone serial miss) pays the degraded selection; every follower and
    // every later hit serves the cached plan at full quality.
    let degraded: Vec<bool> = responses.iter().map(|r| r.degraded).collect();
    assert_eq!(degraded.iter().filter(|d| **d).count(), 1);
    assert!(degraded[0], "the first submitted request is the miss");
    let first = &responses[0];
    for response in &responses {
        assert_eq!(response.output.as_slice(), first.output.as_slice());
    }

    // An already-expired deadline inside a burst is counted at batch
    // formation but still served from the warm cache, undegraded.
    let expired = burst(&server, &request.clone().with_timeout(Duration::ZERO), 4);
    for response in &expired {
        assert!(response.cache_hit);
        assert!(!response.degraded);
        assert_eq!(response.output.as_slice(), first.output.as_slice());
    }
    let stats = server.stats();
    assert_eq!(stats.deadline_expired, 4);
    assert_eq!(stats.degraded, 1);
    assert_eq!(stats.failed, 0);
    server.shutdown();
}

#[test]
fn batch_and_fairness_counters_surface_on_status() {
    let server = Server::start(
        granii(),
        ServeConfig {
            workers: 1,
            max_batch: 4,
            ..ServeConfig::default()
        },
    );
    let request = ServeRequest::new(ModelKind::Gcn, tiny(Dataset::CoAuthorsCiteseer), 32, 64);
    let _ = burst(&server, &request, 16);
    let status = server.status();
    assert_eq!(status.batching.max_batch, 4);
    assert!(status.batching.groups >= 1, "every drain records its group");
    // Sketch quantiles carry bounded *relative* error, so allow a few
    // percent over the true bound of 4.
    assert!(
        status.batching.p95_size <= 4.5,
        "group sizes are bounded by max_batch (p95 {})",
        status.batching.p95_size
    );
    assert_eq!(status.fairness.tenant_queue_cap, 32); // depth 64 × share 0.5
    assert_eq!(
        status.fairness.tenants.len(),
        1,
        "one signature, one tenant"
    );
    assert_eq!(status.fairness.tenants[0].queued, 0, "drained at dequeue");
    assert!(status.fairness.tenants[0].admitted >= 16);
    // The snapshot round-trips with the new sections intact.
    let parsed = granii_serve::ServerStatus::from_json(&status.to_json()).expect("round-trip");
    assert_eq!(parsed.batching.max_batch, 4);
    assert_eq!(parsed.fairness.tenants.len(), 1);
    let rendered = status.to_string();
    assert!(rendered.contains("batching max 4"));
    assert!(rendered.contains("tenant cap 32"));
    server.shutdown();
}

#[test]
fn hot_tenant_cannot_capture_the_queue() {
    // Tiny queue, share 0.25 → one tenant may hold at most 2 of the 8
    // slots. Saturate with a single signature and verify the fairness bound
    // sheds while another signature still admits.
    let server = Server::start(
        granii(),
        ServeConfig {
            workers: 1,
            queue_depth: 8,
            max_batch: 1,
            fairness_share: 0.25,
            ..ServeConfig::default()
        },
    );
    let hot = ServeRequest::new(ModelKind::Gcn, tiny(Dataset::CoAuthorsCiteseer), 32, 64);
    let cold = ServeRequest::new(ModelKind::Sgc, tiny(Dataset::Mycielskian17), 16, 32);
    // Warm both signatures so the flood below queues behind fast hits.
    server.process(hot.clone()).expect("warm hot");
    server.process(cold.clone()).expect("warm cold");

    let mut tickets = Vec::new();
    let mut tenant_shed_seen = false;
    for _ in 0..200 {
        match server.submit(hot.clone()) {
            Ok(t) => tickets.push(t),
            Err(_) => {
                // Either the tenant bound or the global depth shed it; the
                // stats below pin down that the tenant bound fired.
                tenant_shed_seen = server.stats().tenant_shed > 0;
                if tenant_shed_seen {
                    break;
                }
            }
        }
    }
    assert!(tenant_shed_seen, "the hot tenant never hit its bound");
    // The other tenant still gets in while the hot one is saturated.
    let cold_response = server
        .process(cold.clone())
        .expect("cold tenant admits despite hot-tenant pressure");
    assert!(cold_response.cache_hit);
    for ticket in tickets {
        ticket.wait().expect("admitted hot requests complete");
    }
    let stats = server.stats();
    assert!(stats.tenant_shed >= 1);
    assert!(stats.shed >= stats.tenant_shed);
    assert_eq!(stats.failed, 0);
    server.shutdown();
}
