//! Per-tenant metering attribution invariants (ISSUE 10): the ledger's
//! per-tenant rows must sum to its server-wide totals row *bitwise* — for
//! every counter, under any mix of batched, serial, and degraded traffic —
//! because the ledger attributes exact integer shares, never averages.
//! Property-tested over batch bounds {1, 3, 8, 17} and randomized
//! multi-tenant traffic plans.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use granii_core::{Granii, GraniiOptions};
use granii_gnn::spec::ModelKind;
use granii_graph::datasets::{Dataset, Scale};
use granii_graph::Graph;
use granii_matrix::device::DeviceKind;
use granii_serve::{
    LatencyObjective, MeterRow, Outcome, ServeConfig, ServeRequest, Server, SloConfig, Ticket,
    TimelineConfig,
};
use proptest::prelude::*;

/// One fast-trained H100 instance shared by every test in this binary.
fn granii() -> Arc<Granii> {
    static GRANII: OnceLock<Arc<Granii>> = OnceLock::new();
    GRANII
        .get_or_init(|| {
            Arc::new(
                Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast())
                    .expect("fast offline training"),
            )
        })
        .clone()
}

fn graph() -> Arc<Graph> {
    static GRAPH: OnceLock<Arc<Graph>> = OnceLock::new();
    GRAPH
        .get_or_init(|| {
            Arc::new(
                Dataset::Mycielskian17
                    .load(Scale::Tiny)
                    .expect("tiny graph"),
            )
        })
        .clone()
}

/// Pinned tenant signatures (distinct fingerprints, all nonzero).
const TENANTS: [u64; 3] = [0xacc0_0001, 0xacc0_0002, 0xacc0_0003];

/// Asserts every ledger counter sums across tenants to the totals row
/// exactly (u64 addition — bitwise equality, no tolerance).
fn assert_rows_sum_to_totals(rows: &[MeterRow], totals: &MeterRow) {
    macro_rules! check {
        ($field:ident) => {
            assert_eq!(
                rows.iter().map(|r| r.$field).sum::<u64>(),
                totals.$field,
                concat!(
                    "per-tenant ",
                    stringify!($field),
                    " must sum to the totals bitwise"
                ),
            );
        };
    }
    check!(requests);
    check!(batched_requests);
    check!(charged_ns);
    check!(flops);
    check!(bytes);
    check!(queue_wait_ns);
    check!(batch_share_ppm);
    check!(cache_hits);
    check!(cache_misses);
    check!(sheds);
    check!(degraded);
    check!(slo_violations);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole invariant: under a randomized multi-tenant plan of
    /// bursts (which coalesce into batches when the bound allows), with
    /// some requests forced down the degraded path via a pre-expired
    /// deadline, the sum of per-tenant charges equals the server totals
    /// for every counter — and the ledger metered exactly the requests
    /// the server completed.
    #[test]
    fn tenant_charges_sum_to_totals_exactly(
        batch_index in 0usize..4,
        plan in proptest::collection::vec((0usize..3, 1usize..10, 0usize..4), 1..6),
    ) {
        let max_batch = [1usize, 3, 8, 17][batch_index];
        let server = Server::start(
            granii(),
            ServeConfig {
                workers: 2,
                max_batch,
                trace_sample_every: 0,
                // Keep the sampler quick so it provably runs concurrently
                // with the ledger writes it reads.
                timeline: TimelineConfig {
                    interval: Duration::from_millis(2),
                    ..TimelineConfig::default()
                },
                ..ServeConfig::default()
            },
        );
        let mut expected = 0u64;
        for &(tenant, burst, flavor) in &plan {
            let request = ServeRequest::new(ModelKind::Gcn, graph(), 64, 128)
                .with_signature(TENANTS[tenant]);
            // Flavor 3: a pre-expired deadline — a cache miss under it is
            // served degraded (default composition), a hit stays full
            // quality. Either way the charge must be attributed exactly.
            let request = if flavor == 3 {
                request.with_timeout(Duration::from_nanos(1))
            } else {
                request
            };
            let tickets: Vec<Ticket> = (0..burst)
                .map(|_| server.submit(request.clone()).expect("admitted"))
                .collect();
            for ticket in tickets {
                ticket.wait().expect("request completes");
                expected += 1;
            }
        }
        let rows = server.metering_rows();
        let totals = server.metering_totals();
        prop_assert_eq!(totals.requests, expected, "ledger metered every completed request");
        prop_assert_eq!(totals.requests, server.stats().completed);
        assert_rows_sum_to_totals(&rows, &totals);
        prop_assert!(totals.charged_ns > 0, "engine charges attributed");
        prop_assert!(totals.flops > 0, "flops attributed");
        prop_assert!(totals.bytes > 0, "bytes attributed");
        // Every tenant that sent traffic has a row, ranked by charge.
        let active: std::collections::BTreeSet<u64> =
            plan.iter().map(|&(t, _, _)| TENANTS[t]).collect();
        for fp in active {
            prop_assert!(
                rows.iter().any(|r| r.fingerprint == fp && r.requests > 0),
                "tenant {:016x} has a ledger row", fp
            );
        }
        prop_assert!(
            rows.windows(2).all(|w| w[0].charged_ns >= w[1].charged_ns),
            "rows ranked by charged time descending"
        );
        server.shutdown();
    }
}

/// Deterministic mixed-path check: force real coalesced batches (one busy
/// worker, a burst behind it), confirm batched + serial traffic both
/// landed, and the invariant still holds down to the batch-share meter.
#[test]
fn batched_and_serial_paths_attribute_exactly() {
    let server = Server::start(
        granii(),
        ServeConfig {
            workers: 1,
            max_batch: 8,
            trace_sample_every: 0,
            ..ServeConfig::default()
        },
    );
    let request = ServeRequest::new(ModelKind::Gcn, graph(), 64, 128).with_signature(TENANTS[0]);
    // Warm the plan, then burst until a real batch (>= 2) forms.
    server.process(request.clone()).expect("warm-up completes");
    let mut batched_seen = false;
    for _ in 0..50 {
        let tickets: Vec<Ticket> = (0..10)
            .map(|_| server.submit(request.clone()).expect("admitted"))
            .collect();
        for ticket in tickets {
            batched_seen |= ticket.wait().expect("completes").batch_size >= 2;
        }
        if batched_seen {
            break;
        }
    }
    assert!(batched_seen, "no batch of two or more ever formed");
    let rows = server.metering_rows();
    let totals = server.metering_totals();
    assert_rows_sum_to_totals(&rows, &totals);
    assert_eq!(totals.requests, server.stats().completed);
    assert!(totals.batched_requests > 0, "batched traffic metered");
    assert!(
        totals.batched_requests < totals.requests,
        "serial traffic metered too (warm-up at minimum)"
    );
    let row = rows
        .iter()
        .find(|r| r.fingerprint == TENANTS[0])
        .expect("tenant row");
    assert!(
        row.mean_batch_share() > 0.0 && row.mean_batch_share() <= 1.0,
        "batch share is a fraction of an execute: {}",
        row.mean_batch_share()
    );
    server.shutdown();
}

/// Sheds and SLO violations are attributed per tenant and agree with the
/// server-wide counters.
#[test]
fn sheds_and_slo_violations_are_attributed() {
    // Zero-threshold objectives: every completed request violates its
    // outcome's objective, so the ledger's violation meter must equal the
    // completion counter.
    let server = Server::start(
        granii(),
        ServeConfig {
            workers: 1,
            queue_depth: 2,
            max_batch: 1,
            slo: SloConfig {
                objectives: vec![
                    LatencyObjective::new(Outcome::Hit, 0.0, 0.99),
                    LatencyObjective::new(Outcome::Miss, 0.0, 0.99),
                    LatencyObjective::new(Outcome::Degraded, 0.0, 0.99),
                ],
                ..SloConfig::default()
            },
            ..ServeConfig::default()
        },
    );
    let request = ServeRequest::new(ModelKind::Gcn, graph(), 64, 128).with_signature(TENANTS[1]);
    server.process(request.clone()).expect("warm-up completes");
    // Flood a depth-2 queue to force sheds; completed requests all violate
    // the zero-threshold SLO.
    let tickets: Vec<Ticket> = (0..64)
        .filter_map(|_| server.submit(request.clone()).ok())
        .collect();
    for ticket in tickets {
        let _ = ticket.wait();
    }
    let stats = server.stats();
    let totals = server.metering_totals();
    assert!(stats.shed > 0, "flood must shed against a depth-2 queue");
    assert_eq!(
        totals.sheds, stats.shed,
        "every shed attributed to its tenant"
    );
    assert_eq!(
        totals.slo_violations, stats.completed,
        "zero-threshold objectives make every completion a violation"
    );
    assert_rows_sum_to_totals(&server.metering_rows(), &totals);
    // The status surface carries the same story.
    let status = server.status();
    assert_eq!(status.metering.total_requests, stats.completed);
    assert_eq!(status.metering.total_sheds, stats.shed);
    let top = status.metering.tenants.first().expect("top tenant row");
    assert_eq!(top.fingerprint, format!("{:016x}", TENANTS[1]));
    server.shutdown();
}
