//! Scrape-endpoint acceptance (ISSUE 10): a live server with the listener
//! enabled must answer `/metrics` with *strictly* well-formed Prometheus
//! text exposition (validated by a full-format checker, not a substring
//! grep), `/healthz` with 200, and `/readyz` according to queue/SLO state —
//! including per-tenant series labeled with the metering fingerprints.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use granii_core::{Granii, GraniiOptions};
use granii_gnn::spec::ModelKind;
use granii_graph::datasets::{Dataset, Scale};
use granii_graph::Graph;
use granii_matrix::device::DeviceKind;
use granii_serve::{render_prometheus, ScrapeConfig, ServeConfig, ServeRequest, Server};

fn granii() -> Arc<Granii> {
    static GRANII: OnceLock<Arc<Granii>> = OnceLock::new();
    GRANII
        .get_or_init(|| {
            Arc::new(
                Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast())
                    .expect("fast offline training"),
            )
        })
        .clone()
}

fn graph() -> Arc<Graph> {
    static GRAPH: OnceLock<Arc<Graph>> = OnceLock::new();
    GRAPH
        .get_or_init(|| {
            Arc::new(
                Dataset::Mycielskian17
                    .load(Scale::Tiny)
                    .expect("tiny graph"),
            )
        })
        .clone()
}

fn get(addr: SocketAddr, path: &str) -> (u32, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to scrape listener");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    let code: u32 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (code, body.to_owned())
}

// ---------------------------------------------------------------------------
// Strict text-exposition checker. Validates the whole document line by
// line: metric-name grammar, label syntax and escaping, float-parseable
// values, TYPE declarations preceding their samples, one TYPE per family,
// quantile labels in [0, 1], and counters named `_total` (or `_sum`/
// `_count` of a summary).
// ---------------------------------------------------------------------------

fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parses `{k="v",...}`; returns the labels and the byte length consumed
/// (including both braces). Panics with context on malformed syntax.
fn parse_labels(rest: &str, line: &str) -> (Vec<(String, String)>, usize) {
    assert!(
        rest.starts_with('{'),
        "label block must open with '{{': {line}"
    );
    let mut labels = Vec::new();
    let bytes = rest.as_bytes();
    let mut i = 1;
    loop {
        if bytes.get(i) == Some(&b'}') {
            return (labels, i + 1);
        }
        let name_start = i;
        while i < bytes.len() && bytes[i] != b'=' {
            i += 1;
        }
        let name = &rest[name_start..i];
        assert!(is_valid_label_name(name), "bad label name {name:?}: {line}");
        i += 1; // '='
        assert_eq!(
            bytes.get(i),
            Some(&b'"'),
            "label value must be quoted: {line}"
        );
        i += 1;
        let mut value = String::new();
        loop {
            match bytes.get(i) {
                Some(&b'\\') => {
                    let escaped = bytes.get(i + 1).expect("escape sequence complete");
                    assert!(
                        matches!(escaped, b'\\' | b'"' | b'n'),
                        "bad escape in label value: {line}"
                    );
                    value.push(*escaped as char);
                    i += 2;
                }
                Some(&b'"') => {
                    i += 1;
                    break;
                }
                Some(&c) => {
                    value.push(c as char);
                    i += 1;
                }
                None => panic!("unterminated label value: {line}"),
            }
        }
        labels.push((name.to_owned(), value));
        match bytes.get(i) {
            Some(&b',') => i += 1,
            Some(&b'}') => {}
            _ => panic!("expected ',' or '}}' after label: {line}"),
        }
    }
}

/// One parsed sample line.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Validates the full document; returns the parsed samples and the
/// name → declared-type map.
fn check_exposition(body: &str) -> (Vec<Sample>, HashMap<String, String>) {
    let mut types: HashMap<String, String> = HashMap::new();
    let mut helped: HashMap<String, bool> = HashMap::new();
    let mut samples = Vec::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').expect("HELP has name and text");
            assert!(is_valid_metric_name(name), "bad HELP name {name:?}");
            assert!(!help.is_empty(), "empty HELP text for {name}");
            helped.insert(name.to_owned(), true);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE has name and kind");
            assert!(is_valid_metric_name(name), "bad TYPE name {name:?}");
            assert!(
                matches!(
                    kind,
                    "counter" | "gauge" | "summary" | "histogram" | "untyped"
                ),
                "unknown TYPE kind {kind:?} for {name}"
            );
            assert!(
                !types.contains_key(name),
                "family {name} declared TYPE twice"
            );
            types.insert(name.to_owned(), kind.to_owned());
            continue;
        }
        assert!(
            !line.starts_with('#'),
            "only HELP/TYPE comments allowed: {line}"
        );
        // Sample line: name[{labels}] value
        let name_end = line
            .find(['{', ' '])
            .unwrap_or_else(|| panic!("sample has no value: {line}"));
        let name = &line[..name_end];
        assert!(is_valid_metric_name(name), "bad metric name {name:?}");
        let rest = &line[name_end..];
        let (labels, consumed) = if rest.starts_with('{') {
            parse_labels(rest, line)
        } else {
            (Vec::new(), 0)
        };
        let value_text = rest[consumed..].trim();
        let value: f64 = value_text
            .parse()
            .unwrap_or_else(|_| panic!("unparseable value {value_text:?}: {line}"));
        // Every sample must belong to a declared family: exact name for
        // counters/gauges, or the base name for summary _sum/_count.
        let family = types.get(name).cloned().or_else(|| {
            name.strip_suffix("_sum")
                .or_else(|| name.strip_suffix("_count"))
                .and_then(|base| types.get(base).cloned())
                .filter(|kind| kind == "summary" || kind == "histogram")
        });
        let family = family.unwrap_or_else(|| panic!("sample before its TYPE: {line}"));
        if family == "counter" {
            assert!(
                name.ends_with("_total"),
                "counter {name} must end in _total"
            );
            assert!(value >= 0.0, "counter {name} must be nonnegative");
        }
        for (label, val) in &labels {
            if label == "quantile" {
                let q: f64 = val.parse().expect("quantile label parses");
                assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
                assert_eq!(family, "summary", "quantile label on non-summary {name}");
            }
        }
        samples.push(Sample {
            name: name.to_owned(),
            labels,
            value,
        });
    }
    for name in types.keys() {
        assert!(
            helped.contains_key(name),
            "family {name} has TYPE but no HELP"
        );
    }
    (samples, types)
}

#[test]
fn live_scrape_is_strictly_well_formed_with_tenant_series() {
    let tenant_a = 0x5ca1_ab1e_u64;
    let tenant_b = 0xf005_ba11_u64;
    let server = Server::start(
        granii(),
        ServeConfig {
            workers: 2,
            trace_sample_every: 0,
            scrape: ScrapeConfig {
                enabled: true,
                addr: "127.0.0.1:0".to_owned(),
            },
            ..ServeConfig::default()
        },
    );
    let addr = server.scrape_addr().expect("scrape listener bound");

    // Health and readiness before any traffic: alive and ready.
    let (code, body) = get(addr, "/healthz");
    assert_eq!(code, 200, "{body}");
    let (code, body) = get(addr, "/readyz");
    assert_eq!(code, 200, "{body}");

    // Serve traffic from two tenants so the per-tenant series exist.
    for _ in 0..4 {
        server
            .process(ServeRequest::new(ModelKind::Gcn, graph(), 64, 128).with_signature(tenant_a))
            .expect("tenant A request");
    }
    server
        .process(ServeRequest::new(ModelKind::Gcn, graph(), 64, 128).with_signature(tenant_b))
        .expect("tenant B request");

    let (code, body) = get(addr, "/metrics");
    assert_eq!(code, 200);
    let (samples, types) = check_exposition(&body);
    assert_eq!(
        types.get("granii_serve_requests_total").map(String::as_str),
        Some("counter")
    );
    assert_eq!(
        types.get("granii_serve_latency_ms").map(String::as_str),
        Some("summary")
    );
    let completed = samples
        .iter()
        .find(|s| {
            s.name == "granii_serve_requests_total"
                && s.labels
                    .contains(&("state".to_owned(), "completed".to_owned()))
        })
        .expect("completed counter sample");
    assert_eq!(completed.value, 5.0);
    // Per-tenant series carry the hex fingerprints, and the heavier tenant
    // carries more requests.
    let tenant_requests = |fp: u64| {
        samples
            .iter()
            .find(|s| {
                s.name == "granii_serve_tenant_requests_total"
                    && s.labels
                        .contains(&("tenant".to_owned(), format!("{fp:016x}")))
            })
            .map(|s| s.value)
    };
    assert_eq!(tenant_requests(tenant_a), Some(4.0));
    assert_eq!(tenant_requests(tenant_b), Some(1.0));
    let charged: f64 = samples
        .iter()
        .filter(|s| s.name == "granii_serve_tenant_charged_ms_total")
        .map(|s| s.value)
        .sum();
    assert!(charged > 0.0, "tenants carry engine charges");

    // The pure renderer agrees with the live endpoint's family set.
    let rendered = render_prometheus(&server.status());
    let (_, rendered_types) = check_exposition(&rendered);
    assert_eq!(types.len(), rendered_types.len());

    let (code, _) = get(addr, "/nope");
    assert_eq!(code, 404);

    server.shutdown();
}
