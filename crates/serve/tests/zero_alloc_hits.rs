//! The observability zero-overhead contract: with trace sampling disabled
//! (`trace_sample_every: 0`), steady-state cache-hit serving performs zero
//! dense/sparse/workspace heap allocations — the same counters the
//! compile-once engine's steady-state contract is asserted against.
//!
//! The contract covers the full per-request observability stack: the
//! input-drift lane's `InputProfile::extract` (one O(nodes) pass over the
//! CSR row pointers, no buffers), the latency sketches (atomic log-bucket
//! increments), the HyperLogLog distinct counter, and the SLO window math
//! all ride the hit path and must stay off the tracked allocators.
//!
//! Single `#[test]` binary: the allocation counters are process-global, so
//! the assertion must run where no other test allocates matrices
//! concurrently.

use std::sync::Arc;

use granii_core::runtime::allocation_counter_total;
use granii_core::{Granii, GraniiOptions};
use granii_gnn::spec::ModelKind;
use granii_graph::datasets::{Dataset, Scale};
use granii_matrix::device::DeviceKind;
use granii_serve::{ServeConfig, ServeRequest, Server};

#[test]
fn unsampled_cache_hits_do_not_allocate() {
    let granii = Arc::new(
        Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast())
            .expect("fast offline training"),
    );
    let graph = Arc::new(Dataset::Mycielskian17.load(Scale::Tiny).unwrap());
    let request = || ServeRequest::new(ModelKind::Gcn, graph.clone(), 64, 128);

    granii_telemetry::reset();
    granii_telemetry::enable();
    let mut config = ServeConfig {
        workers: 1,
        trace_sample_every: 0,
        ..ServeConfig::default()
    };
    // Crank the timeline sampler so it provably ticks (and registers
    // per-tenant columns) *during* the zero-alloc loops below: the sampler
    // and the metering ledger must not perturb the hit path's contract.
    assert!(config.timeline.enabled, "sampler must be on by default");
    config.timeline.interval = std::time::Duration::from_millis(2);
    assert!(
        config.inspect.enabled,
        "the input-drift lane must be on so this test covers its per-request \
         profile extraction"
    );
    let server = Server::start(granii, config);

    // Warm the signature: the miss selects, binds, and allocates workspaces.
    let warm = server.process(request()).expect("warm-up miss completes");
    assert!(!warm.cache_hit);

    let before = allocation_counter_total();
    let (recorder_before, dropped_before) = server.recorder_counters();
    for _ in 0..10 {
        let response = server.process(request()).expect("hit completes");
        assert!(response.cache_hit, "warmed signature must hit");
    }
    let after = allocation_counter_total();
    assert_eq!(
        after - before,
        0,
        "unsampled cache hits allocated dense/sparse/workspace buffers"
    );
    // The flight recorder is always-on — each hit streams enqueue, batch
    // formation, cache-hit, and completion records through the ring — so
    // the zero-alloc budget above already includes `record()`. Prove the
    // recorder was actually live (not silently gated) across the loop.
    let (recorder_after, dropped_after) = server.recorder_counters();
    assert!(
        recorder_after - recorder_before >= 40,
        "recorder must stream >=4 records per hit while staying alloc-free \
         ({} -> {})",
        recorder_before,
        recorder_after
    );
    assert_eq!(
        dropped_after, dropped_before,
        "single-worker serving must not collide on ring slots"
    );
    // The hits above flowed through the whole observability stack: confirm
    // the sketches and the distinct counter actually recorded (this test
    // would be vacuous if they were silently skipped on the hit path).
    let hit_sketch = server
        .latency_sketches()
        .into_iter()
        .find(|s| s.name == "serve.latency.hit")
        .expect("hit latency sketch");
    assert_eq!(hit_sketch.count, 10, "every hit recorded into the sketch");
    let status = server.status();
    assert!(
        status.distinct_signatures > 0.5,
        "distinct-signature estimator saw the signature"
    );
    assert_eq!(status.input.len(), 1, "input-drift lane tracked the key");

    // Batched hits ride the same contract: the wide multi-RHS buffers were
    // pre-warmed when the miss bound the plan (`ensure_batch` at bind
    // time), so signature-coalesced groups must not allocate either. Burst
    // rounds until a real batch (≥2) formed; every round — batched or not —
    // must stay at zero.
    let mut batched_seen = false;
    for _ in 0..50 {
        let before = allocation_counter_total();
        let tickets: Vec<_> = (0..12)
            .map(|_| server.submit(request()).expect("burst submit"))
            .collect();
        for ticket in tickets {
            let response = ticket.wait().expect("batched hit completes");
            assert!(response.cache_hit, "warmed signature must hit");
            batched_seen |= response.batch_size >= 2;
        }
        assert_eq!(
            allocation_counter_total() - before,
            0,
            "batched cache hits allocated dense/sparse/workspace buffers"
        );
        if batched_seen {
            break;
        }
    }
    assert!(batched_seen, "no batch of two or more ever formed");
    assert!(server.stats().batched_requests >= 2);

    // The metering ledger rode every one of those requests (all-atomic
    // recording inside the zero-alloc budget asserted above): its totals
    // must match the completion counter, and the per-tenant rows must sum
    // to the totals exactly.
    let totals = server.metering_totals();
    assert_eq!(
        totals.requests,
        server.stats().completed,
        "ledger metered every completed request"
    );
    let tenant_sum: u64 = server.metering_rows().iter().map(|r| r.charged_ns).sum();
    assert_eq!(
        tenant_sum, totals.charged_ns,
        "per-tenant charges sum to the totals bitwise"
    );
    assert!(totals.charged_ns > 0, "hits carried engine charges");
    // And the sampler thread was live alongside the loops: the time-series
    // ring holds frames including this tenant's lane.
    let timeline = server.timeline_snapshot();
    assert!(timeline.frames() > 0, "sampler captured frames");
    assert!(
        timeline.column("serve.completed").is_some(),
        "global counter lane sampled"
    );

    server.shutdown();
    granii_telemetry::disable();
    granii_telemetry::reset();
}
