//! End-to-end incident capture: the input-drift anomaly from the
//! `input_drift` scenario (hub edges injected under a pinned signature)
//! must *automatically* produce an incident bundle — no operator action —
//! whose ring excerpt contains the flagging record, the batch group that
//! carried the triggering request, and the selection audit (chosen
//! composition, per-candidate predicted costs, and the input statistics
//! that keyed the choice). The bundle must land on disk as valid JSON,
//! round-trip through the parser, and render a timeline that names the
//! triggering signature.
//!
//! Runs as a single `#[test]` in its own binary: it reads global telemetry
//! and writes a scratch incident directory.

use std::collections::BTreeSet;
use std::sync::Arc;

use granii_core::{Granii, GraniiOptions};
use granii_gnn::spec::ModelKind;
use granii_graph::Graph;
use granii_matrix::device::DeviceKind;
use granii_serve::{
    IncidentBundle, IncidentConfig, ServeConfig, ServeRequest, ServeResponse, Server,
};

/// Tenant-pinned plan-cache signature (same rationale as the input-drift
/// test: the mutation must hide behind a cache hit, not miss honestly).
const SIGNATURE: u64 = 0x5eed_f00d_0000_0002;

fn base_edges(n: usize, edges_wanted: usize) -> BTreeSet<(usize, usize)> {
    let mut edges = BTreeSet::new();
    let mut state = 0x243f_6a88_85a3_08d3u64;
    while edges.len() < edges_wanted {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (state >> 33) as usize % n;
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let v = (state >> 33) as usize % n;
        if u != v {
            edges.insert((u.min(v), u.max(v)));
        }
    }
    edges
}

fn inject_hubs(mut edges: BTreeSet<(usize, usize)>, n: usize, hubs: usize) -> Graph {
    for hub in 0..hubs {
        for v in 0..n {
            if v != hub {
                edges.insert((hub.min(v), hub.max(v)));
            }
        }
    }
    let list: Vec<_> = edges.into_iter().collect();
    Graph::undirected_from_edges(n, &list).unwrap()
}

fn serve(server: &Server, graph: &Arc<Graph>) -> ServeResponse {
    server
        .process(
            ServeRequest::new(ModelKind::Gcn, graph.clone(), 64, 128)
                .with_iterations(100)
                .with_signature(SIGNATURE),
        )
        .expect("request completes")
}

#[test]
fn input_drift_anomaly_automatically_produces_a_correlated_bundle() {
    let n = 1024;
    let edges = base_edges(n, 4 * n);
    let base_list: Vec<_> = edges.iter().copied().collect();
    let base = Arc::new(Graph::undirected_from_edges(n, &base_list).unwrap());
    let mutated = Arc::new(inject_hubs(edges, n, 4));
    assert!(mutated.avg_degree() > base.avg_degree() + 3.0);

    let granii = Arc::new(
        Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast())
            .expect("fast offline training"),
    );

    let incident_dir =
        std::env::temp_dir().join(format!("granii-incident-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&incident_dir);

    granii_telemetry::reset();
    granii_telemetry::enable();
    let server = Server::start(
        granii,
        ServeConfig {
            workers: 1,
            incident: IncidentConfig {
                dir: Some(incident_dir.clone()),
                ..IncidentConfig::default()
            },
            ..ServeConfig::default()
        },
    );

    // Phase 1: stable serving — one selection, then steady hits. Nothing
    // may trip the capturer.
    serve(&server, &base);
    for _ in 0..5 {
        assert!(serve(&server, &base).cache_hit);
    }
    assert!(
        server.incidents().is_empty(),
        "clean serving captures nothing"
    );

    // Phase 2: the graph mutates under the pinned signature; the inspector
    // flags within k_consecutive requests and the flag trips the capturer.
    for _ in 0..5 {
        serve(&server, &mutated);
    }
    let stats = server.stats();
    assert_eq!(stats.input_drift_flagged, 1);
    assert_eq!(stats.completed, 11);

    let bundles = server.incidents();
    assert_eq!(bundles.len(), 1, "one flag, one bundle (cooldown holds)");
    let bundle = &bundles[0];

    // Trigger names the offending signature and carries the drift deltas.
    assert_eq!(bundle.trigger.kind, "input_drift");
    assert_eq!(bundle.trigger.fingerprint, format!("{SIGNATURE:016x}"));
    assert_eq!(bundle.trigger.model, "gcn");
    assert!(bundle.trigger.value > 0.0, "band-L1 delta recorded");

    // Recorder health: always-on, nothing dropped at this load.
    assert!(bundle.recorder.written > 0);
    assert_eq!(bundle.recorder.dropped, 0);

    // Ring excerpt: the flagging record itself...
    let flag = bundle
        .ring
        .iter()
        .find(|e| e.kind == "input_drift_flag")
        .expect("ring excerpt contains the flagging record");
    assert_eq!(flag.fingerprint, format!("{SIGNATURE:016x}"));
    // ...and the batch group that carried the triggering request.
    let carrying_group = bundle
        .ring
        .iter()
        .find(|e| e.kind == "batch_formed" && e.members.contains(&flag.id))
        .expect("ring excerpt contains the batch group that executed the triggering request");
    assert_eq!(carrying_group.fingerprint, format!("{SIGNATURE:016x}"));
    assert!(carrying_group.batch >= 1);
    let mut prev = None;
    for entry in &bundle.ring {
        if let Some(p) = prev {
            assert!(entry.seq > p, "ring excerpt sorted and duplicate-free");
        }
        prev = Some(entry.seq);
    }

    // Selection audit: the composition the cache was serving, every
    // candidate's predicted cost, and the input statistics that keyed it.
    let selection = bundle
        .selection
        .as_ref()
        .expect("audit table retained the triggering signature's selection");
    assert_eq!(selection.fingerprint, format!("{SIGNATURE:016x}"));
    assert!(!selection.composition.is_empty());
    assert!(!selection.degraded);
    assert!(
        !selection.predicted.is_empty(),
        "per-candidate predicted costs captured"
    );
    assert!(selection
        .predicted
        .iter()
        .any(|c| c.composition == selection.composition));
    assert!(selection
        .predicted
        .iter()
        .all(|c| c.predicted_seconds > 0.0));
    let input = selection
        .input
        .as_ref()
        .expect("input statistics that keyed the selection");
    assert!(!input.bands.is_empty());
    let band_mass: f64 = input.bands.iter().sum();
    assert!(
        band_mass > 0.5 && band_mass < 1.5,
        "degree-band distribution sums to ~1, got {band_mass}"
    );
    assert!(input.avg_degree > 0.0);

    // Merged + per-outcome sketches and the embedded status snapshot.
    assert!(bundle
        .sketches
        .iter()
        .any(|s| s.name == "serve.latency.all" && s.count > 0));
    assert!(bundle.status.completed >= 8, "status captured mid-incident");
    assert!(bundle
        .events
        .iter()
        .any(|line| line.contains("serve.input_drift")));

    // The artifact on disk: exactly one file, valid JSON, round-trips.
    let mut files: Vec<_> = std::fs::read_dir(&incident_dir)
        .expect("incident dir created")
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    assert_eq!(files.len(), 1, "one bundle file written: {files:?}");
    let name = files[0].file_name().unwrap().to_string_lossy().into_owned();
    assert!(
        name.starts_with("incident-") && name.contains("input_drift") && name.ends_with(".json"),
        "artifact name carries seq and trigger kind: {name}"
    );
    let json = std::fs::read_to_string(&files[0]).unwrap();
    let parsed = IncidentBundle::from_json(&json).expect("artifact parses");
    assert_eq!(parsed.seq, bundle.seq);
    assert_eq!(parsed.trigger.kind, "input_drift");
    assert_eq!(parsed.ring.len(), bundle.ring.len());
    let reparsed = IncidentBundle::from_json(&parsed.to_json()).unwrap();
    assert_eq!(reparsed.trigger.fingerprint, bundle.trigger.fingerprint);

    // The human-readable timeline names the triggering signature and shows
    // the chosen candidate.
    let rendered = format!("{parsed}");
    assert!(rendered.contains("input_drift"));
    assert!(rendered.contains(&format!("{SIGNATURE:016x}")));
    assert!(rendered.contains("<- chosen"));
    assert!(rendered.contains("input_drift_flag"));

    // The status surface counts the capture.
    let status = server.status();
    assert_eq!(status.recorder.incidents, 1);
    assert_eq!(status.recorder.last_trigger, "input_drift");
    assert!(status.recorder.written > 0);

    server.shutdown();
    granii_telemetry::disable();
    granii_telemetry::reset();
    let _ = std::fs::remove_dir_all(&incident_dir);
}
