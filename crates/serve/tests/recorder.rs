//! Flight-recorder ring under fire: concurrent writers wrapping the ring
//! many times over must never produce a torn or duplicated record, the
//! drop counter must stay monotone, and snapshots taken mid-write must
//! only ever contain fully-published records.
//!
//! The protocol under test (see `serve::recorder`): slot stamps encode
//! never-written / mid-copy / published-for-index; writers claim via CAS
//! and drop on collision instead of blocking; readers double-check the
//! stamp around a volatile copy and discard torn reads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use granii_serve::{FlightRecorder, RecordKind, RecorderConfig};

/// A payload whose fields are all derived from the sequence-unique `probe`
/// value: any torn read (fields from two different records) breaks the
/// relationships and the asserts below catch it.
fn probe_kind(probe: u64) -> RecordKind {
    RecordKind::Complete {
        outcome: "hit",
        latency_us: probe.wrapping_mul(3),
        batch: (probe % 7) as u32 + 1,
        degraded: probe.is_multiple_of(2),
    }
}

fn assert_untorn(id: u64, fingerprint: u64, kind: &RecordKind) {
    assert_eq!(
        fingerprint,
        id.wrapping_mul(0x9e37_79b9),
        "torn fingerprint"
    );
    match *kind {
        RecordKind::Complete {
            latency_us,
            batch,
            degraded,
            ..
        } => {
            assert_eq!(latency_us, id.wrapping_mul(3), "torn latency payload");
            assert_eq!(batch, (id % 7) as u32 + 1, "torn batch payload");
            assert_eq!(degraded, id.is_multiple_of(2), "torn degraded payload");
        }
        ref other => panic!("unexpected record kind {other:?}"),
    }
}

#[test]
fn eight_writers_wrap_the_ring_without_tearing_or_duplicates() {
    const WRITERS: usize = 8;
    const PER_WRITER: u64 = 20_000;
    // Small ring so the writers lap it thousands of times.
    let recorder = Arc::new(FlightRecorder::new(RecorderConfig { capacity: 64 }));

    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let recorder = recorder.clone();
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    let probe = (w as u64) * PER_WRITER + i;
                    recorder.record(
                        probe,
                        probe.wrapping_mul(0x9e37_79b9),
                        "gcn",
                        probe_kind(probe),
                    );
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    let total = WRITERS as u64 * PER_WRITER;
    assert_eq!(recorder.written(), total, "every record claimed an index");
    let dropped = recorder.dropped();
    assert!(
        dropped < total,
        "collisions may drop some records, never all ({dropped}/{total})"
    );

    let snapshot = recorder.snapshot();
    assert!(!snapshot.is_empty(), "quiesced ring has published records");
    assert!(snapshot.len() <= recorder.capacity());
    let mut prev_seq = None;
    for record in &snapshot {
        // snapshot() sorts by seq; strict inequality also proves no
        // duplicated slot survived.
        if let Some(prev) = prev_seq {
            assert!(record.seq > prev, "duplicate or unsorted seq");
        }
        prev_seq = Some(record.seq);
        assert_eq!(record.model, "gcn");
        assert_untorn(record.id, record.fingerprint, &record.kind);
    }
    // After the dust settles, the survivors are all from the newest laps.
    let oldest = snapshot.first().unwrap().seq;
    assert!(
        oldest >= total - 2 * recorder.capacity() as u64,
        "survivors must come from the final laps (oldest seq {oldest})"
    );
}

#[test]
fn drop_counter_is_monotone_while_writers_run() {
    let recorder = Arc::new(FlightRecorder::new(RecorderConfig { capacity: 16 }));
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..4)
        .map(|w| {
            let recorder = recorder.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let probe = (w as u64) << 32 | i;
                    recorder.record(
                        probe,
                        probe.wrapping_mul(0x9e37_79b9),
                        "gcn",
                        probe_kind(probe),
                    );
                    i += 1;
                }
            })
        })
        .collect();

    let mut last_dropped = 0;
    let mut last_written = 0;
    for _ in 0..200 {
        let dropped = recorder.dropped();
        let written = recorder.written();
        assert!(dropped >= last_dropped, "drop counter went backwards");
        assert!(written >= last_written, "write counter went backwards");
        last_dropped = dropped;
        last_written = written;
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    for handle in writers {
        handle.join().unwrap();
    }
}

#[test]
fn snapshots_taken_while_writing_never_observe_torn_records() {
    let recorder = Arc::new(FlightRecorder::new(RecorderConfig { capacity: 32 }));
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..4)
        .map(|w| {
            let recorder = recorder.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let probe = (w as u64) << 32 | i;
                    recorder.record(
                        probe,
                        probe.wrapping_mul(0x9e37_79b9),
                        "gcn",
                        probe_kind(probe),
                    );
                    i += 1;
                }
            })
        })
        .collect();

    for _ in 0..500 {
        let snapshot = recorder.snapshot();
        let mut prev_seq = None;
        for record in &snapshot {
            if let Some(prev) = prev_seq {
                assert!(record.seq > prev, "duplicate seq in live snapshot");
            }
            prev_seq = Some(record.seq);
            assert_untorn(record.id, record.fingerprint, &record.kind);
        }
    }
    stop.store(true, Ordering::Relaxed);
    for handle in writers {
        handle.join().unwrap();
    }
}
