//! Gauge-freshness acceptance: the `serve.queue_depth` gauge must read 0
//! after a graceful shutdown drains the queue, the shed path must refresh the
//! gauges it would otherwise leave stale, and the outcome-split latency
//! histograms must partition completed requests exactly.
//!
//! Single `#[test]` binary: the telemetry metrics registry is
//! process-global, so no other test may record serve metrics concurrently.

use std::sync::Arc;

use granii_core::{Granii, GraniiOptions};
use granii_gnn::spec::ModelKind;
use granii_graph::datasets::{Dataset, Scale};
use granii_matrix::device::DeviceKind;
use granii_serve::{ServeConfig, ServeError, ServeRequest, Server};
use granii_telemetry::MetricsSnapshot;

fn gauge(snapshot: &MetricsSnapshot, name: &str) -> Option<f64> {
    snapshot
        .gauges
        .iter()
        .find(|(n, _)| n == name)
        .map(|&(_, v)| v)
}

fn histogram_count(snapshot: &MetricsSnapshot, name: &str) -> u64 {
    snapshot
        .histograms
        .iter()
        .find(|h| h.name == name)
        .map_or(0, |h| h.count)
}

#[test]
fn queue_depth_gauge_drains_to_zero_and_latency_splits_partition() {
    let granii = Arc::new(
        Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast())
            .expect("fast offline training"),
    );
    let graph = Arc::new(Dataset::CoAuthorsCiteseer.load(Scale::Tiny).unwrap());
    let request = || ServeRequest::new(ModelKind::Gcn, graph.clone(), 64, 128);

    granii_telemetry::reset();
    granii_telemetry::enable();

    // Burst 8 requests at a single worker so the queue observably builds,
    // then shut down: the drain must serve every accepted request and leave
    // the gauge at its true final value — zero.
    let server = Server::start(
        granii.clone(),
        ServeConfig {
            workers: 1,
            queue_depth: 16,
            ..ServeConfig::default()
        },
    );
    let tickets: Vec<_> = (0..8)
        .map(|_| server.submit(request()).expect("queue has room"))
        .collect();
    server.shutdown();
    for ticket in tickets {
        ticket.wait().expect("drained request completes");
    }

    let snapshot = granii_telemetry::metrics_snapshot();
    assert_eq!(
        gauge(&snapshot, "serve.queue_depth"),
        Some(0.0),
        "queue-depth gauge must read 0 after the shutdown drain"
    );
    assert_eq!(
        gauge(&snapshot, "serve.cache_hit_rate").map(|v| v > 0.0),
        Some(true),
        "hit-rate gauge tracks the warmed cache"
    );

    // One signature, 8 requests: exactly 1 miss, 7 hits, 0 degraded — the
    // outcome-split histograms must partition the combined latency histogram.
    assert_eq!(histogram_count(&snapshot, "serve.latency.miss"), 1);
    assert_eq!(histogram_count(&snapshot, "serve.latency.hit"), 7);
    assert_eq!(histogram_count(&snapshot, "serve.latency.degraded"), 0);
    assert_eq!(histogram_count(&snapshot, "serve.request_latency"), 8);

    // Shed path: a zero-depth queue sheds every submit, and the shed branch
    // must still refresh both gauges rather than leave the last drain values.
    let full = Server::start(
        granii,
        ServeConfig {
            workers: 1,
            queue_depth: 0,
            ..ServeConfig::default()
        },
    );
    match full.submit(request()) {
        Err(ServeError::Overloaded { .. }) => {}
        other => panic!("expected Overloaded, got {other:?}", other = other.err()),
    }
    full.shutdown();
    let snapshot = granii_telemetry::metrics_snapshot();
    let shed = snapshot
        .counters
        .iter()
        .find(|(n, _)| n == "serve.shed")
        .map(|&(_, v)| v);
    assert_eq!(shed, Some(1));
    assert_eq!(
        gauge(&snapshot, "serve.queue_depth"),
        Some(0.0),
        "shed branch reports the (full) queue's observed depth"
    );

    granii_telemetry::disable();
    granii_telemetry::reset();
}
