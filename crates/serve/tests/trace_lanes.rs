//! Request-scoped tracing acceptance: 1-in-N sampled requests render as
//! per-request lanes (virtual tids at `TRACE_LANE_BASE + id`) through the
//! existing Chrome-trace exporter, unsampled requests emit no lane, and the
//! structured event stream records every request's lifecycle.
//!
//! Single `#[test]` binary: the span buffers and event sink are
//! process-global, so no other test may record serve spans concurrently.

use std::sync::Arc;

use granii_core::{Granii, GraniiOptions};
use granii_gnn::spec::ModelKind;
use granii_graph::datasets::{Dataset, Scale};
use granii_matrix::device::DeviceKind;
use granii_serve::{ServeConfig, ServeRequest, Server, TRACE_LANE_BASE};

#[test]
fn sampled_requests_become_chrome_trace_lanes() {
    let granii = Arc::new(
        Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast())
            .expect("fast offline training"),
    );
    let graph = Arc::new(Dataset::CoAuthorsCiteseer.load(Scale::Tiny).unwrap());
    let request = || ServeRequest::new(ModelKind::Gcn, graph.clone(), 64, 128);

    granii_telemetry::reset();
    granii_telemetry::enable();
    // Sample every 2nd request: ids 0 and 2 trace, ids 1 and 3 do not.
    let server = Server::start(
        granii,
        ServeConfig {
            workers: 1,
            trace_sample_every: 2,
            ..ServeConfig::default()
        },
    );
    for _ in 0..4 {
        server.process(request()).expect("request completes");
    }
    server.shutdown();
    granii_telemetry::disable();
    let spans = granii_telemetry::take_spans();
    let events = granii_telemetry::take_events();
    granii_telemetry::reset();

    // Exactly the sampled ids own a lane.
    let lane_tids: Vec<u64> = {
        let mut tids: Vec<u64> = spans
            .iter()
            .filter(|s| s.name == "serve.req")
            .map(|s| s.tid)
            .collect();
        tids.sort_unstable();
        tids
    };
    assert_eq!(
        lane_tids,
        vec![TRACE_LANE_BASE, TRACE_LANE_BASE + 2],
        "one lane root per sampled request id"
    );

    // Request 0 missed (queue + select + execute children); request 2 hit
    // (no select stage — the cache made selection free).
    let children = |tid: u64| -> Vec<&str> {
        spans
            .iter()
            .filter(|s| s.tid == tid && s.depth == 1)
            .map(|s| s.name)
            .collect()
    };
    assert_eq!(
        children(TRACE_LANE_BASE),
        vec!["serve.req.queue", "serve.req.select", "serve.req.execute"]
    );
    assert_eq!(
        children(TRACE_LANE_BASE + 2),
        vec!["serve.req.queue", "serve.req.execute"]
    );
    // Stage children nest inside their lane's root span.
    let root = spans
        .iter()
        .find(|s| s.name == "serve.req" && s.tid == TRACE_LANE_BASE)
        .expect("lane root");
    for child in spans.iter().filter(|s| s.tid == root.tid && s.depth == 1) {
        assert!(child.start_us >= root.start_us);
        assert!(child.start_us + child.dur_us <= root.start_us + root.dur_us);
    }

    // The existing exporter renders the lanes with no changes: the lane tid
    // appears as a regular Chrome-trace thread.
    let chrome = granii_telemetry::export::chrome_trace(&spans);
    assert!(chrome.contains("serve.req"));
    assert!(chrome.contains(&TRACE_LANE_BASE.to_string()));

    // Lifecycle events cover every request, sampled or not.
    for name in ["serve.enqueue", "serve.dequeue", "serve.complete"] {
        assert_eq!(
            events.iter().filter(|e| e.name == name).count(),
            4,
            "{name} must fire once per request"
        );
    }
    let jsonl = granii_telemetry::export::events_jsonl(&events);
    assert_eq!(jsonl.lines().count(), events.len());
    assert!(jsonl.contains("serve.complete"));
}
