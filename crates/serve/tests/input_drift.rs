//! End-to-end input-drift detection: a pinned-signature tenant serves a
//! stable graph, then mutates it mid-stream (hub edges injected). The
//! cached plan keeps serving — the plan key is pinned, so the cache cannot
//! see the mutation — and the cost-residual lane stays silent because a
//! stale bound plan executes its *bound* graph, whose charged cost still
//! matches its prediction. Only the input-drift lane, which inspects every
//! request's live degree statistics, can catch this: the test asserts it
//! flags within a bounded number of requests, invalidates the cached plan,
//! and that re-selection on the mutated graph recovers the selector's
//! composition — proving the two lanes detect disjoint failure modes.
//!
//! Runs as a single `#[test]` in its own binary: the scenario reads global
//! telemetry (metrics + events), which parallel tests would race.

use std::collections::BTreeSet;
use std::sync::Arc;

use granii_core::{Granii, GraniiOptions};
use granii_gnn::spec::{LayerConfig, ModelKind};
use granii_graph::Graph;
use granii_matrix::device::DeviceKind;
use granii_serve::{ServeConfig, ServeRequest, ServeResponse, Server};

/// Tenant-pinned plan-cache signature: "this is the same logical graph"
/// across mutations. Without it the mutated graph's content fingerprint
/// would simply miss the cache and re-select — hiding the staleness this
/// test exists to expose.
const SIGNATURE: u64 = 0x5eed_f00d_0000_0001;

/// Deterministic Erdős–Rényi-style edge set (LCG pair sampling, no dups,
/// no self-loops): in-distribution degree statistics so the cost models'
/// predictions stay honest and the residual lane has no reason to fire.
fn base_edges(n: usize, edges_wanted: usize) -> BTreeSet<(usize, usize)> {
    let mut edges = BTreeSet::new();
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    while edges.len() < edges_wanted {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (state >> 33) as usize % n;
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let v = (state >> 33) as usize % n;
        if u != v {
            edges.insert((u.min(v), u.max(v)));
        }
    }
    edges
}

/// The mid-stream mutation: a handful of hub nodes each gain an edge to
/// every other node. Degree mass shifts up a band and the degree CV
/// explodes — the dual signal the input-drift lane watches.
fn inject_hubs(mut edges: BTreeSet<(usize, usize)>, n: usize, hubs: usize) -> Graph {
    for hub in 0..hubs {
        for v in 0..n {
            if v != hub {
                edges.insert((hub.min(v), hub.max(v)));
            }
        }
    }
    let list: Vec<_> = edges.into_iter().collect();
    Graph::undirected_from_edges(n, &list).unwrap()
}

fn serve(server: &Server, graph: &Arc<Graph>, iterations: usize) -> ServeResponse {
    server
        .process(
            ServeRequest::new(ModelKind::Gcn, graph.clone(), 64, 128)
                .with_iterations(iterations)
                .with_signature(SIGNATURE),
        )
        .expect("request completes")
}

#[test]
fn mutated_graph_is_flagged_invalidated_and_reselected() {
    let n = 1024;
    let edges = base_edges(n, 4 * n);
    let base_list: Vec<_> = edges.iter().copied().collect();
    let base = Arc::new(Graph::undirected_from_edges(n, &base_list).unwrap());
    let mutated = Arc::new(inject_hubs(edges, n, 4));
    assert_eq!(base.num_nodes(), mutated.num_nodes());
    assert!(
        mutated.avg_degree() > base.avg_degree() + 3.0,
        "hub injection must add real degree mass"
    );

    let granii = Arc::new(
        Granii::train_for_device(DeviceKind::H100, GraniiOptions::fast())
            .expect("fast offline training"),
    );
    let cfg = LayerConfig::new(64, 128);
    let iterations = 100;
    // What a fresh selection sees for each graph: the stale phase must keep
    // serving the base composition, and post-flag re-selection must land on
    // the mutated graph's own choice.
    let base_choice = granii
        .select_with_config(ModelKind::Gcn, &base, cfg, iterations)
        .unwrap()
        .composition;
    let mutated_choice = granii
        .select_with_config(ModelKind::Gcn, &mutated, cfg, iterations)
        .unwrap()
        .composition;

    granii_telemetry::reset();
    granii_telemetry::enable();
    let server = Server::start(
        granii,
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );

    // Phase 1: stable graph. One selection, then steady-state hits; neither
    // lane has anything to say.
    let warm = serve(&server, &base, iterations);
    assert!(!warm.cache_hit);
    assert_eq!(warm.composition, base_choice);
    for _ in 0..5 {
        let r = serve(&server, &base, iterations);
        assert!(r.cache_hit, "pinned signature must hit");
        assert_eq!(r.composition, base_choice);
    }
    let phase1 = server.stats();
    assert_eq!(phase1.input_drift_flagged, 0, "stable input must not flag");
    assert_eq!(phase1.drift_flagged, 0, "cost lane silent on clean serving");
    assert_eq!(phase1.cache_invalidations, 0);

    // Phase 2: the tenant's graph mutates under the pinned signature. The
    // stale plan keeps hitting (and keeps executing its bound base graph),
    // until the live EWMA crosses the inspector's thresholds at the third
    // mutated request — bounded by k_consecutive — which invalidates the
    // entry. The fourth request misses, re-selects on the mutated graph,
    // and re-pins the input reference; the fifth hits quietly again.
    let mut phase2 = Vec::new();
    for _ in 0..5 {
        phase2.push(serve(&server, &mutated, iterations));
    }
    for r in &phase2[..3] {
        assert!(r.cache_hit, "stale plan serves the mutated graph");
        assert_eq!(r.composition, base_choice, "stale composition until flag");
    }
    assert!(
        !phase2[3].cache_hit,
        "flag must invalidate the cached plan (request 4 re-selects)"
    );
    assert_eq!(
        phase2[3].composition, mutated_choice,
        "re-selection recovers the selector's choice for the mutated graph"
    );
    assert!(phase2[4].cache_hit, "re-pinned signature hits again");
    assert_eq!(phase2[4].composition, mutated_choice);

    let stats = server.stats();
    assert_eq!(
        stats.input_drift_flagged, 1,
        "flag within k_consecutive mutated requests, then cooldown-suppressed"
    );
    assert_eq!(stats.cache_invalidations, 1, "exactly the flagged entry");
    assert_eq!(
        stats.drift_flagged, 0,
        "cost-residual lane must stay silent: the stale plan executes its \
         bound graph, so measured cost still tracks the prediction"
    );
    assert_eq!(stats.completed, 11);
    assert_eq!(stats.failed, 0);

    // The flag surfaces everywhere the tentpole promises: status (input
    // table + SLO + latency columns), the metrics counter, the sketches
    // section of the metrics export, and the structured event stream.
    let status = server.status();
    assert_eq!(status.input_drift_flagged, 1);
    let row = status
        .input
        .iter()
        .find(|row| row.fingerprint == format!("{SIGNATURE:016x}"))
        .expect("status input table tracks the pinned signature");
    assert_eq!(row.flags, 1);
    assert!(row.cooldown > 0, "cooldown active after the flag");
    assert_eq!(row.model, "gcn");
    assert_eq!(status.slo.len(), 3, "one SLO row per outcome class");
    let hit_latency = status
        .latency
        .iter()
        .find(|l| l.outcome == "hit")
        .expect("latency table has the hit sketch");
    assert_eq!(hit_latency.count, 9, "5 base hits + 3 stale + 1 re-pinned");
    assert!(hit_latency.p999_ms >= hit_latency.p50_ms);
    assert!(
        status.distinct_signatures > 0.5 && status.distinct_signatures < 1.5,
        "one pinned signature, estimate {}",
        status.distinct_signatures
    );
    let json = serde_json::to_string(&status).unwrap();
    let back: granii_serve::ServerStatus = serde_json::from_str(&json).unwrap();
    assert_eq!(back.input_drift_flagged, 1);
    assert_eq!(back.input.len(), status.input.len());

    server.shutdown();
    granii_telemetry::disable();
    let events = granii_telemetry::take_events();
    let snapshot = granii_telemetry::metrics_snapshot();
    granii_telemetry::reset();

    let counter = snapshot
        .counters
        .iter()
        .find(|(name, _)| name == "serve.input_drift_flagged")
        .map(|(_, v)| *v);
    assert_eq!(counter, Some(1), "serve.input_drift_flagged in metrics");
    assert!(
        !snapshot
            .counters
            .iter()
            .any(|(name, _)| name == "serve.drift_flagged"),
        "cost lane must not even increment its counter"
    );
    assert!(
        snapshot
            .sketches
            .iter()
            .any(|s| s.name == "serve.latency.hit" && s.count == 9),
        "gated sketch mirror records alongside the server's own"
    );
    let metrics = granii_telemetry::export::metrics_json(&snapshot);
    assert!(
        metrics.contains("\"sketches\""),
        "sketches section exported"
    );
    assert!(metrics.contains("serve.input_drift_flagged"));

    let input_events: Vec<_> = events
        .iter()
        .filter(|e| e.name == "serve.input_drift")
        .collect();
    assert_eq!(input_events.len(), 1, "one structured input-drift event");
    assert!(
        !events.iter().any(|e| e.name == "serve.drift"),
        "no cost-drift events"
    );
    let jsonl = granii_telemetry::export::events_jsonl(&events);
    assert!(jsonl.contains("serve.input_drift"));
}
