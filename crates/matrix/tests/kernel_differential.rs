//! Differential suite for the SIMD / register-tiled / banded kernels.
//!
//! Every hot `_into` kernel is compared against an independent naive
//! reference that spells out the documented fold semantics (edge-ascending
//! per element for SpMM, `k`-ascending with the zero-`aik` skip for GEMM,
//! identity-finished empty rows, stored-edge-count Mean). Because the SIMD
//! paths vectorize across the column dimension while keeping the per-element
//! fold order, SpMM/GEMM/broadcast results must be **bitwise** equal to the
//! reference in *both* builds — `cargo test` checks the scalar paths,
//! `cargo test --features simd` checks the vectorized ones against the same
//! oracle, and the CI matrix runs both `GRANII_THREADS` legs. The one
//! documented exception is SDDMM, whose SIMD dot product reduces through a
//! fixed tree: it is asserted to a few-ulp relative tolerance instead.
//!
//! Graph shapes deliberately cover the scheduler/banding corners: uniform
//! short rows, a hub row, empty-row-heavy patterns, and ramped power-law-ish
//! degrees, in weighted and unweighted form, across batch widths {1,3,8,17}.

use granii_matrix::ops;
use granii_matrix::{CooMatrix, CsrMatrix, DenseMatrix, MulOp, ReduceOp, Semiring};
use proptest::prelude::*;

const ALL_SEMIRINGS: [Semiring; 16] = {
    let muls = [MulOp::Mul, MulOp::CopyRhs, MulOp::CopyEdge, MulOp::Add];
    let reduces = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::Mean];
    let mut out = [Semiring {
        reduce: ReduceOp::Sum,
        mul: MulOp::Mul,
    }; 16];
    let mut i = 0;
    while i < 4 {
        let mut j = 0;
        while j < 4 {
            out[i * 4 + j] = Semiring {
                reduce: reduces[i],
                mul: muls[j],
            };
            j += 1;
        }
        i += 1;
    }
    out
};

/// Degree-distribution families exercising the banding heuristic and the
/// nnz-weighted scheduler.
#[derive(Clone, Copy, Debug)]
enum Shape {
    /// Every row short (at or below the short-row band threshold).
    Uniform,
    /// Row 0 holds most of the nnz; the rest are leaves.
    Hub,
    /// Two of every three rows empty.
    EmptyHeavy,
    /// Degree ramps with the row index.
    Ramp,
}

const SHAPES: [Shape; 4] = [Shape::Uniform, Shape::Hub, Shape::EmptyHeavy, Shape::Ramp];

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn lcg_f32(state: &mut u64) -> f32 {
    (lcg(state) % 4001) as f32 / 1000.0 - 2.0
}

fn graph(shape: Shape, rows: usize, cols: usize, seed: u64) -> CsrMatrix {
    let mut state = seed.wrapping_add(0x9e3779b9);
    let mut entries = Vec::new();
    for i in 0..rows {
        let degree = match shape {
            Shape::Uniform => 1 + (lcg(&mut state) as usize % 3),
            Shape::Hub => {
                if i == 0 {
                    cols.max(1)
                } else {
                    lcg(&mut state) as usize % 2
                }
            }
            Shape::EmptyHeavy => {
                if i % 3 == 0 {
                    1 + (lcg(&mut state) as usize % 2)
                } else {
                    0
                }
            }
            Shape::Ramp => (i * cols) / rows.max(1),
        };
        for _ in 0..degree {
            let j = lcg(&mut state) as usize % cols;
            entries.push((i, j, lcg_f32(&mut state)));
        }
    }
    CooMatrix::from_entries(rows, cols, &entries)
        .unwrap()
        .to_csr()
}

/// The naive g-SpMM reference: documented fold semantics, nothing shared
/// with the kernel implementation.
fn naive_spmm(adj: &CsrMatrix, feats: &DenseMatrix, width: usize, s: Semiring) -> Vec<f32> {
    let mut out = vec![0.0f32; adj.rows() * width];
    for i in 0..adj.rows() {
        let cols = adj.row_indices(i);
        let vals = adj.row_values(i);
        let row = &mut out[i * width..(i + 1) * width];
        if cols.is_empty() {
            for v in row.iter_mut() {
                *v = s.reduce.finish(s.reduce.identity(), 0);
            }
            continue;
        }
        for v in row.iter_mut() {
            *v = s.reduce.identity();
        }
        for (e, &j) in cols.iter().enumerate() {
            let edge = vals.map_or(1.0, |vs| vs[e]);
            for (c, v) in row.iter_mut().enumerate() {
                *v = s
                    .reduce
                    .fold(*v, s.mul.apply(edge, feats.get(j as usize, c)));
            }
        }
        if matches!(s.reduce, ReduceOp::Mean) {
            for v in row.iter_mut() {
                *v = s.reduce.finish(*v, cols.len());
            }
        }
    }
    out
}

/// The naive GEMM reference: `i-k-j`, zero-`aik` skipped exactly like the
/// kernel (the skip is bit-visible: folding `-0.0 + 0.0` would flip a sign).
fn naive_gemm(a: &DenseMatrix, b: &DenseMatrix) -> Vec<f32> {
    let (k1, k2) = (a.cols(), b.cols());
    let mut out = vec![0.0f32; a.rows() * k2];
    for i in 0..a.rows() {
        let row = &mut out[i * k2..(i + 1) * k2];
        for k in 0..k1 {
            let aik = a.get(i, k);
            if aik == 0.0 {
                continue;
            }
            for (j, v) in row.iter_mut().enumerate() {
                *v += aik * b.get(k, j);
            }
        }
    }
    out
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|v| v.to_bits()).collect()
}

fn with_zeros(m: DenseMatrix) -> DenseMatrix {
    m.map(|v| if v.abs() < 0.3 { 0.0 } else { v })
}

proptest! {
    /// SpMM is bitwise equal to the naive reference for every semiring,
    /// every degree-distribution family, weighted and unweighted, across
    /// feature widths spanning scalar-tail-only through multi-strip rows.
    #[test]
    fn spmm_bitwise_matches_naive(
        shape_ix in 0usize..4,
        rows in 3usize..28,
        cols in 2usize..24,
        k in 1usize..44,
        seed in 0u64..500,
        weighted_ix in 0usize..2,
    ) {
        let weighted = weighted_ix == 1;
        let mut adj = graph(SHAPES[shape_ix], rows, cols, seed);
        if !weighted {
            adj = adj.drop_values();
        }
        let feats = DenseMatrix::random(cols, k, 1.0, seed ^ 0xfeed);
        for s in ALL_SEMIRINGS {
            let got = ops::spmm(&adj, &feats, s).unwrap();
            let want = naive_spmm(&adj, &feats, k, s);
            prop_assert_eq!(
                bits(got.as_slice()),
                bits(&want),
                "shape {:?} {:?} weighted={}",
                SHAPES[shape_ix], s, weighted
            );
        }
    }

    /// GEMM (register-tiled under `--features simd`) is bitwise equal to the
    /// naive `i-k-j` reference, including the zero-skip, for output widths
    /// covering every tile-cascade combination.
    #[test]
    fn gemm_bitwise_matches_naive(
        n in 1usize..14,
        k1 in 1usize..12,
        k2 in 1usize..44,
        seed in 0u64..500,
    ) {
        let a = with_zeros(DenseMatrix::random(n, k1, 1.0, seed));
        let b = DenseMatrix::random(k1, k2, 1.0, seed ^ 0xbeef);
        let got = ops::gemm(&a, &b).unwrap();
        prop_assert_eq!(bits(got.as_slice()), bits(&naive_gemm(&a, &b)));
    }

    /// SDDMM matches a naive left-fold reference within a few ulp: the SIMD
    /// dot reduces through a fixed tree, so bitwise equality is *not*
    /// guaranteed (documented in `ops::rowkernel::dot`), but the relative
    /// error is bounded.
    #[test]
    fn sddmm_matches_naive_within_tolerance(
        shape_ix in 0usize..4,
        n in 3usize..20,
        k in 1usize..44,
        seed in 0u64..500,
        weighted_ix in 0usize..2,
    ) {
        let weighted = weighted_ix == 1;
        let mut mask = graph(SHAPES[shape_ix], n, n, seed);
        if !weighted {
            mask = mask.drop_values();
        }
        let u = DenseMatrix::random(n, k, 1.0, seed ^ 0xaaaa);
        let v = DenseMatrix::random(n, k, 1.0, seed ^ 0x5555);
        let got = ops::sddmm(&mask, &u, &v).unwrap();
        let got_vals = got.values().unwrap();
        let mut off = 0usize;
        for i in 0..n {
            let cols = mask.row_indices(i);
            let mvals = mask.row_values(i);
            for (e, &j) in cols.iter().enumerate() {
                let dot: f32 = (0..k).map(|c| u.get(i, c) * v.get(j as usize, c)).sum();
                let want = mvals.map_or(1.0, |vs| vs[e]) * dot;
                let tol = 1e-5f32 * (1.0 + want.abs());
                prop_assert!(
                    (got_vals[off] - want).abs() <= tol,
                    "({}, {}): {} vs {}", i, j, got_vals[off], want
                );
                off += 1;
            }
        }
    }

    /// Broadcasts (with the hoisted op dispatch) stay bitwise equal to the
    /// per-element definition.
    #[test]
    fn broadcasts_bitwise_match_naive(
        rows in 1usize..12,
        cols in 1usize..40,
        seed in 0u64..500,
    ) {
        let m = DenseMatrix::random(rows, cols, 1.0, seed);
        let dr: Vec<f32> = (0..rows).map(|i| i as f32 * 0.37 - 1.0).collect();
        let dc: Vec<f32> = (0..cols).map(|j| j as f32 * 0.21 - 2.0).collect();
        for op in [ops::BroadcastOp::Mul, ops::BroadcastOp::Add] {
            let got = ops::row_broadcast(&dr, &m, op).unwrap();
            let want = DenseMatrix::from_fn(rows, cols, |i, j| match op {
                ops::BroadcastOp::Mul => dr[i] * m.get(i, j),
                ops::BroadcastOp::Add => dr[i] + m.get(i, j),
            });
            prop_assert_eq!(bits(got.as_slice()), bits(want.as_slice()));
            let got = ops::col_broadcast(&m, &dc, op).unwrap();
            let want = DenseMatrix::from_fn(rows, cols, |i, j| match op {
                ops::BroadcastOp::Mul => dc[j] * m.get(i, j),
                ops::BroadcastOp::Add => dc[j] + m.get(i, j),
            });
            prop_assert_eq!(bits(got.as_slice()), bits(want.as_slice()));
        }
    }

    /// Batched kernels across batch widths {1, 3, 8, 17}: every block of the
    /// wide result is bitwise equal to the serial `_into` result for that
    /// request — which the other properties tie back to the naive oracle.
    #[test]
    fn batched_blocks_bitwise_match_serial(
        shape_ix in 0usize..4,
        n in 3usize..16,
        k in 1usize..10,
        seed in 0u64..500,
    ) {
        const WIDTHS: [usize; 4] = [1, 3, 8, 17];
        const CAP: usize = 17;
        let adj = graph(SHAPES[shape_ix], n, n, seed);
        let feats = DenseMatrix::random(n, CAP * k, 1.0, seed ^ 0x1234);
        let b = DenseMatrix::random(k, k, 1.0, seed ^ 0x4321);
        let a_wide = with_zeros(DenseMatrix::random(n, CAP * k, 1.0, seed ^ 0x9999));
        for batch in WIDTHS {
            // Batched SpMM over the leading batch*k columns.
            let mut wide = DenseMatrix::from_vec(n, CAP * k, vec![f32::NAN; n * CAP * k]).unwrap();
            for s in [Semiring::plus_mul(), Semiring::mean_copy_rhs(), Semiring::max_copy_rhs()] {
                ops::spmm_cols_into(&adj, &feats, batch * k, s, &mut wide).unwrap();
                for t in 0..batch {
                    let mut f_t = DenseMatrix::from_vec(n, k, vec![0.0; n * k]).unwrap();
                    ops::copy_block_into(&feats, t, &mut f_t).unwrap();
                    let mut want = DenseMatrix::from_vec(n, k, vec![0.0; n * k]).unwrap();
                    ops::spmm_into(&adj, &f_t, s, &mut want).unwrap();
                    let mut got = DenseMatrix::from_vec(n, k, vec![0.0; n * k]).unwrap();
                    ops::copy_block_into(&wide, t, &mut got).unwrap();
                    prop_assert_eq!(
                        bits(got.as_slice()),
                        bits(want.as_slice()),
                        "spmm batch {} block {} {:?}", batch, t, s
                    );
                }
            }
            // Batched GEMM.
            let mut wide = DenseMatrix::from_vec(n, CAP * k, vec![f32::NAN; n * CAP * k]).unwrap();
            ops::gemm_rhs_blocks_into(&a_wide, &b, batch, &mut wide).unwrap();
            for t in 0..batch {
                let mut a_t = DenseMatrix::from_vec(n, k, vec![0.0; n * k]).unwrap();
                ops::copy_block_into(&a_wide, t, &mut a_t).unwrap();
                let mut want = DenseMatrix::from_vec(n, k, vec![0.0; n * k]).unwrap();
                ops::gemm_into(&a_t, &b, &mut want).unwrap();
                let mut got = DenseMatrix::from_vec(n, k, vec![0.0; n * k]).unwrap();
                ops::copy_block_into(&wide, t, &mut got).unwrap();
                prop_assert_eq!(
                    bits(got.as_slice()),
                    bits(want.as_slice()),
                    "gemm batch {} block {}", batch, t
                );
            }
        }
    }
}
