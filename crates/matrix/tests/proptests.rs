//! Property-based tests for the kernel substrate.
//!
//! These check the algebraic identities GRANII's re-association machinery
//! relies on: every composition of primitives that is algebraically equal must
//! be numerically equal (up to fp tolerance) on arbitrary inputs.

use granii_matrix::ops::{self, BroadcastOp};
use granii_matrix::{CooMatrix, CsrMatrix, DenseMatrix, Semiring};
use proptest::prelude::*;

const TOL: f32 = 2e-3;

/// Strategy: a random sparse matrix (as COO entries) plus its shape.
fn sparse_matrix(
    max_dim: usize,
) -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f32)>)> {
    (2usize..max_dim, 2usize..max_dim).prop_flat_map(|(r, c)| {
        let entry = (0..r, 0..c, -2.0f32..2.0);
        (Just(r), Just(c), proptest::collection::vec(entry, 0..40))
    })
}

fn dense(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    DenseMatrix::random(rows, cols, 1.0, seed)
}

fn to_csr(r: usize, c: usize, entries: &[(usize, usize, f32)]) -> CsrMatrix {
    CooMatrix::from_entries(r, c, entries).unwrap().to_csr()
}

proptest! {
    /// SpMM against the dense reference: A_s · X == dense(A) · X.
    #[test]
    fn spmm_equals_dense_gemm((r, c, entries) in sparse_matrix(12), k in 1usize..6, seed in 0u64..1000) {
        let a = to_csr(r, c, &entries);
        let x = dense(c, k, seed);
        let sparse = ops::spmm(&a, &x, Semiring::plus_mul()).unwrap();
        let dense_ref = ops::gemm(&a.to_dense().unwrap(), &x).unwrap();
        prop_assert!(sparse.max_abs_diff(&dense_ref).unwrap() < TOL);
    }

    /// The GCN identity: row_broadcast(d, X) == diag(d) · X.
    #[test]
    fn row_broadcast_is_diag_mul(rows in 1usize..10, cols in 1usize..10, seed in 0u64..1000) {
        let x = dense(rows, cols, seed);
        let d: Vec<f32> = (0..rows).map(|i| (i as f32) * 0.37 - 1.0).collect();
        let broad = ops::row_broadcast(&d, &x, BroadcastOp::Mul).unwrap();
        let diag = granii_matrix::DiagMatrix::from_vec(d).to_csr();
        let mul = ops::spmm(&diag, &x, Semiring::plus_mul()).unwrap();
        prop_assert!(broad.max_abs_diff(&mul).unwrap() < TOL);
    }

    /// The re-association at the heart of GCN's two compositions:
    /// (D·A·D)·X == D ⊗ (A · (D ⊗ X)) — SDDMM-then-SpMM equals
    /// broadcast-SpMM-broadcast.
    #[test]
    fn gcn_normalization_reassociation((n, _c, entries) in sparse_matrix(10), k in 1usize..5, seed in 0u64..1000) {
        // Make the matrix square for this identity.
        let square: Vec<_> = entries.iter().map(|&(i, j, v)| (i % n, j % n, v)).collect();
        let a = to_csr(n, n, &square);
        let x = dense(n, k, seed);
        let d: Vec<f32> = (0..n).map(|i| 0.1 + (i as f32) * 0.29).collect();

        // Composition 1 (precompute, Eq. 3): N = D·A·D, then N·X.
        let norm = ops::scale_csr(Some(&d), &a, Some(&d)).unwrap();
        let via_sddmm = ops::spmm(&norm, &x, Semiring::plus_mul()).unwrap();

        // Composition 2 (dynamic, Eq. 2): D ⊗ (A · (D ⊗ X)).
        let dx = ops::row_broadcast(&d, &x, BroadcastOp::Mul).unwrap();
        let adx = ops::spmm(&a, &dx, Semiring::plus_mul()).unwrap();
        let via_broadcast = ops::row_broadcast(&d, &adx, BroadcastOp::Mul).unwrap();

        prop_assert!(via_sddmm.max_abs_diff(&via_broadcast).unwrap() < TOL);
    }

    /// GEMM chain associativity on random shapes: (A·B)·C == A·(B·C).
    #[test]
    fn gemm_chain_associativity(n in 1usize..8, k1 in 1usize..8, k2 in 1usize..8, k3 in 1usize..8, seed in 0u64..1000) {
        let a = dense(n, k1, seed);
        let b = dense(k1, k2, seed + 1);
        let c = dense(k2, k3, seed + 2);
        let left = ops::gemm(&ops::gemm(&a, &b).unwrap(), &c).unwrap();
        let right = ops::gemm(&a, &ops::gemm(&b, &c).unwrap()).unwrap();
        prop_assert!(left.max_abs_diff(&right).unwrap() < TOL);
    }

    /// GAT's reuse/recompute equivalence: α · (H · W) == (α · H) · W.
    #[test]
    fn gat_reuse_recompute_equivalence((n, _c, entries) in sparse_matrix(10), k1 in 1usize..5, k2 in 1usize..5, seed in 0u64..1000) {
        let square: Vec<_> = entries.iter().map(|&(i, j, v)| (i % n, j % n, v)).collect();
        let alpha = to_csr(n, n, &square);
        let h = dense(n, k1, seed);
        let w = dense(k1, k2, seed + 7);
        let theta = ops::gemm(&h, &w).unwrap();
        let reuse = ops::spmm(&alpha, &theta, Semiring::plus_mul()).unwrap();
        let ah = ops::spmm(&alpha, &h, Semiring::plus_mul()).unwrap();
        let recompute = ops::gemm(&ah, &w).unwrap();
        prop_assert!(reuse.max_abs_diff(&recompute).unwrap() < TOL);
    }

    /// CSR transpose is an involution and preserves nnz.
    #[test]
    fn transpose_involution((r, c, entries) in sparse_matrix(15)) {
        let a = to_csr(r, c, &entries);
        let tt = a.transpose().transpose();
        prop_assert_eq!(a, tt);
    }

    /// COO → CSR merges duplicates: total value mass is preserved.
    #[test]
    fn coo_to_csr_preserves_mass((r, c, entries) in sparse_matrix(15)) {
        let coo = CooMatrix::from_entries(r, c, &entries).unwrap();
        let csr = coo.to_csr();
        let coo_sum: f32 = entries.iter().map(|e| e.2).sum();
        let csr_sum: f32 = csr.values().unwrap_or(&[]).iter().sum();
        prop_assert!((coo_sum - csr_sum).abs() < TOL);
        prop_assert!(csr.nnz() <= entries.len());
    }

    /// Edge softmax output is a row-stochastic reweighting of the pattern.
    #[test]
    fn edge_softmax_row_stochastic((r, c, entries) in sparse_matrix(12)) {
        let a = to_csr(r, c, &entries);
        prop_assume!(a.nnz() > 0);
        let sm = ops::edge_softmax(&a).unwrap();
        for i in 0..sm.rows() {
            let row = sm.row_values(i).unwrap();
            if !row.is_empty() {
                let sum: f32 = row.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-4);
                prop_assert!(row.iter().all(|&v| v >= 0.0));
            }
        }
    }

    /// Modeled latencies are positive and monotone in flops for dense work.
    #[test]
    fn device_model_monotone_in_work(n in 1usize..256, k in 1usize..64) {
        use granii_matrix::device::DeviceSpec;
        use granii_matrix::WorkStats;
        for spec in [DeviceSpec::cpu(), DeviceSpec::a100(), DeviceSpec::h100()] {
            let small = spec.estimate_seconds(&WorkStats::gemm(n, k, k));
            let large = spec.estimate_seconds(&WorkStats::gemm(2 * n, k, k));
            prop_assert!(small > 0.0);
            prop_assert!(large >= small);
        }
    }
}
