//! A buffer arena for allocation-free steady-state execution.
//!
//! GRANII's premise (paper §IV-D, §VI-C) is that selection overhead is paid
//! once while the chosen composition runs for ~100 iterations. That only pays
//! off if the per-iteration path is allocation-free: a [`Workspace`] hands out
//! dense/sparse/vector buffers sized at plan time and recycles them, so after
//! a warm-up iteration every `take_*` call is satisfied from the pool.
//!
//! Every pool miss (a fresh heap allocation) increments both the workspace's
//! local counter and the `workspace.fresh_allocs` telemetry counter, which is
//! what the allocation-regression smoke tests assert on: after warm-up,
//! steady-state iterations must not move the counter.

use crate::{CsrMatrix, DenseMatrix, Result};

/// Telemetry counter bumped on every pool miss (fresh heap allocation).
pub const FRESH_ALLOC_COUNTER: &str = "workspace.fresh_allocs";

/// A recycling pool of kernel output buffers.
///
/// Buffers are keyed by exact shape (dense: `rows × cols`; vectors: length;
/// sparse: `rows × cols` + `nnz`), so a `take_*` either reuses a returned
/// buffer of the same shape or allocates a fresh one and counts it.
///
/// Sparse buffers are pooled by shape and nonzero count only — a workspace is
/// meant to serve one graph, where every sparse intermediate shares the
/// adjacency's pattern. [`Workspace::take_csr_like`] always (re)stamps the
/// requested pattern's indices when handing a buffer out, so cross-pattern
/// reuse is correct, just not free.
///
/// # Example
///
/// ```
/// use granii_matrix::workspace::Workspace;
///
/// # fn main() -> Result<(), granii_matrix::MatrixError> {
/// let mut ws = Workspace::new();
/// let a = ws.take_dense(4, 3)?;
/// ws.give_dense(a);
/// let _b = ws.take_dense(4, 3)?; // recycled, not reallocated
/// assert_eq!(ws.fresh_allocations(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    dense: Vec<DenseMatrix>,
    vals: Vec<Vec<f32>>,
    csr: Vec<CsrMatrix>,
    fresh: u64,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of fresh heap allocations performed so far (pool misses).
    pub fn fresh_allocations(&self) -> u64 {
        self.fresh
    }

    /// Number of buffers currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.dense.len() + self.vals.len() + self.csr.len()
    }

    fn record_miss(&mut self) {
        self.fresh += 1;
        granii_telemetry::counter_add(FRESH_ALLOC_COUNTER, 1);
    }

    /// Hands out a `rows × cols` dense buffer. Contents are unspecified — the
    /// `_into` kernels overwrite every element.
    ///
    /// # Errors
    ///
    /// Returns [`crate::MatrixError::AllocationTooLarge`] if a fresh buffer
    /// would exceed the allocation guard.
    pub fn take_dense(&mut self, rows: usize, cols: usize) -> Result<DenseMatrix> {
        if let Some(i) = self.dense.iter().position(|m| m.shape() == (rows, cols)) {
            return Ok(self.dense.swap_remove(i));
        }
        self.record_miss();
        DenseMatrix::zeros(rows, cols)
    }

    /// Returns a dense buffer to the pool.
    pub fn give_dense(&mut self, m: DenseMatrix) {
        self.dense.push(m);
    }

    /// Hands out an `f32` buffer of exactly `len` elements (per-node vectors,
    /// CSR value arrays). Contents are unspecified.
    pub fn take_vals(&mut self, len: usize) -> Vec<f32> {
        if let Some(i) = self.vals.iter().position(|v| v.len() == len) {
            return self.vals.swap_remove(i);
        }
        self.record_miss();
        vec![0.0; len]
    }

    /// Returns an `f32` buffer to the pool.
    pub fn give_vals(&mut self, v: Vec<f32>) {
        self.vals.push(v);
    }

    /// Hands out a weighted CSR buffer with `pattern`'s sparsity structure
    /// (values unspecified). Pooled buffers are matched by shape and nonzero
    /// count; the pattern is restamped on reuse only if it differs.
    ///
    /// # Errors
    ///
    /// Propagates CSR construction errors on a pool miss.
    pub fn take_csr_like(&mut self, pattern: &CsrMatrix) -> Result<CsrMatrix> {
        if let Some(i) = self.csr.iter().position(|m| {
            m.shape() == pattern.shape() && m.nnz() == pattern.nnz() && m.is_weighted()
        }) {
            let mut m = self.csr.swap_remove(i);
            if m.indptr() != pattern.indptr() || m.indices() != pattern.indices() {
                // Different pattern with the same counts: restamp (no alloc).
                let vals = m.values().map(<[f32]>::to_vec).unwrap_or_default();
                m = pattern.clone().drop_values().with_values(vals)?;
            }
            return Ok(m);
        }
        self.record_miss();
        let vals = vec![0.0; pattern.nnz()];
        pattern.clone().drop_values().with_values(vals)
    }

    /// Returns a CSR buffer to the pool. Unweighted buffers are dropped —
    /// only value-carrying buffers are worth recycling.
    pub fn give_csr(&mut self, m: CsrMatrix) {
        if m.is_weighted() {
            self.csr.push(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    #[test]
    fn dense_reuse_is_shape_exact() {
        let mut ws = Workspace::new();
        let a = ws.take_dense(3, 4).unwrap();
        ws.give_dense(a);
        let _wrong = ws.take_dense(4, 3).unwrap(); // different shape: miss
        let _right = ws.take_dense(3, 4).unwrap(); // hit
        assert_eq!(ws.fresh_allocations(), 2);
    }

    #[test]
    fn vals_reuse_is_length_exact() {
        let mut ws = Workspace::new();
        let v = ws.take_vals(7);
        ws.give_vals(v);
        assert_eq!(ws.take_vals(7).len(), 7);
        assert_eq!(ws.fresh_allocations(), 1);
    }

    #[test]
    fn csr_reuse_keeps_pattern() {
        let pat = CooMatrix::from_entries(3, 3, &[(0, 1, 1.0), (2, 0, 1.0)])
            .unwrap()
            .to_csr();
        let mut ws = Workspace::new();
        let m = ws.take_csr_like(&pat).unwrap();
        assert_eq!(m.nnz(), 2);
        ws.give_csr(m);
        let m2 = ws.take_csr_like(&pat).unwrap();
        assert_eq!(m2.indices(), pat.indices());
        assert_eq!(ws.fresh_allocations(), 1);
    }

    #[test]
    fn csr_restamps_on_pattern_change() {
        let a = CooMatrix::from_entries(2, 2, &[(0, 1, 1.0)])
            .unwrap()
            .to_csr();
        let b = CooMatrix::from_entries(2, 2, &[(1, 0, 1.0)])
            .unwrap()
            .to_csr();
        let mut ws = Workspace::new();
        let m = ws.take_csr_like(&a).unwrap();
        ws.give_csr(m);
        let m2 = ws.take_csr_like(&b).unwrap();
        assert_eq!(m2.indices(), b.indices());
        assert_eq!(m2.indptr(), b.indptr());
    }

    #[test]
    fn steady_state_cycle_stops_allocating() {
        let mut ws = Workspace::new();
        for _ in 0..10 {
            let a = ws.take_dense(8, 8).unwrap();
            let b = ws.take_dense(8, 4).unwrap();
            ws.give_dense(a);
            ws.give_dense(b);
        }
        assert_eq!(ws.fresh_allocations(), 2);
    }
}
