//! Minimal deterministic data parallelism for the kernels.
//!
//! Kernels parallelize over output rows with dynamic chunk claiming: workers
//! pull fixed-size row chunks from a shared cursor, which balances the skewed
//! per-row work of power-law graphs. Every output row is written by exactly
//! one thread, so results are bitwise identical to the serial execution
//! regardless of thread count or claiming order.

use std::sync::OnceLock;

/// Work threshold (in output elements) below which kernels stay serial;
/// thread spawn overhead dominates under this size.
pub const PARALLEL_THRESHOLD: usize = 1 << 14;

/// Hard ceiling on kernel worker threads. Applies to both the hardware
/// default and `GRANII_THREADS` overrides: the work-stealing kernels stop
/// scaling well past this on the target machines, and an uncapped override
/// (e.g. a copy-pasted `GRANII_THREADS=512`) would oversubscribe every
/// `par_rows` call site.
pub const MAX_THREADS: usize = 16;

/// Resolves the worker-thread count from an optional `GRANII_THREADS` value
/// and the machine's available parallelism. Returns the thread count plus a
/// warning message when the override was malformed and had to be ignored.
///
/// Both paths clamp to `1..=MAX_THREADS`. A value that fails to parse as a
/// positive integer (`"8x"`, `""`, `"0"`) is ignored with a warning rather
/// than silently falling back.
fn resolve_threads(env: Option<&str>, hardware: usize) -> (usize, Option<String>) {
    let default = hardware.clamp(1, MAX_THREADS);
    match env {
        None => (default, None),
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => (n.min(MAX_THREADS), None),
            _ => (
                default,
                Some(format!(
                    "granii: ignoring malformed GRANII_THREADS={raw:?} \
                     (expected an integer in 1..={MAX_THREADS}); using {default} threads"
                )),
            ),
        },
    }
}

/// Number of worker threads used by row-parallel kernels.
///
/// Defaults to the machine's available parallelism; override with the
/// `GRANII_THREADS` environment variable (read once). Both paths are capped
/// at [`MAX_THREADS`]; a malformed override logs one warning to stderr and
/// falls back to the default.
pub fn num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        let hardware = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let (n, warning) =
            resolve_threads(std::env::var("GRANII_THREADS").ok().as_deref(), hardware);
        if let Some(msg) = warning {
            eprintln!("{msg}");
        }
        n
    })
}

/// Rows grabbed per work-stealing step. Small enough to balance power-law
/// skew (a hub row can cost thousands of leaf rows), large enough to amortize
/// the atomic fetch.
const STEAL_CHUNK: usize = 64;

/// Runs `f(row_index, row_slice)` for every row of a `rows x width` row-major
/// buffer, in parallel with dynamic (work-stealing) row distribution.
///
/// The caller states the geometry explicitly: divisibility alone cannot catch
/// a transposed or otherwise wrong `width` that still divides the buffer, so
/// the buffer length is checked against `rows * width` exactly.
///
/// Static contiguous blocks starve under skewed per-row work — on a power-law
/// graph the thread owning the hub rows finishes last by far — so workers
/// instead claim [`STEAL_CHUNK`]-row chunks from a shared atomic cursor.
/// Each output element is still written by exactly one thread, so results
/// stay deterministic. Falls back to a serial loop when the buffer is small
/// or only one thread is configured. Degenerate geometry (`rows == 0` or
/// `width == 0`, with a correspondingly empty buffer) is a no-op.
///
/// # Panics
///
/// Panics if `out.len() != rows * width`, or if a worker thread panics.
pub fn par_rows<F>(out: &mut [f32], rows: usize, width: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    assert_eq!(
        out.len(),
        rows * width,
        "buffer length must equal rows * width ({rows} * {width})"
    );
    if rows == 0 || width == 0 {
        return;
    }
    let threads = num_threads();
    if threads <= 1 || out.len() < PARALLEL_THRESHOLD {
        for (r, row) in out.chunks_exact_mut(width).enumerate() {
            f(r, row);
        }
        return;
    }

    // Hand each worker a raw view; disjointness is guaranteed by the unique
    // chunk indices handed out by the cursor.
    let base = out.as_mut_ptr() as usize;
    let cursor = AtomicUsize::new(0);
    let num_chunks = rows.div_ceil(STEAL_CHUNK);
    crossbeam::thread::scope(|s| {
        for _ in 0..threads.min(num_chunks) {
            let f = &f;
            let cursor = &cursor;
            s.spawn(move |_| loop {
                let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                if chunk >= num_chunks {
                    return;
                }
                let start = chunk * STEAL_CHUNK;
                let end = (start + STEAL_CHUNK).min(rows);
                for r in start..end {
                    // SAFETY: row `r` belongs exclusively to this chunk, and
                    // each chunk index is claimed by exactly one worker, so
                    // no two threads alias this slice. The scope guarantees
                    // the buffer outlives the workers.
                    let row = unsafe {
                        std::slice::from_raw_parts_mut((base as *mut f32).add(r * width), width)
                    };
                    f(r, row);
                }
            });
        }
    })
    .expect("kernel worker thread panicked");
}

/// Flat per-row cost (in nnz-equivalents) charged by the weighted schedulers
/// on top of a row's stored-entry count: covers the fill of the output row
/// and the loop setup. Keeps runs of empty rows from collapsing into a single
/// unbounded chunk.
pub(crate) const ROW_BASE_COST: u64 = 4;

/// Work (in nnz-equivalents) per chunk claimed by the weighted schedulers.
/// A hub row heavier than this gets a chunk of its own; leaf rows are grouped
/// until their summed weight reaches it.
pub(crate) const CHUNK_WEIGHT: u64 = 4096;

/// First row `r` in `0..rows` whose cumulative weight
/// `indptr[r] + ROW_BASE_COST * r` reaches `target`, or `rows` if none does.
///
/// The weight is strictly increasing in `r`, so a binary search finds chunk
/// boundaries without materializing a prefix-sum vector — the weighted
/// schedulers stay allocation-free on the steady-state path.
fn weighted_bound(indptr: &[u64], target: u64) -> usize {
    let rows = indptr.len() - 1;
    let (mut lo, mut hi) = (0usize, rows);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if indptr[mid] + ROW_BASE_COST * mid as u64 >= target {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// [`par_rows`] with nnz-weighted work partitioning for CSR-driven kernels.
///
/// `par_rows` hands out fixed 64-row chunks; on a power-law graph one chunk
/// can hold a hub row costing thousands of leaf rows, so row-count chunks
/// still skew badly. Here chunk boundaries are placed on the cumulative work
/// estimate `indptr[r] + ROW_BASE_COST * r` instead: every chunk carries
/// roughly [`CHUNK_WEIGHT`] nnz-equivalents, a hub row heavier than that gets
/// its own chunk, and runs of empty rows are bounded by [`ROW_BASE_COST`].
/// Boundaries are found by binary search over `indptr` — no allocation.
///
/// Each row is written by exactly one thread and the per-row computation is
/// schedule-independent, so results are bitwise identical to serial
/// execution. The serial threshold counts `nnz * width` (the true work), not
/// just output elements.
///
/// # Panics
///
/// Panics if `out.len() != rows * width`, `indptr.len() != rows + 1`, or a
/// worker thread panics.
pub fn par_rows_weighted<F>(out: &mut [f32], rows: usize, width: usize, indptr: &[u64], f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    assert_eq!(
        out.len(),
        rows * width,
        "buffer length must equal rows * width ({rows} * {width})"
    );
    assert_eq!(
        indptr.len(),
        rows + 1,
        "indptr length must equal rows + 1 ({rows} + 1)"
    );
    if rows == 0 || width == 0 {
        return;
    }
    let nnz = indptr[rows];
    let threads = num_threads();
    let work = (nnz as usize)
        .saturating_mul(width)
        .saturating_add(out.len());
    if threads <= 1 || work < PARALLEL_THRESHOLD {
        for (r, row) in out.chunks_exact_mut(width).enumerate() {
            f(r, row);
        }
        return;
    }

    let total = nnz + ROW_BASE_COST * rows as u64;
    let num_chunks = total.div_ceil(CHUNK_WEIGHT) as usize;
    let base = out.as_mut_ptr() as usize;
    let cursor = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..threads.min(num_chunks) {
            let f = &f;
            let cursor = &cursor;
            s.spawn(move |_| loop {
                let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                if chunk >= num_chunks {
                    return;
                }
                let start = weighted_bound(indptr, chunk as u64 * CHUNK_WEIGHT);
                let end = weighted_bound(indptr, (chunk as u64 + 1) * CHUNK_WEIGHT);
                for r in start..end {
                    // SAFETY: the chunk ranges `[start, end)` partition the
                    // rows (weighted_bound is monotone in the target), each
                    // chunk index is claimed by exactly one worker, and the
                    // scope keeps the buffer alive.
                    let row = unsafe {
                        std::slice::from_raw_parts_mut((base as *mut f32).add(r * width), width)
                    };
                    f(r, row);
                }
            });
        }
    })
    .expect("kernel worker thread panicked");
}

/// Runs `f(first_row, block_slice)` over consecutive `block`-row blocks of a
/// `rows x width` row-major buffer; the last block may be short.
///
/// This is the scheduler for register-tiled GEMM: the kernel wants several
/// consecutive output rows at once so it can reuse a loaded RHS row across
/// all of them. Blocks are aligned to multiples of `block` from row 0 in both
/// the serial and parallel paths (steal chunks are rounded up to a block
/// multiple), so the block grouping — and therefore any per-block code path —
/// is identical regardless of thread count.
///
/// # Panics
///
/// Panics if `block == 0`, `out.len() != rows * width`, or a worker panics.
pub fn par_row_blocks<F>(out: &mut [f32], rows: usize, width: usize, block: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    assert!(block >= 1, "block size must be at least 1");
    assert_eq!(
        out.len(),
        rows * width,
        "buffer length must equal rows * width ({rows} * {width})"
    );
    if rows == 0 || width == 0 {
        return;
    }
    let threads = num_threads();
    if threads <= 1 || out.len() < PARALLEL_THRESHOLD {
        let mut r0 = 0;
        while r0 < rows {
            let end = (r0 + block).min(rows);
            f(r0, &mut out[r0 * width..end * width]);
            r0 = end;
        }
        return;
    }

    let chunk_rows = STEAL_CHUNK.div_ceil(block) * block;
    let num_chunks = rows.div_ceil(chunk_rows);
    let base = out.as_mut_ptr() as usize;
    let cursor = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..threads.min(num_chunks) {
            let f = &f;
            let cursor = &cursor;
            s.spawn(move |_| loop {
                let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                if chunk >= num_chunks {
                    return;
                }
                let chunk_start = chunk * chunk_rows;
                let chunk_end = (chunk_start + chunk_rows).min(rows);
                let mut r0 = chunk_start;
                while r0 < chunk_end {
                    let end = (r0 + block).min(chunk_end);
                    // SAFETY: chunk boundaries are multiples of `block`, so
                    // blocks never straddle chunks; each chunk is claimed by
                    // exactly one worker and the scope keeps the buffer alive.
                    let blk = unsafe {
                        std::slice::from_raw_parts_mut(
                            (base as *mut f32).add(r0 * width),
                            (end - r0) * width,
                        )
                    };
                    f(r0, blk);
                    r0 = end;
                }
            });
        }
    })
    .expect("kernel worker thread panicked");
}

/// Runs `f(row, row_values)` over the per-row value slices of a CSR matrix,
/// with the same nnz-weighted dynamic partitioning as [`par_rows_weighted`].
///
/// This is the scheduler for SDDMM-style kernels whose output *is* the CSR
/// value array: rows own disjoint `vals[indptr[r]..indptr[r+1]]` slices, so
/// every value is written by exactly one thread. `width_hint` states the
/// per-nonzero cost in flops (e.g. the dot-product length `k` for SDDMM) so
/// the serial threshold reflects actual work, not just nnz.
///
/// # Panics
///
/// Panics if `indptr` is empty, `vals.len()` disagrees with the final
/// `indptr` entry, or a worker thread panics.
pub fn par_sparse_rows<F>(vals: &mut [f32], indptr: &[u64], width_hint: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    assert!(!indptr.is_empty(), "indptr must have at least one entry");
    let rows = indptr.len() - 1;
    assert_eq!(
        vals.len() as u64,
        indptr[rows],
        "values length must equal the nnz recorded by indptr"
    );
    if rows == 0 {
        return;
    }
    let threads = num_threads();
    let work = vals.len().saturating_mul(width_hint.max(1));
    if threads <= 1 || work < PARALLEL_THRESHOLD {
        for r in 0..rows {
            f(r, &mut vals[indptr[r] as usize..indptr[r + 1] as usize]);
        }
        return;
    }

    let total = indptr[rows] + ROW_BASE_COST * rows as u64;
    let num_chunks = total.div_ceil(CHUNK_WEIGHT) as usize;
    let base = vals.as_mut_ptr() as usize;
    let cursor = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..threads.min(num_chunks) {
            let f = &f;
            let cursor = &cursor;
            s.spawn(move |_| loop {
                let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                if chunk >= num_chunks {
                    return;
                }
                let start = weighted_bound(indptr, chunk as u64 * CHUNK_WEIGHT);
                let end = weighted_bound(indptr, (chunk as u64 + 1) * CHUNK_WEIGHT);
                for r in start..end {
                    let lo = indptr[r] as usize;
                    let hi = indptr[r + 1] as usize;
                    // SAFETY: rows own disjoint value ranges, chunk row
                    // ranges partition the rows, and each chunk index is
                    // claimed by exactly one worker.
                    let slice = unsafe {
                        std::slice::from_raw_parts_mut((base as *mut f32).add(lo), hi - lo)
                    };
                    f(r, slice);
                }
            });
        }
    })
    .expect("kernel worker thread panicked");
}

/// Indices per chunk claimed by reduction workers. Larger than
/// [`STEAL_CHUNK`] because chunk results are materialized (one `T` each):
/// fewer chunks keep the result vector small while the atomic cursor still
/// balances skew.
const REDUCE_CHUNK: usize = 4 * STEAL_CHUNK;

/// Runs `f(range)` for contiguous chunks of an index range `0..n` in
/// parallel, collecting each chunk's result; used for reductions over rows.
///
/// Workers claim [`REDUCE_CHUNK`]-sized chunks from a shared atomic cursor,
/// the same dynamic distribution as [`par_rows`] — static even splits starve
/// under power-law skew, where one hub-heavy range costs as much as all the
/// others combined. Results are returned in ascending range order regardless
/// of which worker computed which chunk, so reductions that depend on chunk
/// order (e.g. ordered merges) stay deterministic.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn par_map_chunks<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> T + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    let threads = num_threads();
    if threads <= 1 || n < PARALLEL_THRESHOLD {
        return vec![f(0..n)];
    }
    let num_chunks = n.div_ceil(REDUCE_CHUNK);
    let cursor = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, T)> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..threads.min(num_chunks))
            .map(|_| {
                let f = &f;
                let cursor = &cursor;
                s.spawn(move |_| {
                    let mut local = Vec::new();
                    loop {
                        let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                        if chunk >= num_chunks {
                            return local;
                        }
                        let start = chunk * REDUCE_CHUNK;
                        let end = (start + REDUCE_CHUNK).min(n);
                        local.push((chunk, f(start..end)));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("kernel worker thread panicked");
    tagged.sort_by_key(|&(chunk, _)| chunk);
    tagged.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_rows_visits_every_row_once() {
        let width = 8;
        let rows = 5000; // above the threshold
        let mut buf = vec![0.0f32; rows * width];
        par_rows(&mut buf, rows, width, |r, row| {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (r * width + j) as f32;
            }
        });
        for (k, &v) in buf.iter().enumerate() {
            assert_eq!(v, k as f32);
        }
    }

    #[test]
    fn par_rows_serial_small_input() {
        let mut buf = vec![0.0f32; 12];
        par_rows(&mut buf, 4, 3, |r, row| {
            row.iter_mut().for_each(|v| *v = r as f32)
        });
        assert_eq!(
            buf,
            vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0]
        );
    }

    #[test]
    fn par_rows_zero_width_is_noop() {
        let mut buf: Vec<f32> = vec![];
        par_rows(&mut buf, 7, 0, |_, _| panic!("must not be called"));
        par_rows(&mut buf, 0, 5, |_, _| panic!("must not be called"));
    }

    #[test]
    #[should_panic(expected = "buffer length must equal rows * width")]
    fn par_rows_rejects_wrong_geometry() {
        // 12 elements reinterpreted as 6x2 instead of the true 4x3: the
        // length still divides, so only the explicit rows argument can catch
        // the mismatch against the stated 4-row geometry.
        let mut buf = vec![0.0f32; 12];
        par_rows(&mut buf, 4, 2, |_, _| {});
    }

    #[test]
    fn resolve_threads_defaults_and_caps_hardware() {
        assert_eq!(resolve_threads(None, 8), (8, None));
        assert_eq!(resolve_threads(None, 0), (1, None));
        let (n, warn) = resolve_threads(None, 128);
        assert_eq!((n, warn), (MAX_THREADS, None));
    }

    #[test]
    fn resolve_threads_env_override_is_capped() {
        assert_eq!(resolve_threads(Some("4"), 8), (4, None));
        assert_eq!(resolve_threads(Some(" 12 "), 2), (12, None));
        // The cap applies to the override path too, not just the default.
        let (n, warn) = resolve_threads(Some("512"), 8);
        assert_eq!(n, MAX_THREADS);
        assert!(
            warn.is_none(),
            "in-range-after-cap override is not an error"
        );
    }

    #[test]
    fn resolve_threads_warns_on_malformed_env() {
        for bad in ["8x", "", "abc", "-2", "0"] {
            let (n, warn) = resolve_threads(Some(bad), 8);
            assert_eq!(n, 8, "malformed {bad:?} must fall back to hardware");
            let msg = warn.expect("malformed input must produce a warning");
            assert!(msg.contains("GRANII_THREADS"), "warning names the var");
        }
    }

    #[test]
    fn par_rows_balances_skewed_work() {
        // A skewed workload: row 0 costs ~rows times more than the others.
        // With work stealing the wall time should be well under the serial
        // time; here we only assert correctness under skew (each row written
        // exactly once with its own index).
        let width = 4;
        let rows = 20_000;
        let mut buf = vec![-1.0f32; rows * width];
        par_rows(&mut buf, rows, width, |r, row| {
            let spin = if r == 0 { 20_000 } else { 1 };
            let mut acc = 0f32;
            for i in 0..spin {
                acc += (i % 7) as f32;
            }
            let _ = acc;
            row.iter_mut().for_each(|v| *v = r as f32);
        });
        for (k, &v) in buf.iter().enumerate() {
            assert_eq!(v, (k / width) as f32);
        }
    }

    /// indptr for a synthetic power-law-ish shape: one hub row carrying most
    /// of the nnz, a run of empty rows, and uniform leaf rows.
    fn skewed_indptr(rows: usize) -> Vec<u64> {
        let mut indptr = vec![0u64];
        let mut nnz = 0u64;
        for r in 0..rows {
            nnz += match r {
                0 => 50_000,            // hub
                r if r % 7 == 3 => 0,   // empty rows
                r if r % 11 == 0 => 40, // mid-degree
                _ => 2,                 // leaves
            };
            indptr.push(nnz);
        }
        indptr
    }

    #[test]
    fn weighted_bound_partitions_rows_exactly() {
        let indptr = skewed_indptr(9_000);
        let rows = indptr.len() - 1;
        let total = indptr[rows] + ROW_BASE_COST * rows as u64;
        let num_chunks = total.div_ceil(CHUNK_WEIGHT) as usize;
        let mut covered = 0usize;
        let mut prev_end = 0usize;
        for c in 0..num_chunks {
            let start = weighted_bound(&indptr, c as u64 * CHUNK_WEIGHT);
            let end = weighted_bound(&indptr, (c as u64 + 1) * CHUNK_WEIGHT);
            assert_eq!(start, prev_end, "chunks must tile the row range");
            assert!(end >= start);
            // No chunk may exceed its weight budget by more than one row's
            // worth of work (the row that crossed the boundary).
            if end > start {
                let weight = (indptr[end] - indptr[start]) + ROW_BASE_COST * (end - start) as u64;
                let last_row = (indptr[end] - indptr[end - 1]) + ROW_BASE_COST;
                assert!(
                    weight <= CHUNK_WEIGHT + last_row,
                    "chunk {c} weight {weight} exceeds budget"
                );
            }
            covered += end - start;
            prev_end = end;
        }
        assert_eq!(covered, rows, "every row assigned to exactly one chunk");
        assert_eq!(prev_end, rows);
    }

    #[test]
    fn par_rows_weighted_visits_every_row_once() {
        let indptr = skewed_indptr(9_000);
        let rows = indptr.len() - 1;
        let width = 8;
        let mut buf = vec![-1.0f32; rows * width];
        par_rows_weighted(&mut buf, rows, width, &indptr, |r, row| {
            assert_eq!(row.len(), width);
            row.iter_mut().for_each(|v| *v = r as f32);
        });
        for (k, &v) in buf.iter().enumerate() {
            assert_eq!(v, (k / width) as f32);
        }
    }

    #[test]
    fn par_rows_weighted_serial_small_input() {
        let indptr = vec![0u64, 2, 2, 5];
        let mut buf = vec![0.0f32; 9];
        par_rows_weighted(&mut buf, 3, 3, &indptr, |r, row| {
            row.iter_mut().for_each(|v| *v = r as f32)
        });
        assert_eq!(buf, vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "indptr length must equal rows + 1")]
    fn par_rows_weighted_rejects_wrong_indptr() {
        let mut buf = vec![0.0f32; 12];
        par_rows_weighted(&mut buf, 4, 3, &[0, 1, 2], |_, _| {});
    }

    #[test]
    fn par_row_blocks_covers_all_rows_with_aligned_blocks() {
        let width = 4;
        let rows = 10_001; // not a multiple of the block: short tail block
        let block = 4;
        let mut buf = vec![-1.0f32; rows * width];
        par_row_blocks(&mut buf, rows, width, block, |r0, blk| {
            assert_eq!(r0 % block, 0, "blocks must stay aligned to row 0");
            let nrows = blk.len() / width;
            assert!(nrows >= 1 && nrows <= block);
            for (i, row) in blk.chunks_exact_mut(width).enumerate() {
                row.iter_mut().for_each(|v| *v = (r0 + i) as f32);
            }
        });
        for (k, &v) in buf.iter().enumerate() {
            assert_eq!(v, (k / width) as f32);
        }
    }

    #[test]
    fn par_row_blocks_serial_small_input() {
        let mut buf = vec![0.0f32; 10];
        par_row_blocks(&mut buf, 5, 2, 2, |r0, blk| {
            for (i, row) in blk.chunks_exact_mut(2).enumerate() {
                row.iter_mut().for_each(|v| *v = (r0 + i) as f32);
            }
        });
        assert_eq!(buf, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0]);
    }

    #[test]
    fn par_sparse_rows_writes_each_value_once() {
        let indptr = skewed_indptr(9_000);
        let rows = indptr.len() - 1;
        let nnz = indptr[rows] as usize;
        let mut vals = vec![-1.0f32; nnz];
        par_sparse_rows(&mut vals, &indptr, 4, |r, slice| {
            assert_eq!(slice.len() as u64, indptr[r + 1] - indptr[r]);
            slice.iter_mut().for_each(|v| *v = r as f32);
        });
        for r in 0..rows {
            for &v in &vals[indptr[r] as usize..indptr[r + 1] as usize] {
                assert_eq!(v, r as f32);
            }
        }
    }

    #[test]
    #[should_panic(expected = "values length must equal the nnz")]
    fn par_sparse_rows_rejects_wrong_values_length() {
        let mut vals = vec![0.0f32; 3];
        par_sparse_rows(&mut vals, &[0u64, 2, 4], 1, |_, _| {});
    }

    #[test]
    fn par_map_chunks_covers_range() {
        let parts = par_map_chunks(100_000, |r| r.len());
        assert_eq!(parts.iter().sum::<usize>(), 100_000);
    }

    #[test]
    fn par_map_chunks_results_are_order_stable() {
        // Chunks are claimed dynamically, but results must come back sorted
        // by range start so order-dependent reductions stay deterministic.
        let n = 100_000;
        let parts = par_map_chunks(n, |r| r.clone());
        let mut next = 0;
        for r in &parts {
            assert_eq!(r.start, next, "ranges out of order or gapped");
            next = r.end;
        }
        assert_eq!(next, n);
    }

    #[test]
    fn par_map_chunks_balances_skewed_work() {
        // A hub-heavy prefix: indices below 256 cost ~1000x the rest. Static
        // even splits would serialize on the first worker; with dynamic
        // claiming the result must still be correct and complete.
        let n = 50_000;
        let parts = par_map_chunks(n, |r| {
            let mut acc = 0u64;
            for i in r {
                let spin = if i < 256 { 1000 } else { 1 };
                for s in 0..spin {
                    acc = acc.wrapping_add((i ^ s) as u64 % 11);
                }
            }
            acc
        });
        let serial: u64 = {
            let mut acc = 0u64;
            for i in 0..n {
                let spin = if i < 256 { 1000 } else { 1 };
                for s in 0..spin {
                    acc = acc.wrapping_add((i ^ s) as u64 % 11);
                }
            }
            acc
        };
        assert_eq!(parts.iter().sum::<u64>(), serial);
    }
}
