use std::fmt;

/// Errors produced by matrix construction and kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MatrixError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Operation name, e.g. `"gemm"`.
        op: &'static str,
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// A matrix entry referenced a row or column outside the declared shape.
    IndexOutOfBounds {
        /// The offending (row, col) pair.
        index: (usize, usize),
        /// The declared shape.
        shape: (usize, usize),
    },
    /// Raw CSR arrays did not satisfy the CSR invariants.
    InvalidCsr(String),
    /// The operation requires edge values but the sparse matrix is unweighted.
    MissingValues(&'static str),
    /// The requested allocation exceeds the configured guard limit.
    ///
    /// This models the out-of-memory / illegal-memory-access failures reported
    /// for some baseline configurations in the paper's Figure 8 and Table IV.
    AllocationTooLarge {
        /// Number of `f32` elements requested.
        elements: usize,
        /// Allowed maximum.
        limit: usize,
    },
    /// The dense buffer length did not match `rows * cols`.
    InvalidDenseLength {
        /// Length provided.
        len: usize,
        /// Expected length.
        expected: usize,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MatrixError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            MatrixError::InvalidCsr(msg) => write!(f, "invalid CSR structure: {msg}"),
            MatrixError::MissingValues(op) => {
                write!(f, "{op} requires edge values but the matrix is unweighted")
            }
            MatrixError::AllocationTooLarge { elements, limit } => write!(
                f,
                "allocation of {elements} elements exceeds guard limit of {limit}"
            ),
            MatrixError::InvalidDenseLength { len, expected } => {
                write!(
                    f,
                    "dense buffer length {len} does not match rows*cols = {expected}"
                )
            }
        }
    }
}

impl std::error::Error for MatrixError {}
