use serde::{Deserialize, Serialize};

use crate::{CsrMatrix, MatrixError, Result};

/// A sparse matrix in coordinate (triplet) form.
///
/// COO is the builder format: graph generators and IO produce COO, and
/// [`CooMatrix::to_csr`] converts to the execution format. Duplicate entries
/// are summed during conversion, matching SciPy/DGL semantics.
///
/// # Example
///
/// ```
/// use granii_matrix::CooMatrix;
///
/// # fn main() -> Result<(), granii_matrix::MatrixError> {
/// let coo = CooMatrix::from_entries(2, 2, &[(0, 1, 1.0), (1, 0, 2.0)])?;
/// let csr = coo.to_csr();
/// assert_eq!(csr.nnz(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f32)>,
}

impl CooMatrix {
    /// Creates an empty COO matrix of the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates a COO matrix from `(row, col, value)` triplets.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::IndexOutOfBounds`] if any triplet lies outside
    /// the declared shape.
    pub fn from_entries(rows: usize, cols: usize, entries: &[(usize, usize, f32)]) -> Result<Self> {
        let mut coo = Self::new(rows, cols);
        for &(r, c, v) in entries {
            coo.push(r, c, v)?;
        }
        Ok(coo)
    }

    /// Appends one entry.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::IndexOutOfBounds`] if `(row, col)` is outside the
    /// declared shape.
    pub fn push(&mut self, row: usize, col: usize, value: f32) -> Result<()> {
        if row >= self.rows || col >= self.cols {
            return Err(MatrixError::IndexOutOfBounds {
                index: (row, col),
                shape: (self.rows, self.cols),
            });
        }
        self.entries.push((row as u32, col as u32, value));
        Ok(())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored triplets (before duplicate merging).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no triplets are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over stored triplets as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        self.entries
            .iter()
            .map(|&(r, c, v)| (r as usize, c as usize, v))
    }

    /// Converts to CSR, sorting entries and summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row, then sort columns within each row.
        let mut counts = vec![0usize; self.rows + 1];
        for &(r, _, _) in &self.entries {
            counts[r as usize + 1] += 1;
        }
        for i in 0..self.rows {
            counts[i + 1] += counts[i];
        }
        let mut slots = counts.clone();
        let mut col_buf = vec![0u32; self.entries.len()];
        let mut val_buf = vec![0f32; self.entries.len()];
        for &(r, c, v) in &self.entries {
            let slot = slots[r as usize];
            col_buf[slot] = c;
            val_buf[slot] = v;
            slots[r as usize] += 1;
        }

        let mut indptr = Vec::with_capacity(self.rows + 1);
        indptr.push(0u64);
        let mut indices = Vec::with_capacity(self.entries.len());
        let mut values = Vec::with_capacity(self.entries.len());
        let mut scratch: Vec<(u32, f32)> = Vec::new();
        for r in 0..self.rows {
            scratch.clear();
            scratch.extend(
                col_buf[counts[r]..counts[r + 1]]
                    .iter()
                    .copied()
                    .zip(val_buf[counts[r]..counts[r + 1]].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let (c, mut v) = scratch[i];
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                indices.push(c);
                values.push(v);
                i = j;
            }
            indptr.push(indices.len() as u64);
        }
        CsrMatrix::from_parts_unchecked(self.rows, self.cols, indptr, indices, Some(values))
    }

    /// Converts to CSR discarding values (an *unweighted* sparse matrix whose
    /// implicit entries are all 1), still merging duplicate positions.
    pub fn to_csr_unweighted(&self) -> CsrMatrix {
        self.to_csr().drop_values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_bounds() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(coo.push(2, 0, 1.0).is_err());
        assert!(coo.push(0, 2, 1.0).is_err());
        assert!(coo.push(1, 1, 1.0).is_ok());
    }

    #[test]
    fn to_csr_sorts_and_merges_duplicates() {
        let coo =
            CooMatrix::from_entries(2, 3, &[(1, 2, 1.0), (0, 1, 2.0), (1, 0, 3.0), (0, 1, 4.0)])
                .unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.row_indices(0), &[1]);
        assert_eq!(csr.row_values(0).unwrap(), &[6.0]);
        assert_eq!(csr.row_indices(1), &[0, 2]);
    }

    #[test]
    fn empty_rows_are_represented() {
        let coo = CooMatrix::from_entries(3, 3, &[(2, 0, 1.0)]).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.row_indices(0), &[] as &[u32]);
        assert_eq!(csr.row_indices(1), &[] as &[u32]);
        assert_eq!(csr.row_indices(2), &[0]);
    }

    #[test]
    fn unweighted_conversion_drops_values() {
        let coo = CooMatrix::from_entries(2, 2, &[(0, 0, 5.0)]).unwrap();
        let csr = coo.to_csr_unweighted();
        assert!(csr.values().is_none());
        assert_eq!(csr.nnz(), 1);
    }
}
