//! Work accounting for matrix primitives.
//!
//! Every kernel in [`crate::ops`] can describe the work it performs as a
//! [`WorkStats`] record. The analytical device models (see [`crate::device`])
//! convert these records into modeled latencies, and GRANII's cost-model
//! training pipeline uses them as ground-truth features.

use serde::{Deserialize, Serialize};

/// The sparse/dense matrix primitive taxonomy used throughout GRANII.
///
/// One learned cost model is trained per variant and device (paper §IV-E2:
/// "GRANII trains these models for each dense and sparse matrix primitive,
/// and target hardware architecture").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PrimitiveKind {
    /// Dense-dense matrix multiplication.
    Gemm,
    /// Sparse-dense multiplication reading edge values (`g-SpMM(⊕, ×)`).
    SpmmWeighted,
    /// Sparse-dense multiplication ignoring edge values (`g-SpMM(⊕, copy_u)`).
    SpmmUnweighted,
    /// Sampled dense-dense multiplication (output on a sparse mask).
    Sddmm,
    /// Per-row scaling of a dense matrix by a vector (Eq. 1 in the paper).
    RowBroadcast,
    /// Per-column scaling of a dense matrix by a vector.
    ColBroadcast,
    /// Element-wise dense map (ReLU, bias add, ...).
    Elementwise,
    /// Softmax over each node's incident edges (GAT attention normalization).
    EdgeSoftmax,
    /// Scatter-add edge binning used by WiseGraph's normalization (§VI-C1).
    Binning,
}

impl PrimitiveKind {
    /// All variants, in a stable order (used to train one cost model each).
    pub const ALL: [PrimitiveKind; 9] = [
        PrimitiveKind::Gemm,
        PrimitiveKind::SpmmWeighted,
        PrimitiveKind::SpmmUnweighted,
        PrimitiveKind::Sddmm,
        PrimitiveKind::RowBroadcast,
        PrimitiveKind::ColBroadcast,
        PrimitiveKind::Elementwise,
        PrimitiveKind::EdgeSoftmax,
        PrimitiveKind::Binning,
    ];

    /// Whether the primitive's access pattern is sparse (graph-dependent).
    pub fn is_sparse(self) -> bool {
        matches!(
            self,
            PrimitiveKind::SpmmWeighted
                | PrimitiveKind::SpmmUnweighted
                | PrimitiveKind::Sddmm
                | PrimitiveKind::EdgeSoftmax
                | PrimitiveKind::Binning
        )
    }

    /// Short stable name, used in reports and on-disk cost-model files.
    pub fn name(self) -> &'static str {
        match self {
            PrimitiveKind::Gemm => "gemm",
            PrimitiveKind::SpmmWeighted => "spmm_weighted",
            PrimitiveKind::SpmmUnweighted => "spmm_unweighted",
            PrimitiveKind::Sddmm => "sddmm",
            PrimitiveKind::RowBroadcast => "row_broadcast",
            PrimitiveKind::ColBroadcast => "col_broadcast",
            PrimitiveKind::Elementwise => "elementwise",
            PrimitiveKind::EdgeSoftmax => "edge_softmax",
            PrimitiveKind::Binning => "binning",
        }
    }

    /// Telemetry span name for one dispatch of this primitive
    /// (`"kernel." + self.name()`).
    pub fn span_name(self) -> &'static str {
        match self {
            PrimitiveKind::Gemm => "kernel.gemm",
            PrimitiveKind::SpmmWeighted => "kernel.spmm_weighted",
            PrimitiveKind::SpmmUnweighted => "kernel.spmm_unweighted",
            PrimitiveKind::Sddmm => "kernel.sddmm",
            PrimitiveKind::RowBroadcast => "kernel.row_broadcast",
            PrimitiveKind::ColBroadcast => "kernel.col_broadcast",
            PrimitiveKind::Elementwise => "kernel.elementwise",
            PrimitiveKind::EdgeSoftmax => "kernel.edge_softmax",
            PrimitiveKind::Binning => "kernel.binning",
        }
    }
}

impl std::fmt::Display for PrimitiveKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Work performed by one primitive invocation.
///
/// # Example
///
/// ```
/// use granii_matrix::WorkStats;
///
/// let a = WorkStats::gemm(128, 64, 32);
/// assert_eq!(a.flops, 2 * 128 * 64 * 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkStats {
    /// Which primitive produced this record.
    pub kind: PrimitiveKind,
    /// Floating-point operations performed.
    pub flops: u64,
    /// Bytes read from memory (modeled, assuming cold operands).
    pub bytes_read: u64,
    /// Bytes written to memory.
    pub bytes_written: u64,
    /// Atomic read-modify-write operations issued.
    pub atomic_ops: u64,
    /// Expected collisions per atomic target (contention factor ≥ 1).
    pub atomic_contention: f64,
    /// Irregularity of the access pattern: coefficient of variation of the
    /// per-row work distribution (0 for dense primitives).
    pub irregularity: f64,
    /// Kernel launches (a composition of primitives pays one launch each).
    pub launches: u32,
}

const F32: u64 = 4;
const IDX: u64 = 4;

impl WorkStats {
    fn base(kind: PrimitiveKind) -> Self {
        Self {
            kind,
            flops: 0,
            bytes_read: 0,
            bytes_written: 0,
            atomic_ops: 0,
            atomic_contention: 1.0,
            irregularity: 0.0,
            launches: 1,
        }
    }

    /// GEMM of an `n x k1` by a `k1 x k2` matrix.
    pub fn gemm(n: usize, k1: usize, k2: usize) -> Self {
        let (n, k1, k2) = (n as u64, k1 as u64, k2 as u64);
        Self {
            flops: 2 * n * k1 * k2,
            bytes_read: F32 * (n * k1 + k1 * k2),
            bytes_written: F32 * n * k2,
            ..Self::base(PrimitiveKind::Gemm)
        }
    }

    /// g-SpMM over `nnz` edges producing an `n x k` output.
    ///
    /// `weighted` selects the cost of streaming the edge-value array and
    /// `irregularity` is the degree coefficient of variation of the sparse
    /// operand.
    pub fn spmm(n: usize, nnz: usize, k: usize, weighted: bool, irregularity: f64) -> Self {
        let (n, nnz, k) = (n as u64, nnz as u64, k as u64);
        let kind = if weighted {
            PrimitiveKind::SpmmWeighted
        } else {
            PrimitiveKind::SpmmUnweighted
        };
        let value_bytes = if weighted { F32 * nnz } else { 0 };
        Self {
            flops: if weighted { 2 * nnz * k } else { nnz * k },
            // Column indices + edge values + gathered feature rows + indptr.
            bytes_read: IDX * nnz + value_bytes + F32 * nnz * k + 8 * (n + 1),
            bytes_written: F32 * n * k,
            irregularity,
            ..Self::base(kind)
        }
    }

    /// g-SDDMM over `nnz` sampled positions with `k`-dim dense operands.
    pub fn sddmm(n: usize, nnz: usize, k: usize, irregularity: f64) -> Self {
        let (n, nnz, k) = (n as u64, nnz as u64, k as u64);
        Self {
            flops: 2 * nnz * k,
            bytes_read: IDX * nnz + 2 * F32 * nnz * k + 8 * (n + 1),
            bytes_written: F32 * nnz,
            irregularity,
            ..Self::base(PrimitiveKind::Sddmm)
        }
    }

    /// Row-broadcast over an `n x k` dense matrix.
    pub fn row_broadcast(n: usize, k: usize) -> Self {
        let (n, k) = (n as u64, k as u64);
        Self {
            flops: n * k,
            bytes_read: F32 * (n * k + n),
            bytes_written: F32 * n * k,
            ..Self::base(PrimitiveKind::RowBroadcast)
        }
    }

    /// Column-broadcast over an `n x k` dense matrix.
    pub fn col_broadcast(n: usize, k: usize) -> Self {
        let s = Self::row_broadcast(n, k);
        Self {
            kind: PrimitiveKind::ColBroadcast,
            ..s
        }
    }

    /// Element-wise map over `elems` values with `flops_per_elem` operations.
    pub fn elementwise(elems: usize, flops_per_elem: u32) -> Self {
        let elems = elems as u64;
        Self {
            flops: elems * flops_per_elem as u64,
            bytes_read: F32 * elems,
            bytes_written: F32 * elems,
            ..Self::base(PrimitiveKind::Elementwise)
        }
    }

    /// Edge softmax over `nnz` edges grouped into `n` destination rows.
    pub fn edge_softmax(n: usize, nnz: usize, irregularity: f64) -> Self {
        let (n, nnz) = (n as u64, nnz as u64);
        Self {
            flops: 5 * nnz,
            // Three passes over edge values (max, exp-sum, divide).
            bytes_read: 3 * F32 * nnz + 8 * (n + 1),
            bytes_written: F32 * nnz,
            irregularity,
            ..Self::base(PrimitiveKind::EdgeSoftmax)
        }
    }

    /// Scatter-add binning of `nnz` items into `bins` targets (WiseGraph's
    /// normalization path). Contention grows as items per bin (`nnz / bins`),
    /// which is what makes this primitive pathological on dense graphs
    /// (paper §VI-C1).
    pub fn binning(nnz: usize, bins: usize) -> Self {
        let contention = if bins > 0 {
            (nnz as f64 / bins as f64).max(1.0)
        } else {
            1.0
        };
        let (nnz, bins) = (nnz as u64, bins as u64);
        Self {
            flops: nnz,
            bytes_read: IDX * nnz,
            bytes_written: F32 * bins,
            atomic_ops: nnz,
            atomic_contention: contention,
            ..Self::base(PrimitiveKind::Binning)
        }
    }

    /// Total bytes moved.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Arithmetic intensity (flops per byte moved).
    pub fn intensity(&self) -> f64 {
        let b = self.bytes_total();
        if b == 0 {
            0.0
        } else {
            self.flops as f64 / b as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_flops_formula() {
        let s = WorkStats::gemm(10, 20, 30);
        assert_eq!(s.flops, 2 * 10 * 20 * 30);
        assert_eq!(s.kind, PrimitiveKind::Gemm);
        assert!(!s.kind.is_sparse());
    }

    #[test]
    fn spmm_weighted_reads_values() {
        let w = WorkStats::spmm(100, 1000, 16, true, 0.5);
        let u = WorkStats::spmm(100, 1000, 16, false, 0.5);
        assert!(w.bytes_read > u.bytes_read);
        assert!(w.flops > u.flops);
        assert_eq!(w.kind, PrimitiveKind::SpmmWeighted);
        assert_eq!(u.kind, PrimitiveKind::SpmmUnweighted);
        assert!(w.kind.is_sparse());
    }

    #[test]
    fn binning_contention_scales_with_density() {
        let sparse = WorkStats::binning(1000, 1000);
        let dense = WorkStats::binning(100_000, 1000);
        assert!(dense.atomic_contention > sparse.atomic_contention);
        assert_eq!(sparse.atomic_contention, 1.0);
    }

    #[test]
    fn intensity_is_flops_per_byte() {
        let s = WorkStats::gemm(64, 64, 64);
        let expect = s.flops as f64 / s.bytes_total() as f64;
        assert!((s.intensity() - expect).abs() < 1e-12);
    }

    #[test]
    fn all_kinds_have_unique_names() {
        let mut names: Vec<_> = PrimitiveKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PrimitiveKind::ALL.len());
    }
}
