use serde::{Deserialize, Serialize};

use crate::{DenseMatrix, MatrixError, Result};

/// A sparse matrix in compressed sparse row (CSR) form.
///
/// `values` is optional: `None` represents an *unweighted* sparse matrix whose
/// stored entries are implicitly `1.0`. This distinction matters to GRANII —
/// the paper's Table I tracks `weighted` vs `unweighted` as sparse
/// sub-attributes because unweighted aggregation admits a cheaper g-SpMM that
/// never reads edge values (§III-A).
///
/// # Example
///
/// ```
/// use granii_matrix::CsrMatrix;
///
/// # fn main() -> Result<(), granii_matrix::MatrixError> {
/// let csr = CsrMatrix::from_parts(2, 2, vec![0, 1, 2], vec![1, 0], None)?;
/// assert_eq!(csr.nnz(), 2);
/// assert!(!csr.is_weighted());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<u64>,
    indices: Vec<u32>,
    values: Option<Vec<f32>>,
}

/// Summary statistics of the row-length (degree) distribution of a CSR matrix.
///
/// These are the structural inputs to GRANII's input featurizer and to the
/// device models' irregularity penalty.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RowStats {
    /// Mean nonzeros per row.
    pub mean: f64,
    /// Maximum nonzeros in any row.
    pub max: u64,
    /// Minimum nonzeros in any row.
    pub min: u64,
    /// Standard deviation of nonzeros per row.
    pub std_dev: f64,
    /// Coefficient of variation (`std_dev / mean`, 0 for empty matrices).
    pub cv: f64,
    /// Fraction of rows with zero nonzeros.
    pub empty_row_fraction: f64,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw arrays, validating every invariant.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidCsr`] if `indptr` has the wrong length, is
    /// not monotone, does not end at `indices.len()`, if any column index is
    /// out of range, if columns within a row are not strictly increasing, or if
    /// `values` is present with a length different from `indices`.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<u64>,
        indices: Vec<u32>,
        values: Option<Vec<f32>>,
    ) -> Result<Self> {
        if indptr.len() != rows + 1 {
            return Err(MatrixError::InvalidCsr(format!(
                "indptr length {} != rows + 1 = {}",
                indptr.len(),
                rows + 1
            )));
        }
        if indptr.first() != Some(&0) {
            return Err(MatrixError::InvalidCsr("indptr must start at 0".into()));
        }
        if *indptr.last().expect("indptr nonempty") != indices.len() as u64 {
            return Err(MatrixError::InvalidCsr(format!(
                "indptr must end at nnz = {}, got {}",
                indices.len(),
                indptr.last().unwrap()
            )));
        }
        for w in indptr.windows(2) {
            if w[0] > w[1] {
                return Err(MatrixError::InvalidCsr(
                    "indptr must be nondecreasing".into(),
                ));
            }
        }
        for r in 0..rows {
            let (s, e) = (indptr[r] as usize, indptr[r + 1] as usize);
            let row = &indices[s..e];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(MatrixError::InvalidCsr(format!(
                        "columns in row {r} must be strictly increasing"
                    )));
                }
            }
            if let Some(&last) = row.last() {
                if last as usize >= cols {
                    return Err(MatrixError::InvalidCsr(format!(
                        "column {last} out of range in row {r} (cols = {cols})"
                    )));
                }
            }
        }
        if let Some(v) = &values {
            if v.len() != indices.len() {
                return Err(MatrixError::InvalidCsr(format!(
                    "values length {} != nnz {}",
                    v.len(),
                    indices.len()
                )));
            }
        }
        Ok(Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// Builds a CSR matrix without validation. Used by trusted in-crate
    /// conversions (e.g. COO sorting) that construct valid arrays by design.
    pub(crate) fn from_parts_unchecked(
        rows: usize,
        cols: usize,
        indptr: Vec<u64>,
        indices: Vec<u32>,
        values: Option<Vec<f32>>,
    ) -> Self {
        debug_assert_eq!(indptr.len(), rows + 1);
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// An identity matrix of size `n` (weighted, all ones on the diagonal).
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            indptr: (0..=n as u64).collect(),
            indices: (0..n as u32).collect(),
            values: Some(vec![1.0; n]),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Density (`nnz / (rows * cols)`), 0 for degenerate shapes.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// Whether edge values are stored.
    pub fn is_weighted(&self) -> bool {
        self.values.is_some()
    }

    /// The row-pointer array.
    pub fn indptr(&self) -> &[u64] {
        &self.indptr
    }

    /// The column-index array.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The value array, if the matrix is weighted.
    pub fn values(&self) -> Option<&[f32]> {
        self.values.as_deref()
    }

    /// Mutable access to the value array, if the matrix is weighted. The
    /// `_into` kernels write results through this without reallocating.
    pub fn values_mut(&mut self) -> Option<&mut [f32]> {
        self.values.as_deref_mut()
    }

    /// Column indices of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_indices(&self, r: usize) -> &[u32] {
        assert!(r < self.rows, "row index out of bounds");
        &self.indices[self.indptr[r] as usize..self.indptr[r + 1] as usize]
    }

    /// Values of row `r`, if weighted.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_values(&self, r: usize) -> Option<&[f32]> {
        assert!(r < self.rows, "row index out of bounds");
        self.values
            .as_ref()
            .map(|v| &v[self.indptr[r] as usize..self.indptr[r + 1] as usize])
    }

    /// Number of nonzeros in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_nnz(&self, r: usize) -> usize {
        assert!(r < self.rows, "row index out of bounds");
        (self.indptr[r + 1] - self.indptr[r]) as usize
    }

    /// Returns a copy of this matrix without values (unweighted).
    pub fn drop_values(mut self) -> CsrMatrix {
        self.values = None;
        self
    }

    /// Returns a copy of this matrix with the given values attached.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidCsr`] if `values.len() != nnz`.
    pub fn with_values(mut self, values: Vec<f32>) -> Result<CsrMatrix> {
        if values.len() != self.nnz() {
            return Err(MatrixError::InvalidCsr(format!(
                "values length {} != nnz {}",
                values.len(),
                self.nnz()
            )));
        }
        self.values = Some(values);
        Ok(self)
    }

    /// Out-degrees (row lengths) as `f32`.
    pub fn out_degrees(&self) -> Vec<f32> {
        (0..self.rows).map(|r| self.row_nnz(r) as f32).collect()
    }

    /// In-degrees (column counts) computed by a scatter pass.
    pub fn in_degrees(&self) -> Vec<f32> {
        let mut deg = vec![0.0f32; self.cols];
        for &c in &self.indices {
            deg[c as usize] += 1.0;
        }
        deg
    }

    /// Row-length distribution statistics.
    pub fn row_stats(&self) -> RowStats {
        if self.rows == 0 {
            return RowStats {
                mean: 0.0,
                max: 0,
                min: 0,
                std_dev: 0.0,
                cv: 0.0,
                empty_row_fraction: 0.0,
            };
        }
        let mut max = 0u64;
        let mut min = u64::MAX;
        let mut sum = 0u64;
        let mut sum_sq = 0f64;
        let mut empty = 0usize;
        for r in 0..self.rows {
            let d = self.indptr[r + 1] - self.indptr[r];
            max = max.max(d);
            min = min.min(d);
            sum += d;
            sum_sq += (d as f64) * (d as f64);
            if d == 0 {
                empty += 1;
            }
        }
        let n = self.rows as f64;
        let mean = sum as f64 / n;
        let var = (sum_sq / n - mean * mean).max(0.0);
        let std_dev = var.sqrt();
        let cv = if mean > 0.0 { std_dev / mean } else { 0.0 };
        RowStats {
            mean,
            max,
            min,
            std_dev,
            cv,
            empty_row_fraction: empty as f64 / n,
        }
    }

    /// Transposes the matrix (CSR → CSR of the transpose).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0u64; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut slots = counts;
        let mut indices = vec![0u32; self.nnz()];
        let mut values = self.values.as_ref().map(|_| vec![0f32; self.nnz()]);
        for r in 0..self.rows {
            let (s, e) = (self.indptr[r] as usize, self.indptr[r + 1] as usize);
            for k in s..e {
                let c = self.indices[k] as usize;
                let slot = slots[c] as usize;
                indices[slot] = r as u32;
                if let (Some(out), Some(vin)) = (&mut values, &self.values) {
                    out[slot] = vin[k];
                }
                slots[c] += 1;
            }
        }
        // Rows of the transpose come out sorted because we scan source rows in
        // increasing order.
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Whether the sparsity pattern is symmetric (values ignored).
    pub fn is_pattern_symmetric(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let t = self.transpose();
        self.indptr == t.indptr && self.indices == t.indices
    }

    /// Materializes the matrix as dense; intended for tests and tiny inputs.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::AllocationTooLarge`] if the dense form exceeds
    /// the allocation guard.
    pub fn to_dense(&self) -> Result<DenseMatrix> {
        let mut out = DenseMatrix::zeros(self.rows, self.cols)?;
        for r in 0..self.rows {
            let (s, e) = (self.indptr[r] as usize, self.indptr[r + 1] as usize);
            for k in s..e {
                let c = self.indices[k] as usize;
                let v = self.values.as_ref().map_or(1.0, |v| v[k]);
                out.set(r, c, v);
            }
        }
        Ok(out)
    }

    /// Value at `(row, col)`, treating missing entries as 0 and unweighted
    /// stored entries as 1.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(
            row < self.rows && col < self.cols,
            "sparse index out of bounds"
        );
        let cols = self.row_indices(row);
        match cols.binary_search(&(col as u32)) {
            Ok(k) => self.row_values(row).map_or(1.0, |v| v[k]),
            Err(_) => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[0 1 0], [2 0 3]]
        CsrMatrix::from_parts(
            2,
            3,
            vec![0, 1, 3],
            vec![1, 0, 2],
            Some(vec![1.0, 2.0, 3.0]),
        )
        .unwrap()
    }

    #[test]
    fn from_parts_validates_indptr_len() {
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1], vec![0], None).is_err());
    }

    #[test]
    fn from_parts_validates_monotonicity() {
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], None).is_err());
    }

    #[test]
    fn from_parts_validates_column_order_and_range() {
        assert!(CsrMatrix::from_parts(1, 3, vec![0, 2], vec![2, 1], None).is_err());
        assert!(CsrMatrix::from_parts(1, 2, vec![0, 1], vec![5], None).is_err());
        assert!(CsrMatrix::from_parts(1, 2, vec![0, 2], vec![1, 1], None).is_err());
    }

    #[test]
    fn from_parts_validates_values_len() {
        assert!(CsrMatrix::from_parts(1, 2, vec![0, 1], vec![0], Some(vec![1.0, 2.0])).is_err());
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.to_dense().unwrap(), m.to_dense().unwrap().transpose());
    }

    #[test]
    fn transpose_round_trips() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn degrees_are_consistent() {
        let m = sample();
        assert_eq!(m.out_degrees(), vec![1.0, 2.0]);
        assert_eq!(m.in_degrees(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn row_stats_on_sample() {
        let m = sample();
        let s = m.row_stats();
        assert_eq!(s.max, 2);
        assert_eq!(s.min, 1);
        assert!((s.mean - 1.5).abs() < 1e-12);
        assert_eq!(s.empty_row_fraction, 0.0);
    }

    #[test]
    fn get_reads_stored_and_missing_entries() {
        let m = sample();
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(1, 2), 3.0);
        let u = m.clone().drop_values();
        assert_eq!(u.get(1, 2), 1.0);
    }

    #[test]
    fn identity_is_identity() {
        let i = CsrMatrix::identity(3);
        assert_eq!(i.nnz(), 3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert!(i.is_pattern_symmetric());
    }

    #[test]
    fn pattern_symmetry_detects_asymmetry() {
        let m = sample();
        assert!(!m.is_pattern_symmetric());
        let sym = CsrMatrix::from_parts(2, 2, vec![0, 1, 2], vec![1, 0], None).unwrap();
        assert!(sym.is_pattern_symmetric());
    }
}
