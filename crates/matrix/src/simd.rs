//! Portable fixed-width SIMD vectors for the hot kernels.
//!
//! `std::simd` is still nightly-only, so this module provides the stable
//! subset the kernels need: an 8-lane `f32` vector whose operations are
//! written as exact-trip-count lane loops over a fixed-size array. With
//! optimizations on, LLVM compiles every operation here to vector
//! instructions for the target's widest available lanes (2×SSE `mulps`/
//! `addps` on baseline x86-64, single AVX ops with `-C target-feature=+avx`,
//! NEON on aarch64) — the codegen shape `std::simd::f32x8` would produce,
//! without the nightly requirement.
//!
//! Numerical contract: every lane operation is the IEEE-754 scalar operation
//! applied lane-wise, **without** fused multiply-add contraction (Rust never
//! contracts `a * b + c`). A kernel that folds the same values in the same
//! per-element order through these vectors is therefore *bitwise identical*
//! to its scalar counterpart — the property the differential suite in
//! `tests/kernel_differential.rs` pins down.

use std::ops::{Add, Mul};

/// Lane count of [`F32x8`]. Eight `f32`s = one AVX register, two SSE
/// registers, or two NEON registers — wide enough to saturate any of them,
/// narrow enough that a 4-vector register tile still fits the x86-64 baseline
/// register file.
pub const LANES: usize = 8;

/// An 8-lane `f32` vector. See the module docs for the codegen and numerics
/// contract.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(transparent)]
pub struct F32x8(pub [f32; LANES]);

impl F32x8 {
    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        Self([v; LANES])
    }

    /// Loads the first [`LANES`] elements of `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s.len() < LANES`.
    #[inline(always)]
    pub fn load(s: &[f32]) -> Self {
        let lanes: &[f32; LANES] = s[..LANES].try_into().expect("checked length");
        Self(*lanes)
    }

    /// Stores the lanes into the first [`LANES`] elements of `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d.len() < LANES`.
    #[inline(always)]
    pub fn store(self, d: &mut [f32]) {
        d[..LANES].copy_from_slice(&self.0);
    }

    /// Lane-wise `f32::max` (NaN-ignoring, like the scalar reduce path).
    #[inline(always)]
    pub fn max(self, rhs: Self) -> Self {
        let mut out = [0f32; LANES];
        for ((v, &a), &b) in out.iter_mut().zip(&self.0).zip(&rhs.0) {
            *v = a.max(b);
        }
        Self(out)
    }

    /// Lane-wise `f32::min` (NaN-ignoring, like the scalar reduce path).
    #[inline(always)]
    pub fn min(self, rhs: Self) -> Self {
        let mut out = [0f32; LANES];
        for ((v, &a), &b) in out.iter_mut().zip(&self.0).zip(&rhs.0) {
            *v = a.min(b);
        }
        Self(out)
    }

    /// Sum of all lanes, reduced as a binary tree (`(0+1)+(2+3)…`); the
    /// order is fixed but differs from a sequential left fold, which is why
    /// SIMD dot products (SDDMM) are documented as ≤ a few ulp from the
    /// scalar reference rather than bitwise equal.
    #[inline(always)]
    pub fn horizontal_sum(self) -> f32 {
        let a = self.0;
        let q = [a[0] + a[1], a[2] + a[3], a[4] + a[5], a[6] + a[7]];
        (q[0] + q[1]) + (q[2] + q[3])
    }
}

impl Add for F32x8 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        let mut out = [0f32; LANES];
        for ((v, &a), &b) in out.iter_mut().zip(&self.0).zip(&rhs.0) {
            *v = a + b;
        }
        Self(out)
    }
}

impl Mul for F32x8 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        let mut out = [0f32; LANES];
        for ((v, &a), &b) in out.iter_mut().zip(&self.0).zip(&rhs.0) {
            *v = a * b;
        }
        Self(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_load_store_round_trip() {
        let src: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let v = F32x8::load(&src);
        let mut dst = vec![0f32; 9];
        v.store(&mut dst);
        assert_eq!(&dst[..8], &src[..8]);
        assert_eq!(dst[8], 0.0, "store writes exactly LANES elements");
        assert_eq!(F32x8::splat(2.5).0, [2.5; LANES]);
    }

    #[test]
    fn lane_ops_match_scalar_ops_bitwise() {
        let a = F32x8([1.5, -0.0, 3.25, f32::INFINITY, -2.0, 0.1, 7.0, -9.5]);
        let b = F32x8([0.5, 2.0, -1.25, 1.0, f32::NEG_INFINITY, 0.3, 0.0, 9.5]);
        for l in 0..LANES {
            assert_eq!((a + b).0[l].to_bits(), (a.0[l] + b.0[l]).to_bits());
            assert_eq!((a * b).0[l].to_bits(), (a.0[l] * b.0[l]).to_bits());
            assert_eq!(a.max(b).0[l].to_bits(), a.0[l].max(b.0[l]).to_bits());
            assert_eq!(a.min(b).0[l].to_bits(), a.0[l].min(b.0[l]).to_bits());
        }
    }

    #[test]
    fn horizontal_sum_is_a_fixed_tree() {
        let v = F32x8([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(v.horizontal_sum(), 36.0);
        // The reduction order is the documented tree, not a left fold.
        let w = F32x8([1e8, 1.0, -1e8, 1.0, 0.0, 0.0, 0.0, 0.0]);
        let tree = ((1e8f32 + 1.0) + (-1e8f32 + 1.0)) + 0.0;
        assert_eq!(w.horizontal_sum().to_bits(), tree.to_bits());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn short_load_panics() {
        let _ = F32x8::load(&[1.0; 7]);
    }
}
