//! Shared per-row kernels behind the hot `_into` primitives.
//!
//! Both `spmm_into`/`spmm_cols_into` and `gemm_into`/`gemm_rhs_blocks_into`
//! funnel into this module, so the serial and batched forms are the same
//! code by construction — the batched-bitwise-identity contract falls out
//! structurally instead of being re-proven per kernel.
//!
//! Every kernel carries two always-compiled paths selected by the constant
//! `cfg!(feature = "simd")` branch in [`simd_enabled`]:
//!
//! - a **scalar** path: the straight-line reference loop with the semiring
//!   dispatch hoisted out of the inner loop (monomorphized closures) and all
//!   per-element indexing replaced by exact-length `zip`s, and
//! - a **SIMD** path: [`F32x8`] register tiles over the feature/column
//!   dimension, with a per-row *banding* choice — short rows (≤
//!   [`SHORT_ROW_EDGES`] stored edges) use single-vector column strips so the
//!   accumulator load/store overhead stays proportional to their work, hub
//!   rows use [`SPMM_COL_TILE`]-vector strips that keep a full column tile in
//!   registers across all of the row's edges.
//!
//! Because SpMM/GEMM vectorize across *columns* while keeping the exact
//! per-element fold order over edges/`k` (including GEMM's zero-`aik` skip),
//! the two paths are **bitwise identical** for every semiring; the band
//! choice can never change a result, only its speed. The one documented
//! exception is the SDDMM [`dot`], whose horizontal reduction is a fixed
//! tree rather than a left fold (see `tests/kernel_differential.rs`).

use crate::simd::{F32x8, LANES};
use crate::{DenseMatrix, MulOp, ReduceOp, Semiring};

/// Rows with at most this many stored edges take the short-row band
/// (single-vector column strips); heavier rows take the hub band
/// ([`SPMM_COL_TILE`]-vector strips). With fewer edges than this the wide
/// tile's accumulator traffic costs more than the folds it amortizes.
pub(crate) const SHORT_ROW_EDGES: usize = 4;

/// Column-tile width of the hub-row SpMM band, in [`F32x8`] registers
/// (4 × 8 = 32 columns per strip): enough independent accumulator chains to
/// hide FMA latency, small enough to leave registers for the loaded feature
/// vectors.
pub(crate) const SPMM_COL_TILE: usize = 4;

/// Output rows per register-tiled GEMM block: each loaded RHS vector is
/// reused across this many A-rows, cutting B-traffic 4x versus row-at-a-time.
pub(crate) const GEMM_ROW_BLOCK: usize = 4;

/// Column-tile width of the register-tiled GEMM, in [`F32x8`] registers.
/// With [`GEMM_ROW_BLOCK`] rows this makes a 4×16 accumulator tile: 8 vector
/// registers of accumulators + 2 of loaded B, within the 16-register x86-64
/// baseline budget.
pub(crate) const GEMM_COL_TILE: usize = 2;

/// Whether the SIMD paths are compiled in as the dispatch target. Constant
/// per build: both paths always compile (the scalar oracle stays testable in
/// a `--features simd` build via the `_scalar` entry points), but this branch
/// const-folds away in release code.
#[inline(always)]
pub(crate) fn simd_enabled() -> bool {
    cfg!(feature = "simd")
}

// ---------------------------------------------------------------------------
// g-SpMM row kernel
// ---------------------------------------------------------------------------

/// Computes one output row of g-SpMM: `out_row[c] = ⊕_e ( edge_e ⊗
/// feats[col_e, c] )`, exactly as `spmm_into` documents, with the Mean
/// finish applied. `feats` rows may be wider than `out_row` (batched wide
/// buffers); only the leading `out_row.len()` columns are read.
#[inline]
pub(crate) fn spmm_row(
    out_row: &mut [f32],
    cols: &[u32],
    vals: Option<&[f32]>,
    feats: &DenseMatrix,
    semiring: Semiring,
) {
    let reduce = semiring.reduce;
    let count = cols.len();
    if count == 0 {
        // Identity-finished empty rows (0 for every reduce op).
        out_row.fill(reduce.finish(reduce.identity(), 0));
        return;
    }
    out_row.fill(reduce.identity());
    // Hoisted weighted/unweighted split: the Option is tested once per row,
    // not once per edge, and a mul that never reads the edge value drops the
    // value stream entirely.
    match vals.filter(|_| semiring.mul.reads_edge()) {
        Some(vs) => with_mul(
            out_row,
            vs.iter().copied().zip(cols.iter().copied()),
            count,
            feats,
            semiring.mul,
            reduce,
        ),
        None => with_mul(
            out_row,
            cols.iter().map(|&j| (1.0f32, j)),
            count,
            feats,
            semiring.mul,
            reduce,
        ),
    }
    if matches!(reduce, ReduceOp::Mean) {
        for v in out_row.iter_mut() {
            *v = reduce.finish(*v, count);
        }
    }
}

/// Scalar-only variant of [`spmm_row`], bypassing the SIMD dispatch. This is
/// the in-crate differential oracle: in a `--features simd` build the unit
/// tests compare [`spmm_row`] against this (the integration suite in
/// `tests/kernel_differential.rs` uses an independent naive reference).
#[cfg(test)]
#[inline]
pub(crate) fn spmm_row_scalar(
    out_row: &mut [f32],
    cols: &[u32],
    vals: Option<&[f32]>,
    feats: &DenseMatrix,
    semiring: Semiring,
) {
    let reduce = semiring.reduce;
    let mul = semiring.mul;
    let count = cols.len();
    if count == 0 {
        out_row.fill(reduce.finish(reduce.identity(), 0));
        return;
    }
    out_row.fill(reduce.identity());
    for (e, &j) in cols.iter().enumerate() {
        let edge = if mul.reads_edge() {
            vals.map_or(1.0, |v| v[e])
        } else {
            1.0
        };
        let frow = &feats.row(j as usize)[..out_row.len()];
        for (v, &fv) in out_row.iter_mut().zip(frow) {
            *v = reduce.fold(*v, mul.apply(edge, fv));
        }
    }
    if matches!(reduce, ReduceOp::Mean) {
        for v in out_row.iter_mut() {
            *v = reduce.finish(*v, count);
        }
    }
}

/// Dispatches the `⊗` operator into monomorphized scalar + vector closures.
#[inline(always)]
fn with_mul<I>(
    out_row: &mut [f32],
    edges: I,
    count: usize,
    feats: &DenseMatrix,
    mul: MulOp,
    reduce: ReduceOp,
) where
    I: Iterator<Item = (f32, u32)> + Clone,
{
    match mul {
        MulOp::Mul => with_reduce(
            out_row,
            edges,
            count,
            feats,
            reduce,
            |e, f| e * f,
            |e: F32x8, f: F32x8| e * f,
        ),
        MulOp::CopyRhs => with_reduce(out_row, edges, count, feats, reduce, |_, f| f, |_, f| f),
        MulOp::CopyEdge => with_reduce(out_row, edges, count, feats, reduce, |e, _| e, |e, _| e),
        MulOp::Add => with_reduce(
            out_row,
            edges,
            count,
            feats,
            reduce,
            |e, f| e + f,
            |e: F32x8, f: F32x8| e + f,
        ),
    }
}

/// Dispatches the `⊕` operator; Sum and Mean share the add fold (Mean's
/// divide happens in the caller's finish pass).
#[inline(always)]
fn with_reduce<I, M, MV>(
    out_row: &mut [f32],
    edges: I,
    count: usize,
    feats: &DenseMatrix,
    reduce: ReduceOp,
    m: M,
    mv: MV,
) where
    I: Iterator<Item = (f32, u32)> + Clone,
    M: Fn(f32, f32) -> f32,
    MV: Fn(F32x8, F32x8) -> F32x8,
{
    match reduce {
        ReduceOp::Sum | ReduceOp::Mean => fold_row(
            out_row,
            edges,
            count,
            feats,
            &m,
            &mv,
            &|a, v| a + v,
            &|a: F32x8, v: F32x8| a + v,
        ),
        ReduceOp::Max => fold_row(
            out_row,
            edges,
            count,
            feats,
            &m,
            &mv,
            &|a: f32, v: f32| a.max(v),
            &|a: F32x8, v: F32x8| a.max(v),
        ),
        ReduceOp::Min => fold_row(
            out_row,
            edges,
            count,
            feats,
            &m,
            &mv,
            &|a: f32, v: f32| a.min(v),
            &|a: F32x8, v: F32x8| a.min(v),
        ),
    }
}

/// The monomorphized row fold. Scalar path, or banded SIMD path when the
/// feature is on and the row is at least one vector wide.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn fold_row<I, M, MV, R, RV>(
    out_row: &mut [f32],
    edges: I,
    count: usize,
    feats: &DenseMatrix,
    m: &M,
    mv: &MV,
    r: &R,
    rv: &RV,
) where
    I: Iterator<Item = (f32, u32)> + Clone,
    M: Fn(f32, f32) -> f32,
    MV: Fn(F32x8, F32x8) -> F32x8,
    R: Fn(f32, f32) -> f32,
    RV: Fn(F32x8, F32x8) -> F32x8,
{
    let k = out_row.len();
    if !simd_enabled() || k < LANES {
        fold_cols_scalar(out_row, 0, edges, feats, m, r);
        return;
    }
    let mut c = 0;
    if count > SHORT_ROW_EDGES {
        // Hub band: wide column strips, a full register tile per pass.
        while c + SPMM_COL_TILE * LANES <= k {
            fold_strip::<SPMM_COL_TILE, _, _, _>(out_row, c, edges.clone(), feats, mv, rv);
            c += SPMM_COL_TILE * LANES;
        }
    }
    // Short-row band / wide-band remainder: single-vector strips.
    while c + LANES <= k {
        fold_strip::<1, _, _, _>(out_row, c, edges.clone(), feats, mv, rv);
        c += LANES;
    }
    if c < k {
        let (_, tail) = out_row.split_at_mut(c);
        fold_cols_scalar(tail, c, edges, feats, m, r);
    }
}

/// Folds every edge into an `NV`-vector column strip starting at column `c`.
/// Edges run in storage order per element, so results match the scalar fold
/// bitwise.
#[inline(always)]
fn fold_strip<const NV: usize, I, MV, RV>(
    out_row: &mut [f32],
    c: usize,
    edges: I,
    feats: &DenseMatrix,
    mv: &MV,
    rv: &RV,
) where
    I: Iterator<Item = (f32, u32)>,
    MV: Fn(F32x8, F32x8) -> F32x8,
    RV: Fn(F32x8, F32x8) -> F32x8,
{
    let mut acc = [F32x8::splat(0.0); NV];
    for (g, a) in acc.iter_mut().enumerate() {
        *a = F32x8::load(&out_row[c + g * LANES..]);
    }
    for (ev, j) in edges {
        let evv = F32x8::splat(ev);
        let frow = feats.row(j as usize);
        for (g, a) in acc.iter_mut().enumerate() {
            *a = rv(*a, mv(evv, F32x8::load(&frow[c + g * LANES..])));
        }
    }
    for (g, a) in acc.iter().enumerate() {
        a.store(&mut out_row[c + g * LANES..]);
    }
}

/// Scalar column fold over `out_cols = out_row[c0..]`: the reference inner
/// loop, exact-length zips only.
#[inline(always)]
fn fold_cols_scalar<I, M, R>(
    out_cols: &mut [f32],
    c0: usize,
    edges: I,
    feats: &DenseMatrix,
    m: &M,
    r: &R,
) where
    I: Iterator<Item = (f32, u32)>,
    M: Fn(f32, f32) -> f32,
    R: Fn(f32, f32) -> f32,
{
    for (ev, j) in edges {
        let frow = &feats.row(j as usize)[c0..c0 + out_cols.len()];
        for (o, &fv) in out_cols.iter_mut().zip(frow) {
            *o = r(*o, m(ev, fv));
        }
    }
}

// ---------------------------------------------------------------------------
// GEMM kernels
// ---------------------------------------------------------------------------

/// Computes a block of consecutive GEMM output rows starting at `r0`:
/// `out_block = a[r0.., :] · b`, register-tiled when SIMD is on. The block
/// layout matches `par_row_blocks` (`nrows = out_block.len() / b.cols()`
/// rows, the last block possibly short).
#[inline]
pub(crate) fn gemm_block(a: &DenseMatrix, r0: usize, b: &DenseMatrix, out_block: &mut [f32]) {
    let k2 = b.cols();
    if k2 == 0 {
        return;
    }
    let nrows = out_block.len() / k2;
    if simd_enabled() && k2 >= LANES {
        let mut a_rows: [&[f32]; GEMM_ROW_BLOCK] = [&[]; GEMM_ROW_BLOCK];
        for (i, slot) in a_rows.iter_mut().enumerate().take(nrows) {
            *slot = a.row(r0 + i);
        }
        gemm_rows_tiled(&a_rows[..nrows], b, k2, out_block);
    } else {
        for (i, out_row) in out_block.chunks_exact_mut(k2).enumerate() {
            gemm_row_scalar(a.row(r0 + i), b, out_row);
        }
    }
}

/// Computes one GEMM output row from an explicit A-row slice (the batched
/// kernels carve A-rows out of wide buffers). Dispatches to the tiled path
/// with a single-row "block".
#[inline]
pub(crate) fn gemm_row(a_row: &[f32], b: &DenseMatrix, out_row: &mut [f32]) {
    if simd_enabled() && out_row.len() >= LANES {
        gemm_rows_tiled(&[a_row], b, out_row.len(), out_row);
    } else {
        gemm_row_scalar(a_row, b, out_row);
    }
}

/// The scalar GEMM reference row: `i-k-j` order, zero-fill, zero-`aik` skip,
/// exact-length zip in the inner loop (no per-element bounds checks).
#[inline]
pub(crate) fn gemm_row_scalar(a_row: &[f32], b: &DenseMatrix, out_row: &mut [f32]) {
    out_row.fill(0.0);
    for (k, &aik) in a_row.iter().enumerate() {
        if aik == 0.0 {
            continue;
        }
        for (o, &bv) in out_row.iter_mut().zip(b.row(k)) {
            *o += aik * bv;
        }
    }
}

/// Register-tiled GEMM over up to [`GEMM_ROW_BLOCK`] rows: every loaded B
/// vector is reused across all rows of the tile, `k` runs ascending with the
/// same zero-skip as the scalar row, so each output element accumulates in
/// the exact scalar order (bitwise identical results).
fn gemm_rows_tiled(a_rows: &[&[f32]], b: &DenseMatrix, k2: usize, out_block: &mut [f32]) {
    let nrows = a_rows.len();
    let k1 = b.rows();
    let mut c = 0;
    while c + GEMM_COL_TILE * LANES <= k2 {
        let mut acc = [[F32x8::splat(0.0); GEMM_COL_TILE]; GEMM_ROW_BLOCK];
        for k in 0..k1 {
            let b_row = b.row(k);
            let mut bv = [F32x8::splat(0.0); GEMM_COL_TILE];
            for (g, v) in bv.iter_mut().enumerate() {
                *v = F32x8::load(&b_row[c + g * LANES..]);
            }
            for (i, a_row) in a_rows.iter().enumerate() {
                let aik = a_row[k];
                if aik == 0.0 {
                    continue;
                }
                let av = F32x8::splat(aik);
                for g in 0..GEMM_COL_TILE {
                    acc[i][g] = acc[i][g] + av * bv[g];
                }
            }
        }
        for (i, row_acc) in acc.iter().enumerate().take(nrows) {
            for (g, v) in row_acc.iter().enumerate() {
                v.store(&mut out_block[i * k2 + c + g * LANES..]);
            }
        }
        c += GEMM_COL_TILE * LANES;
    }
    while c + LANES <= k2 {
        let mut acc = [F32x8::splat(0.0); GEMM_ROW_BLOCK];
        for k in 0..k1 {
            let bv = F32x8::load(&b.row(k)[c..]);
            for (i, a_row) in a_rows.iter().enumerate() {
                let aik = a_row[k];
                if aik == 0.0 {
                    continue;
                }
                acc[i] = acc[i] + F32x8::splat(aik) * bv;
            }
        }
        for (i, v) in acc.iter().enumerate().take(nrows) {
            v.store(&mut out_block[i * k2 + c..]);
        }
        c += LANES;
    }
    if c < k2 {
        for (i, a_row) in a_rows.iter().enumerate() {
            let tail = &mut out_block[i * k2 + c..i * k2 + k2];
            tail.fill(0.0);
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                for (o, &bv) in tail.iter_mut().zip(&b.row(k)[c..]) {
                    *o += aik * bv;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SDDMM dot product
// ---------------------------------------------------------------------------

/// Dot product of two equal-length feature rows.
///
/// The SIMD path accumulates [`LANES`] partial sums and reduces them with
/// [`F32x8::horizontal_sum`]'s fixed tree — a *different* (typically more
/// accurate) summation order than the scalar left fold, so SDDMM results
/// under `--features simd` are documented as within a few ulp of the scalar
/// oracle rather than bitwise equal.
#[inline]
pub(crate) fn dot(u: &[f32], v: &[f32]) -> f32 {
    let n = u.len().min(v.len());
    if !simd_enabled() || n < LANES {
        return dot_scalar(&u[..n], &v[..n]);
    }
    let mut acc = F32x8::splat(0.0);
    let mut c = 0;
    while c + LANES <= n {
        acc = acc + F32x8::load(&u[c..]) * F32x8::load(&v[c..]);
        c += LANES;
    }
    let mut s = acc.horizontal_sum();
    for (a, b) in u[c..n].iter().zip(&v[c..n]) {
        s += a * b;
    }
    s
}

/// The scalar left-fold dot product — the SDDMM differential oracle.
#[inline]
pub(crate) fn dot_scalar(u: &[f32], v: &[f32]) -> f32 {
    u.iter().zip(v).map(|(a, b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CooMatrix, CsrMatrix};

    fn skewed_adj() -> CsrMatrix {
        // Row 0: hub (32 edges), row 1: short (2 edges), row 2: empty,
        // row 3: exactly at the band threshold.
        let mut entries = Vec::new();
        for j in 0..32 {
            entries.push((0usize, j as usize, 0.25 + j as f32));
        }
        entries.push((1, 0, -1.5));
        entries.push((1, 31, 2.0));
        for j in 0..SHORT_ROW_EDGES {
            entries.push((3, j * 5, 0.5 * j as f32 - 1.0));
        }
        CooMatrix::from_entries(4, 32, &entries).unwrap().to_csr()
    }

    #[test]
    fn spmm_row_matches_scalar_oracle_across_bands_and_widths() {
        let adj = skewed_adj();
        for width in [1usize, 3, 7, 8, 9, 17, 32, 40, 100] {
            let feats = DenseMatrix::random(32, width, 1.0, 42);
            for semiring in [
                Semiring::plus_mul(),
                Semiring::plus_copy_rhs(),
                Semiring::max_copy_rhs(),
                Semiring::mean_copy_rhs(),
            ] {
                for row in 0..4 {
                    let cols = adj.row_indices(row);
                    let vals = adj.row_values(row);
                    let mut fast = vec![f32::NAN; width];
                    let mut slow = vec![f32::NAN; width];
                    spmm_row(&mut fast, cols, vals, &feats, semiring);
                    spmm_row_scalar(&mut slow, cols, vals, &feats, semiring);
                    let fast_bits: Vec<u32> = fast.iter().map(|v| v.to_bits()).collect();
                    let slow_bits: Vec<u32> = slow.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(fast_bits, slow_bits, "row {row} width {width} {semiring:?}");
                }
            }
        }
    }

    #[test]
    fn gemm_block_matches_scalar_rows_bitwise() {
        let a = DenseMatrix::random(7, 9, 1.0, 5);
        // Inject zeros so the zero-skip executes in both paths.
        let a = a.map(|v| if v.abs() < 0.3 { 0.0 } else { v });
        for k2 in [1usize, 5, 8, 16, 19, 24, 37] {
            let b = DenseMatrix::random(9, k2, 1.0, 6);
            for r0 in [0usize, 4] {
                let nrows = (r0 + GEMM_ROW_BLOCK).min(7) - r0;
                let mut fast = vec![f32::NAN; nrows * k2];
                gemm_block(&a, r0, &b, &mut fast);
                for i in 0..nrows {
                    let mut slow = vec![f32::NAN; k2];
                    gemm_row_scalar(a.row(r0 + i), &b, &mut slow);
                    assert_eq!(
                        fast[i * k2..(i + 1) * k2]
                            .iter()
                            .map(|v| v.to_bits())
                            .collect::<Vec<_>>(),
                        slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "r0 {r0} row {i} k2 {k2}"
                    );
                }
            }
        }
    }

    #[test]
    fn dot_is_within_ulps_of_scalar() {
        for n in [0usize, 1, 7, 8, 9, 64, 129] {
            let u = DenseMatrix::random(1, n.max(1), 1.0, 7);
            let v = DenseMatrix::random(1, n.max(1), 1.0, 8);
            let (u, v) = (&u.as_slice()[..n], &v.as_slice()[..n]);
            let fast = dot(u, v) as f64;
            let slow = dot_scalar(u, v) as f64;
            let tol = 1e-5 * (1.0 + slow.abs());
            assert!((fast - slow).abs() <= tol, "n {n}: {fast} vs {slow}");
        }
    }
}
