use super::rowkernel::dot;
use crate::parallel::par_sparse_rows;
use crate::{CsrMatrix, DenseMatrix, MatrixError, Result};

/// Generalized sampled dense-dense matrix multiplication (g-SDDMM, §II-B).
///
/// For every stored position `(i, j)` of `mask`, computes
///
/// ```text
/// out[i, j] = mask[i, j] * ( u[i, :] · v[j, :] )
/// ```
///
/// i.e. the dense product `U · Vᵀ` *sampled* at the sparsity pattern of `mask`
/// and scaled by the mask's values (implicitly `1.0` when the mask is
/// unweighted). The result is a weighted CSR matrix with the same pattern.
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] if `u.cols() != v.cols()`,
/// `u.rows() != mask.rows()`, or `v.rows() != mask.cols()`.
///
/// # Example
///
/// ```
/// use granii_matrix::{ops, CooMatrix, DenseMatrix};
///
/// # fn main() -> Result<(), granii_matrix::MatrixError> {
/// let mask = CooMatrix::from_entries(2, 2, &[(0, 1, 1.0)])?.to_csr();
/// let u = DenseMatrix::from_rows(&[[1.0, 2.0].as_slice(), [0.0, 0.0].as_slice()])?;
/// let v = DenseMatrix::from_rows(&[[0.0, 0.0].as_slice(), [3.0, 4.0].as_slice()])?;
/// let out = ops::sddmm(&mask, &u, &v)?;
/// assert_eq!(out.get(0, 1), 11.0); // 1*3 + 2*4
/// # Ok(())
/// # }
/// ```
pub fn sddmm(mask: &CsrMatrix, u: &DenseMatrix, v: &DenseMatrix) -> Result<CsrMatrix> {
    if u.cols() != v.cols() {
        return Err(MatrixError::ShapeMismatch {
            op: "sddmm",
            lhs: u.shape(),
            rhs: v.shape(),
        });
    }
    if u.rows() != mask.rows() {
        return Err(MatrixError::ShapeMismatch {
            op: "sddmm",
            lhs: mask.shape(),
            rhs: u.shape(),
        });
    }
    if v.rows() != mask.cols() {
        return Err(MatrixError::ShapeMismatch {
            op: "sddmm",
            lhs: mask.shape(),
            rhs: v.shape(),
        });
    }
    let out_vals = fresh_vals(mask.nnz());
    let mut out = mask.clone().drop_values().with_values(out_vals)?;
    sddmm_into(mask, u, v, &mut out)?;
    Ok(out)
}

/// [`sddmm`] writing into a caller-provided weighted CSR buffer sharing
/// `mask`'s pattern. Every stored position is written, so recycled workspace
/// buffers are safe; results are bitwise equal to [`sddmm`]'s.
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] on operand mismatches or if `out`
/// does not match `mask`'s shape/nnz, and [`MatrixError::MissingValues`] if
/// `out` is unweighted.
pub fn sddmm_into(
    mask: &CsrMatrix,
    u: &DenseMatrix,
    v: &DenseMatrix,
    out: &mut CsrMatrix,
) -> Result<()> {
    if u.cols() != v.cols() {
        return Err(MatrixError::ShapeMismatch {
            op: "sddmm",
            lhs: u.shape(),
            rhs: v.shape(),
        });
    }
    if u.rows() != mask.rows() {
        return Err(MatrixError::ShapeMismatch {
            op: "sddmm",
            lhs: mask.shape(),
            rhs: u.shape(),
        });
    }
    if v.rows() != mask.cols() {
        return Err(MatrixError::ShapeMismatch {
            op: "sddmm",
            lhs: mask.shape(),
            rhs: v.shape(),
        });
    }
    check_out_pattern("sddmm_into", mask, out)?;
    let k = u.cols();
    let indptr = mask.indptr();
    let indices = mask.indices();
    let mvals = mask.values();
    let out_vals = out.values_mut().expect("checked weighted");
    // Rows own disjoint value slices, so the kernel parallelizes with the
    // same nnz-weighted scheduling as SpMM; the mask's weighted/unweighted
    // Option is tested once per matrix, not once per edge, and the dot
    // product takes the SIMD path when the feature is on (within a few ulp
    // of the scalar fold — see `ops::rowkernel::dot`).
    par_sparse_rows(out_vals, indptr, k, |i, orow| {
        let s = indptr[i] as usize;
        let urow = u.row(i);
        let cols = &indices[s..s + orow.len()];
        match mvals {
            Some(ms) => {
                let mrow = &ms[s..s + orow.len()];
                for ((o, &j), &m) in orow.iter_mut().zip(cols).zip(mrow) {
                    *o = m * dot(urow, v.row(j as usize));
                }
            }
            None => {
                for (o, &j) in orow.iter_mut().zip(cols) {
                    *o = dot(urow, v.row(j as usize));
                }
            }
        }
    });
    Ok(())
}

/// Allocates a fresh CSR value buffer, counting it for the
/// allocation-regression telemetry.
pub(crate) fn fresh_vals(nnz: usize) -> Vec<f32> {
    granii_telemetry::counter_add("matrix.sparse_vals_allocs", 1);
    vec![0f32; nnz]
}

/// Validates that `out` is a weighted CSR matching `pattern`'s shape and nnz.
pub(crate) fn check_out_pattern(
    op: &'static str,
    pattern: &CsrMatrix,
    out: &CsrMatrix,
) -> Result<()> {
    if out.shape() != pattern.shape() || out.nnz() != pattern.nnz() {
        return Err(MatrixError::ShapeMismatch {
            op,
            lhs: pattern.shape(),
            rhs: out.shape(),
        });
    }
    if !out.is_weighted() {
        return Err(MatrixError::MissingValues(op));
    }
    Ok(())
}

/// SDDMM with the `u_add_v` operator on per-node scalars (GAT's raw attention
/// logits): `out[i, j] = ul[i] + vr[j]` at every stored position of `mask`.
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] if `ul.len() != mask.rows()` or
/// `vr.len() != mask.cols()`.
pub fn sddmm_u_add_v(mask: &CsrMatrix, ul: &[f32], vr: &[f32]) -> Result<CsrMatrix> {
    if ul.len() != mask.rows() {
        return Err(MatrixError::ShapeMismatch {
            op: "sddmm_u_add_v",
            lhs: mask.shape(),
            rhs: (ul.len(), 1),
        });
    }
    if vr.len() != mask.cols() {
        return Err(MatrixError::ShapeMismatch {
            op: "sddmm_u_add_v",
            lhs: mask.shape(),
            rhs: (vr.len(), 1),
        });
    }
    let out_vals = fresh_vals(mask.nnz());
    let mut out = mask.clone().drop_values().with_values(out_vals)?;
    sddmm_u_add_v_into(mask, ul, vr, &mut out)?;
    Ok(out)
}

/// [`sddmm_u_add_v`] writing into a caller-provided weighted CSR buffer
/// sharing `mask`'s pattern. Every stored position is written, so recycled
/// workspace buffers are safe.
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] on operand mismatches or if `out`
/// does not match `mask`'s shape/nnz, and [`MatrixError::MissingValues`] if
/// `out` is unweighted.
pub fn sddmm_u_add_v_into(
    mask: &CsrMatrix,
    ul: &[f32],
    vr: &[f32],
    out: &mut CsrMatrix,
) -> Result<()> {
    if ul.len() != mask.rows() {
        return Err(MatrixError::ShapeMismatch {
            op: "sddmm_u_add_v",
            lhs: mask.shape(),
            rhs: (ul.len(), 1),
        });
    }
    if vr.len() != mask.cols() {
        return Err(MatrixError::ShapeMismatch {
            op: "sddmm_u_add_v",
            lhs: mask.shape(),
            rhs: (vr.len(), 1),
        });
    }
    check_out_pattern("sddmm_u_add_v_into", mask, out)?;
    let indptr = mask.indptr();
    let indices = mask.indices();
    let out_vals = out.values_mut().expect("checked weighted");
    par_sparse_rows(out_vals, indptr, 1, |i, orow| {
        let s = indptr[i] as usize;
        let e = s + orow.len();
        let ui = ul[i];
        for (v, &j) in orow.iter_mut().zip(&indices[s..e]) {
            *v = ui + vr[j as usize];
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ops::gemm, CooMatrix};

    #[test]
    fn sddmm_matches_masked_dense_product() {
        let mask = CooMatrix::from_entries(3, 3, &[(0, 1, 2.0), (1, 2, 1.0), (2, 0, 0.5)])
            .unwrap()
            .to_csr();
        let u = DenseMatrix::random(3, 4, 1.0, 8);
        let v = DenseMatrix::random(3, 4, 1.0, 9);
        let out = sddmm(&mask, &u, &v).unwrap();
        let full = gemm(&u, &v.transpose()).unwrap();
        for (i, j, m) in [(0usize, 1usize, 2.0f32), (1, 2, 1.0), (2, 0, 0.5)] {
            assert!((out.get(i, j) - m * full.get(i, j)).abs() < 1e-5);
        }
        // Pattern is preserved: unsampled entries stay zero.
        assert_eq!(out.get(0, 0), 0.0);
        assert_eq!(out.nnz(), mask.nnz());
    }

    #[test]
    fn unweighted_mask_uses_implicit_one() {
        let mask = CooMatrix::from_entries(2, 2, &[(0, 1, 7.0)])
            .unwrap()
            .to_csr_unweighted();
        let u = DenseMatrix::from_rows(&[[2.0].as_slice(), [0.0].as_slice()]).unwrap();
        let v = DenseMatrix::from_rows(&[[0.0].as_slice(), [5.0].as_slice()]).unwrap();
        let out = sddmm(&mask, &u, &v).unwrap();
        assert_eq!(out.get(0, 1), 10.0);
    }

    #[test]
    fn shape_mismatches_rejected() {
        let mask = CsrMatrix::identity(2);
        let u = DenseMatrix::zeros(2, 3).unwrap();
        let v = DenseMatrix::zeros(2, 4).unwrap();
        assert!(sddmm(&mask, &u, &v).is_err());
        let w = DenseMatrix::zeros(3, 3).unwrap();
        assert!(sddmm(&mask, &w, &u).is_err());
    }

    #[test]
    fn u_add_v_adds_endpoint_scalars() {
        let mask = CooMatrix::from_entries(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)])
            .unwrap()
            .to_csr_unweighted();
        let out = sddmm_u_add_v(&mask, &[1.0, 2.0], &[10.0, 20.0]).unwrap();
        assert_eq!(out.get(0, 1), 21.0);
        assert_eq!(out.get(1, 0), 12.0);
        assert!(sddmm_u_add_v(&mask, &[1.0], &[10.0, 20.0]).is_err());
        assert!(sddmm_u_add_v(&mask, &[1.0, 2.0], &[10.0]).is_err());
    }
}
